//! Golden-model trace: assemble a small RISC-V program, execute it on the
//! golden reference model and on a deliberately buggy CVA6 model, and show
//! the differential-testing report — the detection mechanism every fuzzing
//! campaign in this workspace is built on.
//!
//! ```sh
//! cargo run --example golden_model_trace
//! ```

use fuzzer::diff::compare_traces;
use isa_sim::GoldenSim;
use proc_sim::{cores::Cva6Core, BugSet, Processor, Vulnerability};
use riscv::asm::parse_program;
use riscv::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A directed test: exercise the CSR file with an unimplemented address —
    // exactly the access the V6 vulnerability (CWE-1281) mishandles.
    let listing = "\
        lui   gp, 0x80010          # materialise the data-region base\n\
        addi  t0, zero, 77\n\
        sd    t0, 0(gp)\n\
        ld    t1, 0(gp)\n\
        csrrw t2, 0x5c0, zero      # unimplemented CSR: must trap\n\
        csrrs t3, minstret, zero\n\
        ecall\n";
    let program = Program::from_instrs(parse_program(listing)?);

    println!("test program:\n{program}");

    // Golden reference model (the SPIKE substitute).
    let golden = GoldenSim::new().run(&program, 100);
    println!("golden-model commit trace:");
    println!("{}", golden.to_log());

    // The same program on a CVA6 model with the V6 bug injected.
    let buggy = Cva6Core::new(BugSet::only(Vulnerability::V6UnimplCsrJunk));
    let dut = buggy.run(&program, 100);
    println!(
        "buggy {} run: {} instructions committed, {} coverage points hit",
        buggy.name(),
        dut.trace.len(),
        dut.coverage.count()
    );

    // Differential testing: the junk CSR read shows up as mismatches.
    let report = compare_traces(&dut.trace, &golden);
    println!("\ndifferential-testing report:\n{report}");
    Ok(())
}
