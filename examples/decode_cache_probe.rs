//! One-off probe: per-test cost of the cached vs interpreted fetch path on a
//! program that executes every one of its 300 straight-line instructions.

use std::sync::Arc;
use std::time::Instant;

use fuzzer::{ExecScratch, FuzzHarness};
use proc_sim::{BugSet, ProcessorKind};
use riscv::{Gpr, Instr, Op, Program};

fn main() {
    let instrs: Vec<Instr> =
        (0..300).map(|i| Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, i % 11)).collect();
    let program = Program::from_instrs(instrs);
    let iters = 20_000u32;
    for core in ProcessorKind::ALL {
        let harness = FuzzHarness::new(Arc::from(core.build(BugSet::none())), 400);
        for (label, cached) in [("decoded", true), ("interpreted", false)] {
            let mut scratch = ExecScratch::with_decode_cache(cached);
            harness.run_program_into(&program, &mut scratch); // warm
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(harness.run_program_into(&program, &mut scratch).dut_commits);
            }
            let per = start.elapsed() / iters;
            println!("{}/{label}: {per:?} per test", core.name());
        }
    }
}
