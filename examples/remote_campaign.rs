//! Drive a campaign end to end over the service protocol: submit a spec,
//! tail the live NDJSON event stream, fetch the final report.
//!
//! ```text
//! cargo run --release --example remote_campaign -- \
//!     [--addr HOST:PORT] [--spec FILE] [--events-out FILE] [--shutdown]
//! ```
//!
//! With `--addr` the example talks to an already-running daemon (start one
//! with `experiments serve --addr 127.0.0.1:PORT`); without it, a server is
//! spawned in-process on an ephemeral port and shut down at the end, so the
//! example is self-contained. `--spec FILE` submits a campaign-spec JSON
//! file (e.g. `tests/golden/campaign_spec.json`); the default is a small
//! UCB-on-Rocket campaign. `--events-out FILE` writes the streamed events
//! to a file — byte-identical to what `experiments run --spec FILE --events
//! FILE` would have written locally, which is exactly what the CI service
//! smoke job `cmp`s against the golden stream. `--shutdown` asks the daemon
//! to shut down cleanly after the report is fetched.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use mabfuzz_service::{CampaignServer, Client};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: remote_campaign [--addr HOST:PORT] [--spec FILE] \
                 [--events-out FILE] [--shutdown]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut events_out: Option<String> = None;
    let mut shutdown = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next().cloned().ok_or_else(|| format!("flag `{flag}` expects a value"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(value()?),
            "--spec" => spec_path = Some(value()?),
            "--events-out" => events_out = Some(value()?),
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let spec_json = match &spec_path {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("--spec {path}: {e}"))?,
        None => mabfuzz::CampaignSpec::builder()
            .max_tests(200)
            .processor(proc_sim::ProcessorKind::Rocket, mabfuzz::BugSpec::None)
            .rng_seed(7)
            .build()
            .expect("the demo spec is valid")
            .to_json(),
    };

    // Without --addr, host an in-process daemon for a self-contained demo
    // (and always shut it down so the server thread joins).
    let (client, local_server, shutdown) = match addr {
        Some(addr) => (Client::connect(&addr).map_err(|e| e.to_string())?, None, shutdown),
        None => {
            let server = CampaignServer::bind("127.0.0.1:0", 2).map_err(|e| e.to_string())?;
            let client = Client::new(server.local_addr());
            println!("hosting an in-process daemon on {}", server.local_addr());
            (client, Some(std::thread::spawn(move || server.serve())), true)
        }
    };

    let id = client.submit(&spec_json).map_err(|e| format!("submit: {e}"))?;
    println!("submitted campaign {id}");

    // Tail the live stream on a side thread while the campaign runs.
    let tail = {
        let client = client.clone();
        std::thread::spawn(move || client.events(id))
    };
    let status = client
        .wait_terminal(id, Duration::from_millis(20))
        .map_err(|e| format!("status: {e}"))?;
    let events = tail.join().expect("tail thread").map_err(|e| format!("events: {e}"))?;
    println!(
        "campaign {id} ({label}) is {status}: {lines} events streamed",
        label = status.label,
        status = status.status,
        lines = events.lines().count()
    );
    if let Some(path) = &events_out {
        std::fs::write(path, &events).map_err(|e| format!("--events-out {path}: {e}"))?;
        println!("event stream written to {path}");
    }

    let report = client.report(id).map_err(|e| format!("report: {e}"))?;
    println!("{report}");
    let _ = std::io::stdout().flush();

    if shutdown {
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        println!("asked the daemon to shut down");
    }
    if let Some(server) = local_server {
        server
            .join()
            .expect("server thread")
            .map_err(|e| format!("in-process server: {e}"))?;
    }
    Ok(())
}
