//! Quickstart: fuzz a simulated Rocket core with MABFuzz for a few hundred
//! tests and print what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use mab::BanditKind;
use mabfuzz::{MabFuzzConfig, MabFuzzer};
use proc_sim::{cores::RocketCore, Processor};

fn main() {
    // The Rocket model with its paper-native vulnerability (V7: `ebreak` does
    // not increment the retired-instruction counter).
    let processor = Arc::new(RocketCore::with_native_bugs());
    println!(
        "target: {} ({} branch-coverage points, {})",
        processor.name(),
        processor.coverage_space().len(),
        processor.bugs()
    );

    // Paper-default MABFuzz configuration: 10 arms, alpha = 0.25, gamma = 3,
    // UCB as the bandit algorithm.
    let config = MabFuzzConfig::new(BanditKind::Ucb1).with_max_tests(400);
    let outcome = MabFuzzer::new(processor, config, 42).run();

    println!("\n{}", outcome.stats);
    println!("arm resets during the campaign: {}", outcome.total_resets);
    println!("\nper-arm activity:");
    for arm in &outcome.arms {
        println!(
            "  arm {:>2}: {:>4} pulls, {:>2} resets, {:>5} local coverage points",
            arm.index, arm.pulls, arm.resets, arm.final_local_coverage
        );
    }

    match outcome.stats.first_detection() {
        Some(test_number) => {
            println!("\nfirst architectural mismatch detected at test #{test_number}:");
            println!("  {}", outcome.stats.detections()[0].summary);
        }
        None => println!(
            "\nno architectural mismatch within the budget — try more tests \
             (the V7 bug needs an ebreak followed by a counter read)"
        ),
    }
}
