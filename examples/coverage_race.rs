//! Coverage race: run all four fuzzers with the same test budget on one of
//! the simulated cores and print their coverage curves side by side — a
//! one-processor slice of the paper's Fig. 3 and Fig. 4.
//!
//! ```sh
//! cargo run --example coverage_race                 # defaults to cva6
//! cargo run --example coverage_race rocket 800      # core and test budget
//! ```

use std::env;
use std::sync::Arc;

use fuzzer::{CampaignConfig, CampaignStats, TheHuzzFuzzer};
use mab::BanditKind;
use mabfuzz::{MabFuzzConfig, MabFuzzer};
use proc_sim::{Processor, ProcessorKind};

fn main() {
    let core_kind = env::args()
        .nth(1)
        .and_then(|arg| ProcessorKind::parse(&arg))
        .unwrap_or(ProcessorKind::Cva6);
    let budget: u64 = env::args().nth(2).and_then(|arg| arg.parse().ok()).unwrap_or(600);

    let space = core_kind.build_with_native_bugs().coverage_space().len();
    println!("coverage race on {core_kind} ({space} coverage points, {budget} tests per fuzzer)\n");

    let campaign = CampaignConfig {
        max_tests: budget,
        max_steps_per_test: 300,
        sample_interval: (budget / 10).max(1),
        ..CampaignConfig::default()
    };
    let build_target = || -> Arc<dyn Processor> { Arc::from(core_kind.build_with_native_bugs()) };

    let mut results: Vec<CampaignStats> =
        vec![TheHuzzFuzzer::new(build_target(), campaign.clone(), 3).run()];
    for kind in BanditKind::ALL {
        let mut config = MabFuzzConfig::new(kind);
        config.campaign = campaign.clone();
        results.push(MabFuzzer::new(build_target(), config, 3).run().stats);
    }

    // Print the coverage curve samples side by side.
    println!("{:>8} {:>12} {:>12} {:>12} {:>12}", "#tests", "TheHuzz", "eps-greedy", "UCB", "EXP3");
    for point in results[0].series().downsample(10).points() {
        print!("{:>8}", point.tests);
        for stats in &results {
            print!(" {:>12}", stats.series().coverage_at(point.tests));
        }
        println!();
    }

    println!();
    let baseline_final = results[0].final_coverage();
    let baseline_to_final = results[0].tests_to_reach(baseline_final).unwrap_or(budget);
    for stats in &results {
        let speedup = stats
            .tests_to_reach(baseline_final)
            .map(|tests| baseline_to_final as f64 / tests as f64);
        let increment =
            (stats.final_coverage() as f64 - baseline_final as f64) / baseline_final as f64 * 100.0;
        println!(
            "{:<24} final coverage {:>6} ({:>6.2}% of the space)  speedup {}  increment {:+.2}%",
            stats.label(),
            stats.final_coverage(),
            stats.cumulative().ratio() * 100.0,
            speedup.map_or("   n/a".to_owned(), |s| format!("{s:5.2}x")),
            increment,
        );
    }
}
