//! Custom bandit: plug a user-defined scheduling policy into MABFuzz.
//!
//! The paper stresses that MABFuzz is *agnostic* to the MAB algorithm — the
//! three evaluated algorithms are interchangeable plug-ins. This example
//! demonstrates the same property in the reproduction by implementing a
//! simple softmax (Boltzmann exploration) policy with the reset-arm hook and
//! racing it against the built-in UCB on the CVA6 model.
//!
//! ```sh
//! cargo run --example custom_bandit
//! ```

use std::sync::Arc;

use mab::{Bandit, BanditKind};
use mabfuzz::{MabFuzzConfig, MabFuzzer};
use proc_sim::cores::Cva6Core;
use rand::Rng;

/// Softmax / Boltzmann exploration over the arms' empirical mean rewards.
struct Softmax {
    temperature: f64,
    values: Vec<f64>,
    counts: Vec<u64>,
}

impl Softmax {
    fn new(arms: usize, temperature: f64) -> Softmax {
        Softmax { temperature, values: vec![0.0; arms], counts: vec![0; arms] }
    }

    fn probabilities(&self) -> Vec<f64> {
        let scaled: Vec<f64> = self.values.iter().map(|v| (v / self.temperature).exp()).collect();
        let total: f64 = scaled.iter().sum();
        scaled.into_iter().map(|w| w / total).collect()
    }
}

impl Bandit for Softmax {
    fn kind(&self) -> BanditKind {
        // Closest built-in family for reporting purposes.
        BanditKind::EpsilonGreedy
    }

    fn arms(&self) -> usize {
        self.values.len()
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        let probabilities = self.probabilities();
        let mut ticket: f64 = rng.gen();
        for (arm, p) in probabilities.iter().enumerate() {
            if ticket < *p {
                return arm;
            }
            ticket -= p;
        }
        self.values.len() - 1
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.values[arm] += (reward - self.values[arm]) / n;
    }

    fn reset_arm(&mut self, arm: usize) {
        // The MABFuzz reset hook: the fresh seed starts from a clean slate.
        self.values[arm] = 0.0;
        self.counts[arm] = 0;
    }

    fn value(&self, arm: usize) -> f64 {
        self.values[arm]
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.counts[arm]
    }
}

fn main() {
    let tests = 400;
    let base_config = || MabFuzzConfig::new(BanditKind::Ucb1).with_max_tests(tests);

    // Built-in UCB.
    let ucb = MabFuzzer::new(Arc::new(Cva6Core::with_native_bugs()), base_config(), 17).run();

    // Custom softmax policy through the `with_bandit` hook.
    let config = base_config();
    let softmax = Box::new(Softmax::new(config.arms(), 4.0));
    let custom =
        MabFuzzer::with_bandit(Arc::new(Cva6Core::with_native_bugs()), config, softmax, 17).run();

    println!("MABFuzz on cva6, {tests} tests per campaign\n");
    println!("built-in UCB : {}", ucb.stats);
    println!("custom softmax: {}", custom.stats);
    println!(
        "\narm resets — UCB: {}, softmax: {}",
        ucb.total_resets, custom.total_resets
    );
    println!(
        "\nthe same orchestrator, reward shaping and reset monitor drive both policies;\n\
         only the arm-selection rule differs (paper contribution 3: algorithm-agnostic)."
    );
}
