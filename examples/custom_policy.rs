//! Registered custom policy: an optimistic Thompson variant end-to-end
//! through the campaign-spec API.
//!
//! Where `examples/custom_bandit.rs` plugs a policy in imperatively through
//! `MabFuzzer::with_bandit`, this example uses the *registry* redesign: a
//! policy is registered once under a fresh name, and from then on it behaves
//! exactly like a built-in algorithm — it parses by name, it is named in a
//! declarative [`CampaignSpec`], it drives a full campaign through
//! `Campaign::from_spec(...).execute()`, and it appears in the report label
//! — **without editing a single line of the core or bench crates**.
//!
//! The policy registered here is a deliberate callback: plain Thompson
//! sampling started life in this example and was then promoted to the
//! built-in [`mab::Thompson`] (its name is now reserved by the registry, as
//! the assertion below demonstrates). The example keeps the promotion
//! pipeline honest by registering the *next* experiment on top of the
//! built-in: Thompson with an **optimistic prior** — every arm's mean
//! starts at 1.0 instead of 0.0, so unexplored and freshly reset seeds look
//! like guaranteed wins until evidence says otherwise.
//!
//! ```sh
//! cargo run --example custom_policy
//! ```

use mab::{Bandit, BanditKind, PolicyParams, RegistryError, Thompson};
use mabfuzz::{BugSpec, Campaign, CampaignSpec};
use proc_sim::ProcessorKind;

/// Thompson sampling with an optimistic prior mean.
///
/// Wraps the built-in [`Thompson`] and re-biases the value estimate: a
/// never-pulled (or freshly reset) arm behaves as if it had already paid a
/// full reward, which front-loads exploration of new seeds even harder than
/// the wide prior alone. The selection rule, posterior width and
/// incremental-mean update are all delegated to the built-in.
struct OptimisticThompson {
    kind: BanditKind,
    inner: Thompson,
    optimism: f64,
}

impl OptimisticThompson {
    fn new(kind: BanditKind, arms: usize) -> OptimisticThompson {
        OptimisticThompson { kind, inner: Thompson::new(arms), optimism: 1.0 }
    }

    /// The optimistic bias decays with evidence: `optimism / (N(a) + 1)`.
    fn bias(&self, arm: usize) -> f64 {
        self.optimism / (self.inner.pulls(arm) as f64 + 1.0)
    }
}

impl Bandit for OptimisticThompson {
    fn kind(&self) -> BanditKind {
        // The registered Custom kind: labels and reports show the name.
        self.kind
    }

    fn arms(&self) -> usize {
        self.inner.arms()
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        // The built-in exposes its posterior (`value` + `sigma`), so the
        // variant redraws the same `Normal(mean, sigma)` samples and adds
        // the decaying bias before the argmax — one pass, the same
        // two-uniforms-per-arm cost as the built-in.
        let mut best = 0usize;
        let mut best_sample = f64::NEG_INFINITY;
        for arm in 0..self.inner.arms() {
            let unbiased =
                self.inner.value(arm) + self.inner.sigma(arm) * standard_normal_via(&mut *rng);
            let sample = unbiased + self.bias(arm);
            if sample > best_sample {
                best_sample = sample;
                best = arm;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.inner.update(arm, reward);
    }

    fn reset_arm(&mut self, arm: usize) {
        self.inner.reset_arm(arm);
    }

    fn value(&self, arm: usize) -> f64 {
        self.inner.value(arm) + self.bias(arm)
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.inner.pulls(arm)
    }
}

/// One standard-normal draw via Box–Muller (the vendored `rand` shim
/// provides uniform `f64`s only) — the same transform the built-in uses.
fn standard_normal_via(rng: &mut dyn rand::RngCore) -> f64 {
    use rand::Rng as _;
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn main() {
    // "thompson" graduated to a built-in, so the registry now rejects it —
    // the reserved-name check is what keeps one spelling from meaning two
    // different policies in different processes.
    let taken = mab::register_policy("thompson", |params: &PolicyParams| {
        Box::new(Thompson::new(params.arms))
    });
    assert!(
        matches!(taken, Err(RegistryError::ReservedName(_))),
        "the promoted policy's name is reserved by the built-in"
    );

    // One registration, process-wide. From here on "thompson-optimistic"
    // parses everywhere a policy name is accepted *in this process* — specs,
    // `BanditKind::parse`, report labels. (Registration is per-process: a
    // separate binary like `experiments` would need to register the policy
    // itself before `run --algorithm thompson-optimistic` could resolve it.)
    mab::register_policy("thompson-optimistic", |params: &PolicyParams| {
        Box::new(OptimisticThompson::new(params.kind, params.arms))
    })
    .expect("the name is fresh");

    let tests = 400;
    let spec_for = |policy: &str| {
        CampaignSpec::builder()
            .policy_named(policy)
            .max_tests(tests)
            .processor(ProcessorKind::Cva6, BugSpec::Native)
            .rng_seed(17)
            .build()
            .expect("valid spec")
    };

    // The same declarative pipeline runs the built-in and the custom variant.
    let thompson = Campaign::from_spec(&spec_for("thompson")).expect("built-in spec").execute();
    let optimistic =
        Campaign::from_spec(&spec_for("thompson-optimistic")).expect("custom spec").execute();

    println!("MABFuzz on cva6, {tests} tests per campaign\n");
    println!("{}", thompson.stats);
    println!("{}", optimistic.stats);
    assert!(
        optimistic.stats.label().contains("thompson-optimistic"),
        "custom policies label their reports"
    );
    println!(
        "\narm resets — thompson: {}, thompson-optimistic: {}",
        thompson.total_resets, optimistic.total_resets
    );
    println!(
        "\nThe optimistic variant was registered at runtime and named in a\n\
         serializable CampaignSpec; core and bench sources are untouched\n\
         (paper contribution 3: the fuzzing loop is MAB-algorithm-agnostic)."
    );
}
