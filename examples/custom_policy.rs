//! Registered custom policy: Thompson sampling end-to-end through the
//! campaign-spec API.
//!
//! Where `examples/custom_bandit.rs` plugs a policy in imperatively through
//! `MabFuzzer::with_bandit`, this example uses the *registry* redesign: a
//! Thompson-sampling policy (a Bayesian sampler in the spirit of the
//! Thompson-sampling grey-box fuzzing line of work, arXiv:1808.08256) is
//! registered once under the name `"thompson"`, and from then on it behaves
//! exactly like a built-in algorithm — it parses by name, it is named in a
//! declarative [`CampaignSpec`], it drives a full campaign through
//! `Campaign::from_spec(...).execute()`, and it appears in the report label
//! — **without editing a single line of the core or bench crates**.
//!
//! ```sh
//! cargo run --example custom_policy
//! ```

use mab::{Bandit, BanditKind, PolicyParams};
use mabfuzz::{BugSpec, Campaign, CampaignSpec};
use proc_sim::ProcessorKind;

/// Thompson sampling with a Gaussian posterior per arm.
///
/// Each arm keeps the empirical mean of its rewards; selection draws one
/// sample per arm from `Normal(mean, 1/sqrt(n + 1))` — uncertainty shrinks
/// as an arm accumulates pulls — and pulls the argmax. `reset_arm` restores
/// the wide prior, which is exactly the paper's reset-arm modification: a
/// fresh seed starts with fresh beliefs.
struct ThompsonSampling {
    kind: BanditKind,
    means: Vec<f64>,
    pulls: Vec<u64>,
}

impl ThompsonSampling {
    fn new(kind: BanditKind, arms: usize) -> ThompsonSampling {
        ThompsonSampling { kind, means: vec![0.0; arms], pulls: vec![0; arms] }
    }

    /// One standard-normal draw via Box–Muller (the vendored `rand` shim
    /// provides uniform `f64`s only).
    fn standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
        use rand::Rng as _;
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Bandit for ThompsonSampling {
    fn kind(&self) -> BanditKind {
        // The registered Custom kind: labels and reports show "thompson".
        self.kind
    }

    fn arms(&self) -> usize {
        self.means.len()
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        let mut best = 0usize;
        let mut best_sample = f64::NEG_INFINITY;
        for arm in 0..self.means.len() {
            let sigma = 1.0 / ((self.pulls[arm] as f64) + 1.0).sqrt();
            let sample = self.means[arm] + sigma * Self::standard_normal(rng);
            if sample > best_sample {
                best_sample = sample;
                best = arm;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.pulls[arm] += 1;
        let n = self.pulls[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }

    fn reset_arm(&mut self, arm: usize) {
        self.means[arm] = 0.0;
        self.pulls[arm] = 0;
    }

    fn value(&self, arm: usize) -> f64 {
        self.means[arm]
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.pulls[arm]
    }
}

fn main() {
    // One registration, process-wide. From here on "thompson" parses
    // everywhere a policy name is accepted *in this process* — specs,
    // `BanditKind::parse`, report labels. (Registration is per-process: a
    // separate binary like `experiments` would need to register the policy
    // itself before `run --algorithm thompson` could resolve it.)
    mab::register_policy("thompson", |params: &PolicyParams| {
        Box::new(ThompsonSampling::new(params.kind, params.arms))
    })
    .expect("the name is fresh");

    let tests = 400;
    let spec_for = |policy: &str| {
        CampaignSpec::builder()
            .policy_named(policy)
            .max_tests(tests)
            .processor(ProcessorKind::Cva6, BugSpec::Native)
            .rng_seed(17)
            .build()
            .expect("valid spec")
    };

    // The same declarative pipeline runs a built-in and the custom policy.
    let ucb = Campaign::from_spec(&spec_for("ucb")).expect("built-in spec").execute();
    let thompson = Campaign::from_spec(&spec_for("thompson")).expect("custom spec").execute();

    println!("MABFuzz on cva6, {tests} tests per campaign\n");
    println!("{}", ucb.stats);
    println!("{}", thompson.stats);
    assert!(thompson.stats.label().contains("thompson"), "custom policies label their reports");
    println!(
        "\narm resets — UCB: {}, thompson: {}",
        ucb.total_resets, thompson.total_resets
    );
    println!(
        "\nThe Thompson policy was registered at runtime and named in a\n\
         serializable CampaignSpec; core and bench sources are untouched\n\
         (paper contribution 3: the fuzzing loop is MAB-algorithm-agnostic)."
    );
}
