//! Minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! The shim keeps the ergonomics of the real crate — `proptest! { ... }`
//! blocks with `arg in strategy` bindings, `prop_assert!`/`prop_assert_eq!`,
//! integer/float range strategies, `any::<T>()` and
//! `proptest::collection::vec` — but runs a fixed number of deterministic
//! cases per property (no shrinking, no persistence files). Failures panic
//! with the case number so a failing input can be reproduced by rerunning the
//! test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each property runs.
pub const CASES: u32 = 64;

/// Fixed seed of the deterministic case stream (stability beats entropy for
/// an offline CI).
pub const RUNNER_SEED: u64 = 0x4d41_4246_757a_7a21; // "MABFuzz!"

/// The generator handed to strategies; deterministic per test body.
pub type TestRng = StdRng;

/// Creates the deterministic runner generator.
pub fn runner_rng() -> TestRng {
    TestRng::seed_from_u64(RUNNER_SEED)
}

/// A value generator: the shim's equivalent of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Generates arbitrary values of `T` (uniform over the whole domain).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Admissible length specifications for [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange { min: exact, max_exclusive: exact + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange { min: range.start, max_exclusive: range.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *range.start(), max_exclusive: *range.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Per-block runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

impl ProptestConfig {
    /// Returns a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Defines property tests.
///
/// Each function inside the block becomes one `#[test]` (the attribute is
/// written inside the block, as with the real crate); its arguments are
/// regenerated from their strategies for [`CASES`](crate::CASES)
/// deterministic cases (overridable with a leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_with_config! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_with_config! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_with_config {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::runner_rng();
                let cases = ($config).cases;
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let guard = $crate::CaseGuard::new(format!(
                        concat!(
                            "property `", stringify!($name), "` failed at case {} with:",
                            $(concat!("\n  ", stringify!($arg), " = {:?}")),+
                        ),
                        case, $(&$arg),+
                    ));
                    $body
                    guard.disarm();
                }
            }
        )*
    };
}

/// Prints the failing case's inputs when a property body panics.
pub struct CaseGuard {
    message: String,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for one property case.
    pub fn new(message: String) -> CaseGuard {
        CaseGuard { message, armed: true }
    }

    /// Disarms the guard: the case passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("{}", self.message);
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds.
        #[test]
        fn range_strategies_stay_in_bounds(x in 5usize..10, y in -4i32..=4, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        /// Vec strategies respect their size range, including nesting.
        #[test]
        fn vec_strategies_respect_sizes(
            flat in crate::collection::vec(0u32..100, 3..7),
            nested in crate::collection::vec(crate::collection::vec(0u8..4, 0..3), 1..4),
        ) {
            prop_assert!((3..7).contains(&flat.len()));
            prop_assert!(flat.iter().all(|v| *v < 100));
            prop_assert!((1..4).contains(&nested.len()));
        }

        /// `any` produces the full domain without panicking.
        #[test]
        fn any_generates(value in any::<u8>(), wide in any::<i64>()) {
            let _ = (value, wide);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::runner_rng();
        let mut b = crate::runner_rng();
        let s = 0u32..1000;
        for _ in 0..32 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }
}
