//! Minimal, dependency-free stand-in for the subset of `serde` this
//! workspace uses.
//!
//! Nothing in-tree performs serde-based serialisation (the experiment
//! harness renders its JSON reports by hand in `mabfuzz-bench`), but the
//! domain types carry `#[derive(Serialize, Deserialize)]` so that they stay
//! source-compatible with the real `serde` when registry access is
//! available. This shim therefore provides the two traits as markers plus
//! derive macros that emit empty marker implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize {}
