//! Minimal, dependency-free stand-in for the subset of the `rand` crate this
//! workspace uses.
//!
//! The workspace builds in offline environments, so instead of the real
//! `rand` this shim provides the same *API shape* with a self-contained
//! implementation:
//!
//! * [`RngCore`] — the object-safe generator core (`next_u32` / `next_u64` /
//!   `fill_bytes`),
//! * [`Rng`] — the ergonomic extension trait (`gen`, `gen_range`, `gen_bool`),
//!   blanket-implemented for every `RngCore` including trait objects,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64.
//!
//! The generator stream is deterministic and stable: it *is* the
//! reproducibility contract behind every `rng_seed` in the fuzzing campaigns,
//! so its constants must never change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw word output.
///
/// Object safe — the bandit policies take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Samples one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                // The wrapped difference is reinterpreted through the
                // unsigned twin first so that wide signed spans (which wrap
                // the signed type) are not sign-extended into a garbage
                // modulus.
                let span = self.end.wrapping_sub(self.start) as $unsigned as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = end.wrapping_sub(start) as $unsigned as u64 as u128 + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as u64 as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit: f64 = Standard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit * (end - start)
    }
}

/// Ergonomic sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns a uniformly random value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must lie in [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-16i32..=16);
            assert!((-16..=16).contains(&s));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_handles_spans_that_wrap_the_signed_type() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let wide = rng.gen_range(i32::MIN..i32::MAX);
            assert!(wide < i32::MAX);
            let tiny = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&tiny));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn dyn_rng_core_supports_the_extension_trait() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(0..5usize);
        assert!(v < 5);
        let _ = dynamic.gen_bool(0.5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
