//! No-op `Serialize` / `Deserialize` derives backing the offline serde shim.
//!
//! Each derive parses just enough of the item — attributes are skipped, the
//! `struct`/`enum` keyword located, the following identifier taken as the
//! type name — and emits an empty marker-trait implementation. `#[serde(...)]`
//! helper attributes are accepted and ignored. Generic items are rejected
//! with a compile error (no in-tree serde-derived type is generic).

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = match item_name(input) {
        Ok(name) => name,
        Err(message) => return compile_error(&message),
    };
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated marker impl parses")
}

/// Extracts the type name of a `struct`/`enum`/`union` item, rejecting
/// generic items.
fn item_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        let TokenTree::Ident(ident) = token else { continue };
        let keyword = ident.to_string();
        if keyword != "struct" && keyword != "enum" && keyword != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            return Err(format!("expected a name after `{keyword}`"));
        };
        if let Some(TokenTree::Punct(punct)) = tokens.next() {
            if punct.as_char() == '<' {
                return Err(format!(
                    "the serde shim derive does not support generic types (`{name}`)"
                ));
            }
        }
        return Ok(name.to_string());
    }
    Err("expected a struct, enum or union item".to_owned())
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("generated compile_error parses")
}
