//! Minimal, dependency-free stand-in for the subset of `criterion` this
//! workspace uses.
//!
//! It keeps the structure of the real crate — `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size`, `warm_up_time` and
//! `measurement_time`, `bench_function` / `bench_with_input`, `BenchmarkId` —
//! and reports wall-clock mean / min / max per benchmark to stdout. There is
//! no statistical analysis or HTML report; the point is that `cargo bench`
//! runs, prints comparable numbers, and the bench targets stay compiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { id: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { id: name }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly — first untimed warm-up, then
    /// `sample_size` timed samples (each sample batches iterations so that
    /// per-call overhead stays amortised) — and records the per-iteration
    /// time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibration of the batch size.
        let warm_up_start = Instant::now();
        let mut warm_up_iters: u64 = 0;
        while warm_up_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<50} time: [{} {} {}]",
            format_duration(*min),
            format_duration(mean),
            format_duration(*max)
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named collection of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        self.bench_function(id, |bencher| routine(bencher, input))
    }

    /// Finishes the group (reporting already happened per benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", routine);
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("detect", "ucb").to_string(), "detect/ucb");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(format_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }
}
