//! Instruction encoding (decoded [`Instr`] → 32-bit instruction word).

use crate::instr::is_word_shift;
use crate::op::Format;
use crate::{Instr, Op};
#[cfg(test)]
use crate::Gpr;

/// Major opcode field (bits `[6:0]`) for each operation group.
pub(crate) mod opcode {
    pub const LUI: u32 = 0b011_0111;
    pub const AUIPC: u32 = 0b001_0111;
    pub const JAL: u32 = 0b110_1111;
    pub const JALR: u32 = 0b110_0111;
    pub const BRANCH: u32 = 0b110_0011;
    pub const LOAD: u32 = 0b000_0011;
    pub const STORE: u32 = 0b010_0011;
    pub const OP_IMM: u32 = 0b001_0011;
    pub const OP: u32 = 0b011_0011;
    pub const OP_IMM_32: u32 = 0b001_1011;
    pub const OP_32: u32 = 0b011_1011;
    pub const MISC_MEM: u32 = 0b000_1111;
    pub const SYSTEM: u32 = 0b111_0011;
}

/// Returns `(major opcode, funct3, funct7)` for an operation.
///
/// For system instructions without operands the `funct7` slot carries the
/// 12-bit `funct12` value instead.
pub(crate) fn encoding_of(op: Op) -> (u32, u32, u32) {
    use opcode::*;
    match op {
        Op::Lui => (LUI, 0, 0),
        Op::Auipc => (AUIPC, 0, 0),
        Op::Jal => (JAL, 0, 0),
        Op::Jalr => (JALR, 0, 0),
        Op::Beq => (BRANCH, 0b000, 0),
        Op::Bne => (BRANCH, 0b001, 0),
        Op::Blt => (BRANCH, 0b100, 0),
        Op::Bge => (BRANCH, 0b101, 0),
        Op::Bltu => (BRANCH, 0b110, 0),
        Op::Bgeu => (BRANCH, 0b111, 0),
        Op::Lb => (LOAD, 0b000, 0),
        Op::Lh => (LOAD, 0b001, 0),
        Op::Lw => (LOAD, 0b010, 0),
        Op::Ld => (LOAD, 0b011, 0),
        Op::Lbu => (LOAD, 0b100, 0),
        Op::Lhu => (LOAD, 0b101, 0),
        Op::Lwu => (LOAD, 0b110, 0),
        Op::Sb => (STORE, 0b000, 0),
        Op::Sh => (STORE, 0b001, 0),
        Op::Sw => (STORE, 0b010, 0),
        Op::Sd => (STORE, 0b011, 0),
        Op::Addi => (OP_IMM, 0b000, 0),
        Op::Slti => (OP_IMM, 0b010, 0),
        Op::Sltiu => (OP_IMM, 0b011, 0),
        Op::Xori => (OP_IMM, 0b100, 0),
        Op::Ori => (OP_IMM, 0b110, 0),
        Op::Andi => (OP_IMM, 0b111, 0),
        Op::Slli => (OP_IMM, 0b001, 0b000_0000),
        Op::Srli => (OP_IMM, 0b101, 0b000_0000),
        Op::Srai => (OP_IMM, 0b101, 0b010_0000),
        Op::Add => (OP, 0b000, 0b000_0000),
        Op::Sub => (OP, 0b000, 0b010_0000),
        Op::Sll => (OP, 0b001, 0b000_0000),
        Op::Slt => (OP, 0b010, 0b000_0000),
        Op::Sltu => (OP, 0b011, 0b000_0000),
        Op::Xor => (OP, 0b100, 0b000_0000),
        Op::Srl => (OP, 0b101, 0b000_0000),
        Op::Sra => (OP, 0b101, 0b010_0000),
        Op::Or => (OP, 0b110, 0b000_0000),
        Op::And => (OP, 0b111, 0b000_0000),
        Op::Addiw => (OP_IMM_32, 0b000, 0),
        Op::Slliw => (OP_IMM_32, 0b001, 0b000_0000),
        Op::Srliw => (OP_IMM_32, 0b101, 0b000_0000),
        Op::Sraiw => (OP_IMM_32, 0b101, 0b010_0000),
        Op::Addw => (OP_32, 0b000, 0b000_0000),
        Op::Subw => (OP_32, 0b000, 0b010_0000),
        Op::Sllw => (OP_32, 0b001, 0b000_0000),
        Op::Srlw => (OP_32, 0b101, 0b000_0000),
        Op::Sraw => (OP_32, 0b101, 0b010_0000),
        Op::Mul => (OP, 0b000, 0b000_0001),
        Op::Mulh => (OP, 0b001, 0b000_0001),
        Op::Mulhsu => (OP, 0b010, 0b000_0001),
        Op::Mulhu => (OP, 0b011, 0b000_0001),
        Op::Div => (OP, 0b100, 0b000_0001),
        Op::Divu => (OP, 0b101, 0b000_0001),
        Op::Rem => (OP, 0b110, 0b000_0001),
        Op::Remu => (OP, 0b111, 0b000_0001),
        Op::Mulw => (OP_32, 0b000, 0b000_0001),
        Op::Divw => (OP_32, 0b100, 0b000_0001),
        Op::Divuw => (OP_32, 0b101, 0b000_0001),
        Op::Remw => (OP_32, 0b110, 0b000_0001),
        Op::Remuw => (OP_32, 0b111, 0b000_0001),
        Op::Csrrw => (SYSTEM, 0b001, 0),
        Op::Csrrs => (SYSTEM, 0b010, 0),
        Op::Csrrc => (SYSTEM, 0b011, 0),
        Op::Csrrwi => (SYSTEM, 0b101, 0),
        Op::Csrrsi => (SYSTEM, 0b110, 0),
        Op::Csrrci => (SYSTEM, 0b111, 0),
        Op::Fence => (MISC_MEM, 0b000, 0),
        Op::FenceI => (MISC_MEM, 0b001, 0),
        // funct12 values in the funct7 slot:
        Op::Ecall => (SYSTEM, 0b000, 0x000),
        Op::Ebreak => (SYSTEM, 0b000, 0x001),
        Op::Mret => (SYSTEM, 0b000, 0x302),
        Op::Wfi => (SYSTEM, 0b000, 0x105),
    }
}

impl Instr {
    /// Encodes the instruction into its 32-bit instruction word.
    ///
    /// The instruction is [`normalize`](Instr::normalize)d first, so out-of-range
    /// immediates are clamped rather than silently corrupting neighbouring
    /// fields.
    ///
    /// # Example
    ///
    /// ```
    /// use riscv::{Instr, Gpr, Op};
    ///
    /// // The canonical NOP encoding.
    /// assert_eq!(Instr::nop().encode(), 0x0000_0013);
    /// ```
    pub fn encode(&self) -> u32 {
        let instr = self.normalize();
        let (major, funct3, funct7) = encoding_of(instr.op);
        let rd = u32::from(instr.rd.index());
        let rs1 = u32::from(instr.rs1.index());
        let rs2 = u32::from(instr.rs2.index());
        let imm = instr.imm;

        match instr.op.format() {
            Format::R => {
                major | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
            }
            Format::I => {
                let imm12 = (imm as u32) & 0xfff;
                major | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (imm12 << 20)
            }
            Format::IShift => {
                let shamt_bits = if is_word_shift(instr.op) { 5 } else { 6 };
                let shamt = (imm as u32) & ((1 << shamt_bits) - 1);
                // For RV64 non-word shifts funct7 occupies bits [31:26] only.
                let high = if is_word_shift(instr.op) { funct7 << 25 } else { (funct7 >> 1) << 26 };
                major | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (shamt << 20) | high
            }
            Format::S => {
                let imm12 = (imm as u32) & 0xfff;
                let lo = imm12 & 0x1f;
                let hi = (imm12 >> 5) & 0x7f;
                major | (lo << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (hi << 25)
            }
            Format::B => {
                let off = (imm as u32) & 0x1fff;
                let b11 = (off >> 11) & 1;
                let b4_1 = (off >> 1) & 0xf;
                let b10_5 = (off >> 5) & 0x3f;
                let b12 = (off >> 12) & 1;
                major
                    | (b11 << 7)
                    | (b4_1 << 8)
                    | (funct3 << 12)
                    | (rs1 << 15)
                    | (rs2 << 20)
                    | (b10_5 << 25)
                    | (b12 << 31)
            }
            Format::U => {
                let imm20 = ((imm as u32) >> 12) & 0xf_ffff;
                major | (rd << 7) | (imm20 << 12)
            }
            Format::J => {
                let off = (imm as u32) & 0x1f_ffff;
                let b19_12 = (off >> 12) & 0xff;
                let b11 = (off >> 11) & 1;
                let b10_1 = (off >> 1) & 0x3ff;
                let b20 = (off >> 20) & 1;
                major | (rd << 7) | (b19_12 << 12) | (b11 << 20) | (b10_1 << 21) | (b20 << 31)
            }
            Format::Csr | Format::CsrImm => {
                let csr = (imm as u32) & 0xfff;
                major | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (csr << 20)
            }
            Format::Fence => {
                let bits = (imm as u32) & 0xff;
                major | (funct3 << 12) | (bits << 20)
            }
            Format::System => {
                // funct7 actually holds funct12 for these.
                major | (funct3 << 12) | (funct7 << 20)
            }
        }
    }

    /// Encodes the instruction as little-endian bytes, the in-memory layout
    /// the processor frontends fetch.
    pub fn encode_bytes(&self) -> [u8; 4] {
        self.encode().to_le_bytes()
    }
}

/// Encodes a slice of instructions into a flat little-endian byte image.
pub fn encode_all(instrs: &[Instr]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(instrs.len() * 4);
    encode_all_into(instrs, &mut bytes);
    bytes
}

/// Encodes a sequence of instructions into a caller-owned buffer, appending
/// to its current contents (clear it first for a fresh image). Reusing one
/// buffer across encodes avoids per-call allocation in the fuzzing hot loop.
pub fn encode_all_into(instrs: &[Instr], bytes: &mut Vec<u8>) {
    bytes.reserve(instrs.len() * 4);
    for instr in instrs {
        bytes.extend_from_slice(&instr.encode_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_encodings_match_the_spec() {
        // Values cross-checked against the RISC-V unprivileged spec examples.
        assert_eq!(Instr::nop().encode(), 0x0000_0013);
        assert_eq!(Instr::nullary(Op::Ecall).encode(), 0x0000_0073);
        assert_eq!(Instr::nullary(Op::Ebreak).encode(), 0x0010_0073);
        assert_eq!(Instr::nullary(Op::Mret).encode(), 0x3020_0073);
        assert_eq!(Instr::nullary(Op::Wfi).encode(), 0x1050_0073);
        assert_eq!(Instr::nullary(Op::FenceI).encode(), 0x0000_100f);
        // add a0, a1, a2 => 0x00c58533
        assert_eq!(Instr::rtype(Op::Add, Gpr::A0, Gpr::A1, Gpr::A2).encode(), 0x00c5_8533);
        // addi a0, zero, 42 => 0x02a00513
        assert_eq!(Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 42).encode(), 0x02a0_0513);
        // lui t0, 0x12345 => 0x123452b7
        assert_eq!(Instr::utype(Op::Lui, Gpr::T0, 0x1234_5000).encode(), 0x1234_52b7);
        // sd a0, 8(sp) => 0x00a13423
        assert_eq!(Instr::store(Op::Sd, Gpr::A0, Gpr::Sp, 8).encode(), 0x00a1_3423);
        // beq a0, a1, +16 => 0x00b50863
        assert_eq!(Instr::branch(Op::Beq, Gpr::A0, Gpr::A1, 16).encode(), 0x00b5_0863);
        // jal ra, +8 => 0x008000ef
        assert_eq!(Instr::jal(Gpr::Ra, 8).encode(), 0x0080_00ef);
    }

    #[test]
    fn shift_encodings_distinguish_logical_and_arithmetic() {
        let srli = Instr::itype(Op::Srli, Gpr::A0, Gpr::A1, 3).encode();
        let srai = Instr::itype(Op::Srai, Gpr::A0, Gpr::A1, 3).encode();
        assert_ne!(srli, srai);
        assert_eq!(srai >> 26, 0b01_0000);
        // 64-bit shamt of 63 must survive encoding.
        let s63 = Instr::itype(Op::Srli, Gpr::A0, Gpr::A1, 63).encode();
        assert_eq!((s63 >> 20) & 0x3f, 63);
    }

    #[test]
    fn negative_immediates_fill_the_high_bits() {
        let w = Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, -1).encode();
        assert_eq!(w >> 20, 0xfff);
        let s = Instr::store(Op::Sw, Gpr::A0, Gpr::Sp, -4).encode();
        // imm[11:5] = 0x7f, imm[4:0] = 0x1c
        assert_eq!(s >> 25, 0x7f);
        assert_eq!((s >> 7) & 0x1f, 0x1c);
    }

    #[test]
    fn encode_all_concatenates_words() {
        let prog = [Instr::nop(), Instr::nullary(Op::Ecall)];
        let bytes = encode_all(&prog);
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[0..4], &0x0000_0013u32.to_le_bytes());
        assert_eq!(&bytes[4..8], &0x0000_0073u32.to_le_bytes());
    }

    #[test]
    fn every_op_encodes_with_its_major_opcode() {
        for op in Op::ALL {
            let word = Instr { op, rd: Gpr::A0, rs1: Gpr::A1, rs2: Gpr::A2, imm: 16 }
                .normalize()
                .encode();
            let (major, _, _) = encoding_of(op);
            assert_eq!(word & 0x7f, major, "major opcode mismatch for {op}");
        }
    }
}
