//! RISC-V ISA substrate for the MABFuzz reproduction.
//!
//! This crate models the subset of the RISC-V instruction set exercised by the
//! fuzzing campaigns in the MABFuzz paper: RV64I base integer instructions, the
//! M extension (multiply/divide), the Zicsr extension (CSR accesses) and the
//! privileged/system instructions that the injected vulnerabilities depend on
//! (`FENCE.I`, `EBREAK`, `ECALL`, `MRET`, `WFI`).
//!
//! It provides:
//!
//! * [`Gpr`] — the 32 general-purpose integer registers,
//! * [`CsrAddr`] — control-and-status-register addresses with machine-mode metadata,
//! * [`Op`] / [`Instr`] — a decoded, mutation-friendly instruction representation,
//! * [`encode`](Instr::encode) / [`decode`](mod@decode) — lossless conversion to and from the
//!   32-bit instruction words that the fuzzer mutates at the bit level,
//! * [`Program`] — an executable test case (a sequence of instruction words plus a
//!   data region),
//! * [`ProgramGenerator`](gen::ProgramGenerator) — the weighted random instruction
//!   generator used to create fuzzing seeds.
//!
//! # Example
//!
//! ```
//! use riscv::{Instr, Gpr, Op, decode};
//!
//! let add = Instr::rtype(Op::Add, Gpr::A0, Gpr::A1, Gpr::A2);
//! let word = add.encode();
//! let back = decode(word).expect("round trip");
//! assert_eq!(back, add);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod csr;
pub mod decode;
pub mod encode;
pub mod gen;
pub mod gpr;
pub mod instr;
pub mod op;
pub mod program;

pub use csr::CsrAddr;
pub use decode::{decode, DecodeError, TruncatedTail};
pub use gpr::Gpr;
pub use instr::Instr;
pub use op::{Op, OpClass};
pub use program::Program;

/// The fixed size, in bytes, of every instruction modelled by this crate.
///
/// The compressed (`C`) extension is not modelled; all instructions are 32 bits.
pub const INSTR_BYTES: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gpr>();
        assert_send_sync::<CsrAddr>();
        assert_send_sync::<Op>();
        assert_send_sync::<Instr>();
        assert_send_sync::<Program>();
    }
}
