//! Weighted random program generation (fuzzing seed creation).
//!
//! TheHuzz — and therefore MABFuzz, which reuses its seed generator — creates
//! initial seeds by sampling instructions from a weighted distribution over
//! functional classes, constraining operands so that most instructions execute
//! without faulting (in-range memory addresses, forward branch targets) while
//! still leaving room for the exceptional paths the vulnerabilities live on.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::program::{DATA_BASE, DATA_SIZE};
use crate::{CsrAddr, Gpr, Instr, Op, OpClass, Program};

/// Relative weights for each functional class when sampling instructions.
///
/// The defaults roughly follow the instruction-profile table of TheHuzz:
/// arithmetic dominates, memory and control flow are common, CSR and system
/// instructions are rare but present (they are required to reach the
/// privileged-logic coverage points and several vulnerabilities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassWeights {
    /// Weight of integer arithmetic/logic instructions.
    pub arith: u32,
    /// Weight of multiply instructions.
    pub mul: u32,
    /// Weight of divide/remainder instructions.
    pub div: u32,
    /// Weight of loads.
    pub load: u32,
    /// Weight of stores.
    pub store: u32,
    /// Weight of conditional branches.
    pub branch: u32,
    /// Weight of jumps.
    pub jump: u32,
    /// Weight of CSR accesses.
    pub csr: u32,
    /// Weight of system instructions (`ecall`, `ebreak`, `mret`, `wfi`).
    pub system: u32,
    /// Weight of fences.
    pub fence: u32,
}

impl Default for ClassWeights {
    fn default() -> Self {
        ClassWeights {
            arith: 40,
            mul: 6,
            div: 4,
            load: 12,
            store: 12,
            branch: 10,
            jump: 4,
            csr: 6,
            system: 3,
            fence: 3,
        }
    }
}

impl ClassWeights {
    /// Returns the weight assigned to `class`.
    pub fn weight(&self, class: OpClass) -> u32 {
        match class {
            OpClass::Arith => self.arith,
            OpClass::Mul => self.mul,
            OpClass::Div => self.div,
            OpClass::Load => self.load,
            OpClass::Store => self.store,
            OpClass::Branch => self.branch,
            OpClass::Jump => self.jump,
            OpClass::Csr => self.csr,
            OpClass::System => self.system,
            OpClass::Fence => self.fence,
        }
    }

    /// Returns the sum of all weights.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero, because then no instruction could ever
    /// be sampled.
    pub fn total(&self) -> u32 {
        let total = OpClass::ALL.iter().map(|c| self.weight(*c)).sum();
        assert!(total > 0, "at least one instruction class weight must be non-zero");
        total
    }

    /// Samples a class according to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> OpClass {
        let mut ticket = rng.gen_range(0..self.total());
        for class in OpClass::ALL {
            let w = self.weight(class);
            if ticket < w {
                return class;
            }
            ticket -= w;
        }
        unreachable!("weighted sampling exhausted all classes")
    }
}

/// Configuration for the random program generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of instructions per generated program (before the terminating
    /// `ecall`).
    pub instr_count: usize,
    /// Class weights used while sampling.
    pub weights: ClassWeights,
    /// Probability (0..=1) that a generated CSR access targets an
    /// unimplemented CSR address rather than a known one.
    pub unimplemented_csr_prob: f64,
    /// Probability (0..=1) that a memory access is generated with a random —
    /// likely invalid — address base instead of the scratch data region.
    pub wild_memory_prob: f64,
    /// Whether to append a terminating `ecall` so the golden model and DUT
    /// both stop at a well-defined point.
    pub terminate_with_ecall: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            instr_count: 20,
            weights: ClassWeights::default(),
            unimplemented_csr_prob: 0.15,
            wild_memory_prob: 0.05,
            terminate_with_ecall: true,
        }
    }
}

/// Weighted random program generator.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use riscv::gen::{GeneratorConfig, ProgramGenerator};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let generator = ProgramGenerator::new(GeneratorConfig::default());
/// let program = generator.generate(&mut rng);
/// assert!(program.len() >= 20);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramGenerator {
    config: GeneratorConfig,
}

impl ProgramGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> ProgramGenerator {
        ProgramGenerator { config }
    }

    /// Returns the generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates one random program.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        let n = self.config.instr_count;
        let mut instrs = Vec::with_capacity(n + 1);
        for index in 0..n {
            instrs.push(self.generate_instr(rng, index, n));
        }
        if self.config.terminate_with_ecall {
            instrs.push(Instr::nullary(Op::Ecall));
        }
        Program::from_instrs(instrs)
    }

    /// Generates a single instruction for position `index` of a program of
    /// `len` instructions (the position bounds forward branch targets).
    pub fn generate_instr<R: Rng + ?Sized>(&self, rng: &mut R, index: usize, len: usize) -> Instr {
        let class = self.config.weights.sample(rng);
        self.generate_of_class(rng, class, index, len)
    }

    /// Generates a single instruction of the requested class.
    pub fn generate_of_class<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: OpClass,
        index: usize,
        len: usize,
    ) -> Instr {
        let op = random_op_of_class(rng, class);
        let rd = random_gpr(rng);
        let rs1 = random_gpr(rng);
        let rs2 = random_gpr(rng);
        let instr = match class {
            OpClass::Arith | OpClass::Mul | OpClass::Div => match op.format() {
                crate::op::Format::R => Instr::rtype(op, rd, rs1, rs2),
                crate::op::Format::U => {
                    Instr::utype(op, rd, i64::from(rng.gen::<i32>()) & !0xfff)
                }
                crate::op::Format::IShift => {
                    Instr::itype(op, rd, rs1, i64::from(rng.gen_range(0u8..64)))
                }
                _ => Instr::itype(op, rd, rs1, i64::from(rng.gen_range(-2048i32..2048))),
            },
            OpClass::Load | OpClass::Store => self.generate_memory(rng, op, rd, rs1, rs2),
            OpClass::Branch => {
                let offset = 4 * self.forward_slots(rng, index, len);
                Instr::branch(op, rs1, rs2, offset)
            }
            OpClass::Jump => {
                if op == Op::Jal {
                    Instr::jal(rd, 4 * self.forward_slots(rng, index, len))
                } else {
                    // jalr through a register; keep the offset tiny.
                    Instr::itype(Op::Jalr, rd, rs1, 4 * rng.gen_range(0i64..4))
                }
            }
            OpClass::Csr => {
                let csr = self.random_csr(rng);
                if matches!(op, Op::Csrrwi | Op::Csrrsi | Op::Csrrci) {
                    Instr::csr_imm(op, rd, csr, rng.gen_range(0..32))
                } else {
                    Instr::csr(op, rd, csr, rs1)
                }
            }
            OpClass::System | OpClass::Fence => Instr::nullary(op),
        };
        instr.normalize()
    }

    /// Draws a forward control-transfer distance (in instruction slots) for
    /// a branch or `jal` at position `index` of a `len`-instruction body:
    /// mostly short forward offsets so programs terminate.
    ///
    /// Every drawn target stays inside the final text image. With the
    /// terminating `ecall` the body occupies slots `0..len` and slot `len`
    /// (the ecall itself) is the furthest reachable target, so the raw draw
    /// of `1..=remaining` is already closed. Without the terminator slot
    /// `len` would be one past the end of the image, so the draw is clamped
    /// to `len - 1 - index` — *after* consuming the RNG, keeping the
    /// default-config instruction stream byte-identical. The clamp can reach
    /// zero only on the last slot, where the instruction targets itself (a
    /// static self-loop the step limit bounds dynamically).
    fn forward_slots<R: Rng + ?Sized>(&self, rng: &mut R, index: usize, len: usize) -> i64 {
        let remaining = (len - index).max(1) as i64;
        let drawn = rng.gen_range(1..=remaining.min(8));
        if self.config.terminate_with_ecall {
            drawn
        } else {
            drawn.min(len.saturating_sub(index + 1) as i64)
        }
    }

    fn generate_memory<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        op: Op,
        rd: Gpr,
        rs1: Gpr,
        rs2: Gpr,
    ) -> Instr {
        // Memory accesses use x0-relative absolute addressing only when "wild";
        // the common case leaves the base register untouched so that coverage
        // depends on what earlier instructions put there.
        let wild = rng.gen_bool(self.config.wild_memory_prob);
        let offset = if wild {
            i64::from(rng.gen_range(-2048i32..2048))
        } else {
            let width = i64::from(op.memory_width().unwrap_or(8));
            let slots = (DATA_SIZE as i64 / width).min(256);
            (rng.gen_range(0..slots) * width).min(2047)
        };
        // Loads/stores are anchored on the data region via a known register by
        // convention: the seed prologue below materialises DATA_BASE into gp.
        let base = if wild { rs1 } else { Gpr::Gp };
        if op.class() == OpClass::Load {
            Instr::itype(op, rd, base, offset)
        } else {
            Instr::store(op, rs2, base, offset)
        }
    }

    fn random_csr<R: Rng + ?Sized>(&self, rng: &mut R) -> CsrAddr {
        if rng.gen_bool(self.config.unimplemented_csr_prob) {
            CsrAddr::new(rng.gen_range(0..0x1000))
        } else {
            let i = rng.gen_range(0..CsrAddr::IMPLEMENTED.len());
            CsrAddr::IMPLEMENTED[i]
        }
    }

    /// Generates the canonical seed prologue: materialise the data-region base
    /// into `gp` and seed a few registers with varied constants so that the
    /// first instructions of a random program have meaningful operands.
    pub fn prologue() -> Vec<Instr> {
        let hi = (DATA_BASE >> 12) as i64;
        vec![
            // RV64 `lui` sign-extends bit 31; the simulators mask effective
            // addresses to the 32-bit physical space, so the sign extension is
            // harmless. `.normalize()` applies the same sign extension here so
            // the prologue matches what a decode of its own encoding yields.
            Instr::utype(Op::Lui, Gpr::Gp, hi << 12).normalize(),
            Instr::itype(Op::Addi, Gpr::Gp, Gpr::Gp, (DATA_BASE & 0xfff) as i64),
            Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 1),
            Instr::itype(Op::Addi, Gpr::A1, Gpr::Zero, -1),
            Instr::itype(Op::Addi, Gpr::A2, Gpr::Zero, 0x7ff),
            Instr::itype(Op::Addi, Gpr::Sp, Gpr::Gp, 0x400),
        ]
    }

    /// Generates a complete seed program: prologue, random body, terminator.
    pub fn generate_seed<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        let mut instrs = Self::prologue();
        let body = self.generate(rng);
        instrs.extend(body.instrs().iter().copied());
        Program::from_instrs(instrs)
    }
}

impl Default for ProgramGenerator {
    fn default() -> Self {
        ProgramGenerator::new(GeneratorConfig::default())
    }
}

fn random_op_of_class<R: Rng + ?Sized>(rng: &mut R, class: OpClass) -> Op {
    let ops: Vec<Op> = Op::of_class(class).collect();
    ops[rng.gen_range(0..ops.len())]
}

fn random_gpr<R: Rng + ?Sized>(rng: &mut R) -> Gpr {
    Gpr::from_index(rng.gen_range(0..32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn default_weights_are_positive() {
        let weights = ClassWeights::default();
        assert!(weights.total() > 0);
        for class in OpClass::ALL {
            // Every class is reachable with the default profile.
            assert!(weights.weight(class) > 0, "{class}");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_weights_panic() {
        let weights = ClassWeights {
            arith: 0,
            mul: 0,
            div: 0,
            load: 0,
            store: 0,
            branch: 0,
            jump: 0,
            csr: 0,
            system: 0,
            fence: 0,
        };
        let _ = weights.total();
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let generator = ProgramGenerator::default();
        let a = generator.generate_seed(&mut StdRng::seed_from_u64(42));
        let b = generator.generate_seed(&mut StdRng::seed_from_u64(42));
        let c = generator.generate_seed(&mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_have_requested_length() {
        let config = GeneratorConfig { instr_count: 50, ..GeneratorConfig::default() };
        let generator = ProgramGenerator::new(config);
        let program = generator.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(program.len(), 51); // + terminating ecall
        assert_eq!(program.instrs().last().copied(), Some(Instr::nullary(Op::Ecall)));
    }

    #[test]
    fn generated_instructions_are_normalized_and_encodable() {
        let generator = ProgramGenerator::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let program = generator.generate_seed(&mut rng);
            for instr in program.instrs() {
                assert!(instr.is_normalized(), "{instr}");
                let decoded = crate::decode(instr.encode()).expect("generated instruction decodes");
                assert_eq!(decoded, *instr);
            }
        }
    }

    #[test]
    fn class_mix_respects_weights_qualitatively() {
        let generator = ProgramGenerator::new(GeneratorConfig {
            instr_count: 2000,
            ..GeneratorConfig::default()
        });
        let program = generator.generate(&mut StdRng::seed_from_u64(9));
        let mut counts = std::collections::HashMap::new();
        for instr in program.instrs() {
            *counts.entry(instr.op.class()).or_insert(0usize) += 1;
        }
        let arith = counts.get(&OpClass::Arith).copied().unwrap_or(0);
        let system = counts.get(&OpClass::System).copied().unwrap_or(0);
        assert!(arith > system, "arith ({arith}) should dominate system ({system})");
        // With 2000 samples every class should appear at least once.
        for class in OpClass::ALL {
            assert!(counts.contains_key(&class), "class {class} never generated");
        }
    }

    #[test]
    fn seeds_differ_across_rng_draws() {
        let generator = ProgramGenerator::default();
        let mut rng = StdRng::seed_from_u64(5);
        let programs: HashSet<Vec<u8>> =
            (0..10).map(|_| generator.generate_seed(&mut rng).text_bytes()).collect();
        assert_eq!(programs.len(), 10, "consecutive seeds should be distinct");
    }

    #[test]
    fn static_branch_and_jal_targets_never_escape_the_text_image() {
        // Regression: without the terminating ecall the raw forward draw
        // could target one slot past the end of the image; the clamp in
        // `forward_slots` closes it. With the terminator, slot `len` (the
        // ecall) is in-text, so both modes must generate only in-text
        // targets.
        for terminate in [true, false] {
            let generator = ProgramGenerator::new(GeneratorConfig {
                terminate_with_ecall: terminate,
                ..GeneratorConfig::default()
            });
            let mut rng = StdRng::seed_from_u64(17);
            for round in 0..200 {
                let program = generator.generate_seed(&mut rng);
                let slots = program.len() as i64;
                for (slot, instr) in program.instrs().iter().enumerate() {
                    let target = match instr.op {
                        Op::Jal => slot as i64 + instr.imm / 4,
                        op if op.class() == OpClass::Branch => slot as i64 + instr.imm / 4,
                        _ => continue,
                    };
                    assert!(
                        (0..slots).contains(&target),
                        "round {round} (terminate={terminate}): {instr} at slot {slot} \
                         targets slot {target} of {slots}"
                    );
                }
            }
        }
    }

    #[test]
    fn prologue_materialises_data_base_in_gp() {
        let prologue = ProgramGenerator::prologue();
        assert_eq!(prologue[0].op, Op::Lui);
        assert_eq!(prologue[0].rd, Gpr::Gp);
        // lui gp, hi + addi gp, gp, lo == DATA_BASE
        let value = (prologue[0].imm as u64 & 0xffff_ffff) + prologue[1].imm as u64;
        assert_eq!(value, DATA_BASE);
    }
}
