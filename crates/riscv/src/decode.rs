//! Instruction decoding (32-bit instruction word → decoded [`Instr`]).

use std::error::Error;
use std::fmt;

use crate::encode::opcode;
use crate::instr::clamp_signed;
use crate::{Gpr, Instr, Op};

/// Error returned by [`decode`] when an instruction word does not encode any
/// operation known to this crate.
///
/// The fuzzer treats such words as *illegal instructions*: the golden model
/// raises an illegal-instruction exception for them, and one of the injected
/// vulnerabilities (V2, CWE-1242) consists of a processor silently executing a
/// subset of them instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

fn field(word: u32, lo: u32, bits: u32) -> u32 {
    (word >> lo) & ((1 << bits) - 1)
}

fn rd(word: u32) -> Gpr {
    Gpr::from_index(field(word, 7, 5) as u8)
}
fn rs1(word: u32) -> Gpr {
    Gpr::from_index(field(word, 15, 5) as u8)
}
fn rs2(word: u32) -> Gpr {
    Gpr::from_index(field(word, 20, 5) as u8)
}
fn funct3(word: u32) -> u32 {
    field(word, 12, 3)
}
fn funct7(word: u32) -> u32 {
    field(word, 25, 7)
}

fn imm_i(word: u32) -> i64 {
    clamp_signed(i64::from(field(word, 20, 12)), 12)
}

fn imm_s(word: u32) -> i64 {
    let value = (field(word, 25, 7) << 5) | field(word, 7, 5);
    clamp_signed(i64::from(value), 12)
}

fn imm_b(word: u32) -> i64 {
    let value = (field(word, 31, 1) << 12)
        | (field(word, 7, 1) << 11)
        | (field(word, 25, 6) << 5)
        | (field(word, 8, 4) << 1);
    clamp_signed(i64::from(value), 13)
}

fn imm_u(word: u32) -> i64 {
    clamp_signed(i64::from(word & 0xffff_f000), 32)
}

fn imm_j(word: u32) -> i64 {
    let value = (field(word, 31, 1) << 20)
        | (field(word, 12, 8) << 12)
        | (field(word, 20, 1) << 11)
        | (field(word, 21, 10) << 1);
    clamp_signed(i64::from(value), 21)
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] when the word does not correspond to any RV64IM,
/// Zicsr, fence or supported system instruction. Such words are still valid
/// fuzzer inputs — they exercise the illegal-instruction paths of the
/// processors under test.
///
/// # Example
///
/// ```
/// use riscv::{decode, Instr};
///
/// assert_eq!(decode(0x0000_0013)?, Instr::nop());
/// assert!(decode(0xffff_ffff).is_err());
/// # Ok::<(), riscv::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word });
    let major = word & 0x7f;
    let f3 = funct3(word);
    let f7 = funct7(word);

    let instr = match major {
        opcode::LUI => Instr::utype(Op::Lui, rd(word), imm_u(word)),
        opcode::AUIPC => Instr::utype(Op::Auipc, rd(word), imm_u(word)),
        opcode::JAL => Instr::jal(rd(word), imm_j(word)),
        opcode::JALR => {
            if f3 != 0 {
                return err;
            }
            Instr::itype(Op::Jalr, rd(word), rs1(word), imm_i(word))
        }
        opcode::BRANCH => {
            let op = match f3 {
                0b000 => Op::Beq,
                0b001 => Op::Bne,
                0b100 => Op::Blt,
                0b101 => Op::Bge,
                0b110 => Op::Bltu,
                0b111 => Op::Bgeu,
                _ => return err,
            };
            Instr::branch(op, rs1(word), rs2(word), imm_b(word))
        }
        opcode::LOAD => {
            let op = match f3 {
                0b000 => Op::Lb,
                0b001 => Op::Lh,
                0b010 => Op::Lw,
                0b011 => Op::Ld,
                0b100 => Op::Lbu,
                0b101 => Op::Lhu,
                0b110 => Op::Lwu,
                _ => return err,
            };
            Instr::itype(op, rd(word), rs1(word), imm_i(word))
        }
        opcode::STORE => {
            let op = match f3 {
                0b000 => Op::Sb,
                0b001 => Op::Sh,
                0b010 => Op::Sw,
                0b011 => Op::Sd,
                _ => return err,
            };
            Instr::store(op, rs2(word), rs1(word), imm_s(word))
        }
        opcode::OP_IMM => match f3 {
            0b000 => Instr::itype(Op::Addi, rd(word), rs1(word), imm_i(word)),
            0b010 => Instr::itype(Op::Slti, rd(word), rs1(word), imm_i(word)),
            0b011 => Instr::itype(Op::Sltiu, rd(word), rs1(word), imm_i(word)),
            0b100 => Instr::itype(Op::Xori, rd(word), rs1(word), imm_i(word)),
            0b110 => Instr::itype(Op::Ori, rd(word), rs1(word), imm_i(word)),
            0b111 => Instr::itype(Op::Andi, rd(word), rs1(word), imm_i(word)),
            0b001 | 0b101 => {
                let shamt = i64::from(field(word, 20, 6));
                let funct6 = field(word, 26, 6);
                let op = match (f3, funct6) {
                    (0b001, 0b00_0000) => Op::Slli,
                    (0b101, 0b00_0000) => Op::Srli,
                    (0b101, 0b01_0000) => Op::Srai,
                    _ => return err,
                };
                Instr::itype(op, rd(word), rs1(word), shamt)
            }
            _ => return err,
        },
        opcode::OP => {
            let op = match (f3, f7) {
                (0b000, 0b000_0000) => Op::Add,
                (0b000, 0b010_0000) => Op::Sub,
                (0b001, 0b000_0000) => Op::Sll,
                (0b010, 0b000_0000) => Op::Slt,
                (0b011, 0b000_0000) => Op::Sltu,
                (0b100, 0b000_0000) => Op::Xor,
                (0b101, 0b000_0000) => Op::Srl,
                (0b101, 0b010_0000) => Op::Sra,
                (0b110, 0b000_0000) => Op::Or,
                (0b111, 0b000_0000) => Op::And,
                (0b000, 0b000_0001) => Op::Mul,
                (0b001, 0b000_0001) => Op::Mulh,
                (0b010, 0b000_0001) => Op::Mulhsu,
                (0b011, 0b000_0001) => Op::Mulhu,
                (0b100, 0b000_0001) => Op::Div,
                (0b101, 0b000_0001) => Op::Divu,
                (0b110, 0b000_0001) => Op::Rem,
                (0b111, 0b000_0001) => Op::Remu,
                _ => return err,
            };
            Instr::rtype(op, rd(word), rs1(word), rs2(word))
        }
        opcode::OP_IMM_32 => match f3 {
            0b000 => Instr::itype(Op::Addiw, rd(word), rs1(word), imm_i(word)),
            0b001 | 0b101 => {
                let shamt = i64::from(field(word, 20, 5));
                let op = match (f3, f7) {
                    (0b001, 0b000_0000) => Op::Slliw,
                    (0b101, 0b000_0000) => Op::Srliw,
                    (0b101, 0b010_0000) => Op::Sraiw,
                    _ => return err,
                };
                Instr::itype(op, rd(word), rs1(word), shamt)
            }
            _ => return err,
        },
        opcode::OP_32 => {
            let op = match (f3, f7) {
                (0b000, 0b000_0000) => Op::Addw,
                (0b000, 0b010_0000) => Op::Subw,
                (0b001, 0b000_0000) => Op::Sllw,
                (0b101, 0b000_0000) => Op::Srlw,
                (0b101, 0b010_0000) => Op::Sraw,
                (0b000, 0b000_0001) => Op::Mulw,
                (0b100, 0b000_0001) => Op::Divw,
                (0b101, 0b000_0001) => Op::Divuw,
                (0b110, 0b000_0001) => Op::Remw,
                (0b111, 0b000_0001) => Op::Remuw,
                _ => return err,
            };
            Instr::rtype(op, rd(word), rs1(word), rs2(word))
        }
        opcode::MISC_MEM => {
            let bits = i64::from(field(word, 20, 8));
            match f3 {
                0b000 => Instr { imm: bits, ..Instr::nullary(Op::Fence) },
                0b001 => Instr { imm: bits, ..Instr::nullary(Op::FenceI) },
                _ => return err,
            }
        }
        opcode::SYSTEM => match f3 {
            0b000 => {
                if rd(word) != Gpr::Zero || rs1(word) != Gpr::Zero {
                    return err;
                }
                match field(word, 20, 12) {
                    0x000 => Instr::nullary(Op::Ecall),
                    0x001 => Instr::nullary(Op::Ebreak),
                    0x302 => Instr::nullary(Op::Mret),
                    0x105 => Instr::nullary(Op::Wfi),
                    _ => return err,
                }
            }
            _ => {
                let op = match f3 {
                    0b001 => Op::Csrrw,
                    0b010 => Op::Csrrs,
                    0b011 => Op::Csrrc,
                    0b101 => Op::Csrrwi,
                    0b110 => Op::Csrrsi,
                    0b111 => Op::Csrrci,
                    _ => return err,
                };
                Instr {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: Gpr::Zero,
                    imm: i64::from(field(word, 20, 12)),
                }
            }
        },
        _ => return err,
    };
    Ok(instr)
}

/// The 1–3 trailing bytes of a byte image whose length is not a multiple of
/// the 4-byte instruction size.
///
/// Surfaced by [`decode_all`] so a truncated or corrupt image cannot
/// silently masquerade as a shorter valid one (the tail used to be dropped
/// on the floor by `chunks_exact(4)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedTail {
    bytes: [u8; 3],
    len: u8,
}

impl TruncatedTail {
    fn new(tail: &[u8]) -> TruncatedTail {
        debug_assert!((1..=3).contains(&tail.len()));
        let mut bytes = [0u8; 3];
        bytes[..tail.len()].copy_from_slice(tail);
        TruncatedTail { bytes, len: tail.len() as u8 }
    }

    /// The truncated bytes, in image order.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes[..usize::from(self.len)]
    }

    /// Number of truncated bytes (1–3).
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Always `false`: a tail only exists when at least one byte was cut off.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The tail zero-padded up to a full little-endian instruction word —
    /// what the hardware would fetch from the partially loaded final slot.
    pub fn padded_word(&self) -> u32 {
        u32::from_le_bytes([self.bytes[0], self.bytes[1], self.bytes[2], 0])
    }
}

impl fmt::Display for TruncatedTail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-byte truncated instruction word", self.len)
    }
}

/// Decodes a little-endian byte image into instructions, mapping undecodable
/// words to `Err` entries so callers can still see where they sit in the
/// stream.
///
/// The second element reports a trailing 1–3 byte remainder when the image's
/// length is not a multiple of the instruction size; it is `None` for a
/// well-formed image. Callers must not ignore a `Some` tail — it means the
/// image was truncated mid-instruction.
pub fn decode_all(bytes: &[u8]) -> (Vec<Result<Instr, DecodeError>>, Option<TruncatedTail>) {
    let decoded = bytes
        .chunks_exact(4)
        .map(|chunk| {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            decode(word)
        })
        .collect();
    let remainder = &bytes[bytes.len() - bytes.len() % 4..];
    let tail = (!remainder.is_empty()).then(|| TruncatedTail::new(remainder));
    (decoded, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_all;
    use crate::CsrAddr;
    use proptest::prelude::*;

    #[test]
    fn decodes_canonical_words() {
        assert_eq!(decode(0x0000_0013).unwrap(), Instr::nop());
        assert_eq!(decode(0x0000_0073).unwrap(), Instr::nullary(Op::Ecall));
        assert_eq!(decode(0x0010_0073).unwrap(), Instr::nullary(Op::Ebreak));
        assert_eq!(decode(0x3020_0073).unwrap(), Instr::nullary(Op::Mret));
        assert_eq!(
            decode(0x00c5_8533).unwrap(),
            Instr::rtype(Op::Add, Gpr::A0, Gpr::A1, Gpr::A2)
        );
    }

    #[test]
    fn rejects_garbage_words() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err());
        // SYSTEM with unknown funct12
        assert!(decode(0x7770_0073).is_err());
        let err = decode(0xffff_ffff).unwrap_err();
        assert!(err.to_string().contains("0xffffffff"));
    }

    #[test]
    fn negative_immediates_round_trip() {
        let original = Instr::itype(Op::Addi, Gpr::A0, Gpr::A1, -2048);
        assert_eq!(decode(original.encode()).unwrap(), original);
        let store = Instr::store(Op::Sd, Gpr::T0, Gpr::Sp, -8);
        assert_eq!(decode(store.encode()).unwrap(), store);
        let branch = Instr::branch(Op::Bge, Gpr::A0, Gpr::A1, -4096);
        assert_eq!(decode(branch.encode()).unwrap(), branch);
        let jump = Instr::jal(Gpr::Ra, -(1 << 20));
        assert_eq!(decode(jump.encode()).unwrap(), jump);
    }

    #[test]
    fn csr_instructions_round_trip() {
        let csr = Instr::csr(Op::Csrrs, Gpr::A0, CsrAddr::MINSTRET, Gpr::Zero);
        assert_eq!(decode(csr.encode()).unwrap(), csr);
        let csri = Instr::csr_imm(Op::Csrrwi, Gpr::T0, CsrAddr::MSCRATCH, 31);
        assert_eq!(decode(csri.encode()).unwrap(), csri);
    }

    #[test]
    fn decode_all_reports_positionally() {
        let bytes = encode_all(&[Instr::nop(), Instr::nullary(Op::Wfi)]);
        let mut with_garbage = bytes.clone();
        with_garbage.extend_from_slice(&0xffff_ffffu32.to_le_bytes());
        let (decoded, tail) = decode_all(&with_garbage);
        assert_eq!(decoded.len(), 3);
        assert!(decoded[0].is_ok() && decoded[1].is_ok());
        assert!(decoded[2].is_err());
        assert_eq!(tail, None, "aligned images have no tail");
    }

    #[test]
    fn decode_all_surfaces_a_truncated_tail() {
        // Regression: `chunks_exact(4)` used to drop a trailing 1–3 byte
        // remainder silently, letting a truncated image pass for a shorter
        // valid one.
        let full = encode_all(&[Instr::nop(), Instr::nullary(Op::Ecall)]);
        for cut in 1..=3usize {
            let truncated = &full[..full.len() - cut];
            let (decoded, tail) = decode_all(truncated);
            assert_eq!(decoded.len(), 1, "only the whole word decodes");
            let tail = tail.expect("the remainder must be surfaced");
            assert_eq!(tail.len(), 4 - cut);
            assert!(!tail.is_empty());
            assert_eq!(tail.bytes(), &full[4..full.len() - cut]);
            // The padded word is the remainder completed with zero bytes.
            let mut padded = [0u8; 4];
            padded[..4 - cut].copy_from_slice(tail.bytes());
            assert_eq!(tail.padded_word(), u32::from_le_bytes(padded));
            assert!(tail.to_string().contains("truncated"));
        }
        assert_eq!(decode_all(&[]).1, None, "an empty image is aligned");
    }

    /// Exhaustive `decode(encode(i)) == i` over *every* operation.
    ///
    /// The proptest below samples `Op::ALL` randomly, so a given run is not
    /// guaranteed to visit every opcode. With the decode cache baking decoded
    /// `Instr`s into reused program images, an encode/decode disagreement on
    /// any single op would silently persist across campaigns — so each op gets
    /// a deterministic sweep over register and immediate corner values.
    #[test]
    fn every_op_round_trips_exhaustively() {
        let regs = [0u8, 1, 2, 10, 17, 31];
        let imms: [i64; 12] = [
            0,
            1,
            -1,
            31,
            63,
            2047,
            -2048,
            4095,
            0x7fff_f000,
            -(1 << 20),
            i64::MIN,
            i64::MAX,
        ];
        let mut checked = 0u64;
        for op in Op::ALL {
            for rd in regs {
                for rs1 in regs {
                    for rs2 in regs {
                        for imm in imms {
                            let instr = Instr {
                                op,
                                rd: Gpr::from_index(rd),
                                rs1: Gpr::from_index(rs1),
                                rs2: Gpr::from_index(rs2),
                                imm,
                            }
                            .normalize();
                            let decoded = decode(instr.encode()).unwrap_or_else(|e| {
                                panic!("{op:?} {instr} failed to decode: {e}")
                            });
                            assert_eq!(decoded, instr, "{op:?} imm {imm}");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(checked, Op::ALL.len() as u64 * 6 * 6 * 6 * 12);
    }

    /// Both CSR forms round-trip for every implemented CSR address, and the
    /// accessor views (`csr_addr`, `csr_zimm`) survive the trip too.
    #[test]
    fn every_csr_form_round_trips_for_every_implemented_csr() {
        for csr in CsrAddr::IMPLEMENTED {
            for rd in [Gpr::Zero, Gpr::A0, Gpr::T6] {
                for op in [Op::Csrrw, Op::Csrrs, Op::Csrrc] {
                    for rs1 in [Gpr::Zero, Gpr::Sp, Gpr::T6] {
                        let instr = Instr::csr(op, rd, csr, rs1);
                        let decoded = decode(instr.encode()).expect("csr decodes");
                        assert_eq!(decoded, instr);
                        assert_eq!(decoded.csr_addr(), Some(csr));
                    }
                }
                for op in [Op::Csrrwi, Op::Csrrsi, Op::Csrrci] {
                    for zimm in [0u8, 1, 15, 31] {
                        let instr = Instr::csr_imm(op, rd, csr, zimm);
                        let decoded = decode(instr.encode()).expect("csr-imm decodes");
                        assert_eq!(decoded, instr);
                        assert_eq!(decoded.csr_addr(), Some(csr));
                        assert_eq!(decoded.csr_zimm(), Some(zimm));
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Every normalized instruction survives an encode/decode round trip.
        #[test]
        fn encode_decode_round_trip(
            op_idx in 0usize..Op::ALL.len(),
            rd in any::<u8>(),
            rs1 in any::<u8>(),
            rs2 in any::<u8>(),
            imm in any::<i64>(),
        ) {
            let instr = Instr {
                op: Op::ALL[op_idx],
                rd: Gpr::from_index(rd),
                rs1: Gpr::from_index(rs1),
                rs2: Gpr::from_index(rs2),
                imm,
            }.normalize();
            let decoded = decode(instr.encode()).expect("normalized instruction must decode");
            prop_assert_eq!(decoded, instr);
        }

        /// Decoding an arbitrary word either fails or produces an instruction
        /// that re-encodes to the same behaviourally relevant fields.
        #[test]
        fn decode_is_stable_under_reencoding(word in any::<u32>()) {
            if let Ok(instr) = decode(word) {
                let reencoded = instr.encode();
                let redecoded = decode(reencoded).expect("re-encoded word must decode");
                prop_assert_eq!(redecoded, instr);
            }
        }
    }
}
