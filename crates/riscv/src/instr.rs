//! The decoded instruction representation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CsrAddr, Gpr, Op};
use crate::op::Format;

/// A decoded RISC-V instruction.
///
/// `Instr` is deliberately a flat struct rather than a per-format enum: the
/// fuzzer mutates operands generically (swap a register, nudge an immediate)
/// without caring about the operation, and the simulators dispatch on
/// [`Instr::op`]. Fields that a particular operation does not use are ignored
/// by [`encode`](Instr::encode) and forced to canonical values by
/// [`normalize`](Instr::normalize).
///
/// # Example
///
/// ```
/// use riscv::{Instr, Gpr, Op};
///
/// let instr = Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 42);
/// assert_eq!(instr.to_string(), "addi a0, zero, 42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instr {
    /// The operation mnemonic.
    pub op: Op,
    /// Destination register (ignored by stores, branches, fences and system ops).
    pub rd: Gpr,
    /// First source register. For `csrr?i` the register *index* is the 5-bit
    /// immediate (`zimm`), mirroring the hardware encoding.
    pub rs1: Gpr,
    /// Second source register (only read by R-type ops, stores and branches).
    pub rs2: Gpr,
    /// Immediate operand. Branch/jump offsets are byte offsets relative to the
    /// instruction's own address; CSR instructions keep the 12-bit CSR address
    /// here.
    pub imm: i64,
}

impl Instr {
    /// Creates a register-register (R-type) instruction.
    pub fn rtype(op: Op, rd: Gpr, rs1: Gpr, rs2: Gpr) -> Instr {
        Instr { op, rd, rs1, rs2, imm: 0 }
    }

    /// Creates a register-immediate (I-type) instruction, including loads,
    /// `jalr` and shift-immediates.
    pub fn itype(op: Op, rd: Gpr, rs1: Gpr, imm: i64) -> Instr {
        Instr { op, rd, rs1, rs2: Gpr::Zero, imm }
    }

    /// Creates a store (S-type) instruction: `op rs2, imm(rs1)`.
    pub fn store(op: Op, rs2: Gpr, rs1: Gpr, imm: i64) -> Instr {
        Instr { op, rd: Gpr::Zero, rs1, rs2, imm }
    }

    /// Creates a conditional branch (B-type) instruction with a byte offset.
    pub fn branch(op: Op, rs1: Gpr, rs2: Gpr, offset: i64) -> Instr {
        Instr { op, rd: Gpr::Zero, rs1, rs2, imm: offset }
    }

    /// Creates an upper-immediate (U-type) instruction; `imm` is the already
    /// shifted 32-bit value (i.e. a multiple of 4096).
    pub fn utype(op: Op, rd: Gpr, imm: i64) -> Instr {
        Instr { op, rd, rs1: Gpr::Zero, rs2: Gpr::Zero, imm }
    }

    /// Creates a `jal` with a byte offset.
    pub fn jal(rd: Gpr, offset: i64) -> Instr {
        Instr { op: Op::Jal, rd, rs1: Gpr::Zero, rs2: Gpr::Zero, imm: offset }
    }

    /// Creates a CSR access with a register source (`csrrw`/`csrrs`/`csrrc`).
    pub fn csr(op: Op, rd: Gpr, csr: CsrAddr, rs1: Gpr) -> Instr {
        Instr { op, rd, rs1, rs2: Gpr::Zero, imm: i64::from(csr.value()) }
    }

    /// Creates a CSR access with a 5-bit immediate source
    /// (`csrrwi`/`csrrsi`/`csrrci`).
    pub fn csr_imm(op: Op, rd: Gpr, csr: CsrAddr, zimm: u8) -> Instr {
        Instr {
            op,
            rd,
            rs1: Gpr::from_index(zimm & 0x1f),
            rs2: Gpr::Zero,
            imm: i64::from(csr.value()),
        }
    }

    /// Creates an operand-less system instruction (`ecall`, `ebreak`, `mret`,
    /// `wfi`) or fence.
    pub fn nullary(op: Op) -> Instr {
        Instr { op, rd: Gpr::Zero, rs1: Gpr::Zero, rs2: Gpr::Zero, imm: 0 }
    }

    /// A canonical no-op (`addi zero, zero, 0`).
    pub fn nop() -> Instr {
        Instr::itype(Op::Addi, Gpr::Zero, Gpr::Zero, 0)
    }

    /// Returns the CSR address operand for CSR instructions, `None` otherwise.
    pub fn csr_addr(&self) -> Option<CsrAddr> {
        match self.op.format() {
            Format::Csr | Format::CsrImm => Some(CsrAddr::new(self.imm as u16)),
            _ => None,
        }
    }

    /// Returns the 5-bit immediate of a `csrr?i` instruction, `None` otherwise.
    pub fn csr_zimm(&self) -> Option<u8> {
        match self.op.format() {
            Format::CsrImm => Some(self.rs1.index()),
            _ => None,
        }
    }

    /// Returns the destination register when the operation writes one.
    pub fn dest(&self) -> Option<Gpr> {
        self.op.writes_rd().then_some(self.rd)
    }

    /// Returns the registers read by this instruction (at most two).
    pub fn sources(&self) -> impl Iterator<Item = Gpr> {
        let rs1 = self.op.reads_rs1().then_some(self.rs1);
        let rs2 = self.op.reads_rs2().then_some(self.rs2);
        rs1.into_iter().chain(rs2)
    }

    /// Forces unused operand fields to canonical values and clamps immediates
    /// to the range their encoding can represent.
    ///
    /// The fuzzer calls this after structural mutations so that a mutated
    /// instruction always survives an encode/decode round trip unchanged.
    pub fn normalize(mut self) -> Instr {
        let fmt = self.op.format();
        if !self.op.writes_rd() {
            self.rd = Gpr::Zero;
        }
        if !self.op.reads_rs1() && fmt != Format::CsrImm {
            self.rs1 = Gpr::Zero;
        }
        if !self.op.reads_rs2() {
            self.rs2 = Gpr::Zero;
        }
        self.imm = match fmt {
            Format::R | Format::System => 0,
            Format::I => clamp_signed(self.imm, 12),
            Format::IShift => {
                let bits = if is_word_shift(self.op) { 5 } else { 6 };
                self.imm & ((1 << bits) - 1)
            }
            Format::S => clamp_signed(self.imm, 12),
            Format::B => clamp_signed(self.imm, 13) & !1,
            Format::U => clamp_signed(self.imm, 32) & !0xfff,
            Format::J => clamp_signed(self.imm, 21) & !1,
            Format::Csr | Format::CsrImm => self.imm & 0xfff,
            Format::Fence => self.imm & 0xff,
        };
        self
    }

    /// Returns `true` when [`normalize`](Instr::normalize) would leave the
    /// instruction unchanged.
    pub fn is_normalized(&self) -> bool {
        *self == self.normalize()
    }
}

impl Default for Instr {
    fn default() -> Self {
        Instr::nop()
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::asm::format_instr(self, f)
    }
}

pub(crate) fn is_word_shift(op: Op) -> bool {
    matches!(op, Op::Slliw | Op::Srliw | Op::Sraiw)
}

/// Clamps `value` into the range representable by a signed `bits`-bit
/// immediate by sign-extending its low `bits` bits.
pub(crate) fn clamp_signed(value: i64, bits: u32) -> i64 {
    let shift = 64 - bits;
    (value << shift) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let add = Instr::rtype(Op::Add, Gpr::A0, Gpr::A1, Gpr::A2);
        assert_eq!(add.dest(), Some(Gpr::A0));
        assert_eq!(add.sources().collect::<Vec<_>>(), vec![Gpr::A1, Gpr::A2]);

        let sd = Instr::store(Op::Sd, Gpr::A0, Gpr::Sp, -16);
        assert_eq!(sd.dest(), None);
        assert_eq!(sd.sources().collect::<Vec<_>>(), vec![Gpr::Sp, Gpr::A0]);

        let csr = Instr::csr(Op::Csrrw, Gpr::T0, CsrAddr::MSCRATCH, Gpr::T1);
        assert_eq!(csr.csr_addr(), Some(CsrAddr::MSCRATCH));
        assert_eq!(csr.csr_zimm(), None);

        let csri = Instr::csr_imm(Op::Csrrwi, Gpr::T0, CsrAddr::MSCRATCH, 17);
        assert_eq!(csri.csr_zimm(), Some(17));
    }

    #[test]
    fn nop_is_canonical_addi() {
        let nop = Instr::nop();
        assert_eq!(nop.op, Op::Addi);
        assert!(nop.rd.is_zero());
        assert_eq!(nop.imm, 0);
        assert!(nop.is_normalized());
    }

    #[test]
    fn clamp_signed_sign_extends() {
        assert_eq!(clamp_signed(0x7ff, 12), 0x7ff);
        assert_eq!(clamp_signed(0x800, 12), -2048);
        assert_eq!(clamp_signed(-1, 12), -1);
        assert_eq!(clamp_signed(1 << 20, 21), -(1 << 20));
    }

    #[test]
    fn normalize_clears_unused_fields() {
        let weird = Instr { op: Op::Lui, rd: Gpr::A0, rs1: Gpr::A1, rs2: Gpr::A2, imm: 0x1234_5678 };
        let norm = weird.normalize();
        assert_eq!(norm.rs1, Gpr::Zero);
        assert_eq!(norm.rs2, Gpr::Zero);
        assert_eq!(norm.imm & 0xfff, 0);
        assert!(norm.is_normalized());
    }

    #[test]
    fn normalize_clamps_branch_offsets() {
        let b = Instr::branch(Op::Beq, Gpr::A0, Gpr::A1, 0x7ffff).normalize();
        assert!(b.imm % 2 == 0);
        assert!((-4096..4096).contains(&b.imm));
    }

    #[test]
    fn normalize_clamps_shift_amounts() {
        let s = Instr::itype(Op::Slli, Gpr::A0, Gpr::A0, 200).normalize();
        assert!((0..64).contains(&s.imm));
        let sw = Instr::itype(Op::Slliw, Gpr::A0, Gpr::A0, 63).normalize();
        assert!((0..32).contains(&sw.imm));
    }
}
