//! Textual assembly formatting and parsing.
//!
//! The fuzzer itself operates on binary instruction words, but human-readable
//! assembly is invaluable for debugging campaigns, for the trace logs emitted
//! by the differential-testing engine, and for writing directed seeds in the
//! examples. The syntax follows the usual GNU `as` conventions:
//! `addi a0, zero, 42`, `sd a0, 8(sp)`, `csrrw t0, mscratch, t1`.

use std::error::Error;
use std::fmt;

use crate::op::Format;
use crate::{CsrAddr, Gpr, Instr, Op};

/// Formats a single instruction in GNU-style assembly syntax.
pub(crate) fn format_instr(instr: &Instr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let op = instr.op;
    match op.format() {
        Format::R => write!(f, "{} {}, {}, {}", op, instr.rd, instr.rs1, instr.rs2),
        Format::I => {
            if op.class() == crate::OpClass::Load || op == Op::Jalr {
                write!(f, "{} {}, {}({})", op, instr.rd, instr.imm, instr.rs1)
            } else {
                write!(f, "{} {}, {}, {}", op, instr.rd, instr.rs1, instr.imm)
            }
        }
        Format::IShift => write!(f, "{} {}, {}, {}", op, instr.rd, instr.rs1, instr.imm),
        Format::S => write!(f, "{} {}, {}({})", op, instr.rs2, instr.imm, instr.rs1),
        Format::B => write!(f, "{} {}, {}, {}", op, instr.rs1, instr.rs2, instr.imm),
        Format::U => write!(f, "{} {}, {:#x}", op, instr.rd, (instr.imm as u64) >> 12 & 0xf_ffff),
        Format::J => write!(f, "{} {}, {}", op, instr.rd, instr.imm),
        Format::Csr => write!(
            f,
            "{} {}, {}, {}",
            op,
            instr.rd,
            CsrAddr::new(instr.imm as u16),
            instr.rs1
        ),
        Format::CsrImm => write!(
            f,
            "{} {}, {}, {}",
            op,
            instr.rd,
            CsrAddr::new(instr.imm as u16),
            instr.rs1.index()
        ),
        Format::Fence | Format::System => write!(f, "{op}"),
    }
}

/// Error returned by [`parse_instr`] and [`parse_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// Human-readable description of what failed to parse.
    pub message: String,
    /// The 1-based line number when parsing a multi-line program, 0 for single
    /// instructions.
    pub line: usize,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl Error for ParseAsmError {}

fn err(message: impl Into<String>) -> ParseAsmError {
    ParseAsmError { message: message.into(), line: 0 }
}

fn parse_imm(text: &str) -> Result<i64, ParseAsmError> {
    let text = text.trim();
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|e| err(format!("bad immediate `{text}`: {e}")))?
    } else {
        body.parse::<i64>().map_err(|e| err(format!("bad immediate `{text}`: {e}")))?
    };
    Ok(if neg { -value } else { value })
}

fn parse_gpr(text: &str) -> Result<Gpr, ParseAsmError> {
    Gpr::parse(text).ok_or_else(|| err(format!("unknown register `{}`", text.trim())))
}

fn parse_mem_operand(text: &str) -> Result<(i64, Gpr), ParseAsmError> {
    // "imm(reg)"
    let open = text.find('(').ok_or_else(|| err(format!("expected `imm(reg)`, got `{text}`")))?;
    let close = text.rfind(')').ok_or_else(|| err(format!("missing `)` in `{text}`")))?;
    let imm_text = text[..open].trim();
    let imm = if imm_text.is_empty() { 0 } else { parse_imm(imm_text)? };
    let reg = parse_gpr(&text[open + 1..close])?;
    Ok((imm, reg))
}

/// Parses a single assembly instruction.
///
/// # Errors
///
/// Returns [`ParseAsmError`] when the mnemonic is unknown, an operand is
/// malformed, or the operand count does not match the instruction format.
///
/// # Example
///
/// ```
/// use riscv::asm::parse_instr;
/// use riscv::{Gpr, Instr, Op};
///
/// let instr = parse_instr("addi a0, zero, 42")?;
/// assert_eq!(instr, Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 42));
/// # Ok::<(), riscv::asm::ParseAsmError>(())
/// ```
pub fn parse_instr(text: &str) -> Result<Instr, ParseAsmError> {
    let text = text.split('#').next().unwrap_or("").trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m.trim(), r.trim()),
        None => (text, ""),
    };
    if mnemonic.is_empty() {
        return Err(err("empty instruction"));
    }
    if mnemonic == "nop" {
        return Ok(Instr::nop());
    }
    let op = Op::parse(mnemonic).ok_or_else(|| err(format!("unknown mnemonic `{mnemonic}`")))?;
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), ParseAsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(format!("`{mnemonic}` expects {n} operands, got {}", operands.len())))
        }
    };

    let instr = match op.format() {
        Format::R => {
            want(3)?;
            Instr::rtype(op, parse_gpr(operands[0])?, parse_gpr(operands[1])?, parse_gpr(operands[2])?)
        }
        Format::I if op.class() == crate::OpClass::Load || op == Op::Jalr => {
            want(2)?;
            let rd = parse_gpr(operands[0])?;
            let (imm, rs1) = parse_mem_operand(operands[1])?;
            Instr::itype(op, rd, rs1, imm)
        }
        Format::I | Format::IShift => {
            want(3)?;
            Instr::itype(op, parse_gpr(operands[0])?, parse_gpr(operands[1])?, parse_imm(operands[2])?)
        }
        Format::S => {
            want(2)?;
            let rs2 = parse_gpr(operands[0])?;
            let (imm, rs1) = parse_mem_operand(operands[1])?;
            Instr::store(op, rs2, rs1, imm)
        }
        Format::B => {
            want(3)?;
            Instr::branch(op, parse_gpr(operands[0])?, parse_gpr(operands[1])?, parse_imm(operands[2])?)
        }
        Format::U => {
            want(2)?;
            let raw = parse_imm(operands[1])?;
            Instr::utype(op, parse_gpr(operands[0])?, raw << 12)
        }
        Format::J => {
            want(2)?;
            Instr { op, rd: parse_gpr(operands[0])?, rs1: Gpr::Zero, rs2: Gpr::Zero, imm: parse_imm(operands[1])? }
        }
        Format::Csr => {
            want(3)?;
            let csr = CsrAddr::parse(operands[1])
                .ok_or_else(|| err(format!("unknown CSR `{}`", operands[1])))?;
            Instr::csr(op, parse_gpr(operands[0])?, csr, parse_gpr(operands[2])?)
        }
        Format::CsrImm => {
            want(3)?;
            let csr = CsrAddr::parse(operands[1])
                .ok_or_else(|| err(format!("unknown CSR `{}`", operands[1])))?;
            let zimm = parse_imm(operands[2])?;
            if !(0..32).contains(&zimm) {
                return Err(err(format!("CSR immediate {zimm} out of range 0..32")));
            }
            Instr::csr_imm(op, parse_gpr(operands[0])?, csr, zimm as u8)
        }
        Format::Fence | Format::System => {
            want(0)?;
            Instr::nullary(op)
        }
    };
    Ok(instr.normalize())
}

/// Parses a newline-separated assembly listing, ignoring blank lines and
/// `#` comments.
///
/// # Errors
///
/// Returns the first [`ParseAsmError`] encountered, annotated with its
/// 1-based line number.
pub fn parse_program(text: &str) -> Result<Vec<Instr>, ParseAsmError> {
    let mut instrs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let stripped = line.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let instr = parse_instr(stripped).map_err(|mut e| {
            e.line = idx + 1;
            e
        })?;
        instrs.push(instr);
    }
    Ok(instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn formats_representative_instructions() {
        assert_eq!(Instr::rtype(Op::Add, Gpr::A0, Gpr::A1, Gpr::A2).to_string(), "add a0, a1, a2");
        assert_eq!(Instr::itype(Op::Ld, Gpr::A0, Gpr::Sp, 16).to_string(), "ld a0, 16(sp)");
        assert_eq!(Instr::store(Op::Sd, Gpr::A0, Gpr::Sp, -8).to_string(), "sd a0, -8(sp)");
        assert_eq!(Instr::branch(Op::Bne, Gpr::T0, Gpr::T1, 32).to_string(), "bne t0, t1, 32");
        assert_eq!(Instr::utype(Op::Lui, Gpr::T0, 0x12345000).to_string(), "lui t0, 0x12345");
        assert_eq!(Instr::jal(Gpr::Ra, -8).to_string(), "jal ra, -8");
        assert_eq!(
            Instr::csr(Op::Csrrw, Gpr::T0, CsrAddr::MSCRATCH, Gpr::T1).to_string(),
            "csrrw t0, mscratch, t1"
        );
        assert_eq!(
            Instr::csr_imm(Op::Csrrsi, Gpr::Zero, CsrAddr::MSTATUS, 8).to_string(),
            "csrrsi zero, mstatus, 8"
        );
        assert_eq!(Instr::nullary(Op::FenceI).to_string(), "fence.i");
        assert_eq!(Instr::nullary(Op::Ebreak).to_string(), "ebreak");
    }

    #[test]
    fn parses_what_it_formats() {
        let samples = [
            Instr::rtype(Op::Mulhu, Gpr::S3, Gpr::T4, Gpr::A7),
            Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, -2048),
            Instr::itype(Op::Lbu, Gpr::T0, Gpr::A1, 255),
            Instr::itype(Op::Jalr, Gpr::Ra, Gpr::A0, 4),
            Instr::store(Op::Sb, Gpr::T2, Gpr::Gp, 100),
            Instr::branch(Op::Bgeu, Gpr::A3, Gpr::A4, -64),
            Instr::utype(Op::Auipc, Gpr::S0, 0x7f000),
            Instr::jal(Gpr::Zero, 2048),
            Instr::csr(Op::Csrrc, Gpr::A0, CsrAddr::MCAUSE, Gpr::T0),
            Instr::csr_imm(Op::Csrrci, Gpr::A1, CsrAddr::MEPC, 31),
            Instr::nullary(Op::Wfi),
            Instr::nullary(Op::Fence),
        ];
        for instr in samples {
            let text = instr.to_string();
            let parsed = parse_instr(&text).unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
            assert_eq!(parsed, instr.normalize(), "round trip of `{text}`");
        }
    }

    #[test]
    fn parse_accepts_nop_and_comments() {
        assert_eq!(parse_instr("nop").unwrap(), Instr::nop());
        assert_eq!(parse_instr("add a0, a1, a2 # comment").unwrap().op, Op::Add);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_instr("").is_err());
        assert!(parse_instr("bogus a0, a1").is_err());
        assert!(parse_instr("add a0, a1").is_err());
        assert!(parse_instr("ld a0, nope").is_err());
        assert!(parse_instr("csrrwi a0, mstatus, 99").is_err());
        assert!(parse_instr("addi a0, a1, zzz").is_err());
    }

    #[test]
    fn parse_program_tracks_line_numbers() {
        let listing = "addi a0, zero, 1\n\n# comment only\nbogus x, y\n";
        let error = parse_program(listing).unwrap_err();
        assert_eq!(error.line, 4);
        assert!(error.to_string().contains("line 4"));

        let good = parse_program("addi a0, zero, 1\nadd a1, a0, a0\necall\n").unwrap();
        assert_eq!(good.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any normalized instruction formats to text that parses back to itself.
        #[test]
        fn display_parse_round_trip(
            op_idx in 0usize..Op::ALL.len(),
            rd in any::<u8>(),
            rs1 in any::<u8>(),
            rs2 in any::<u8>(),
            imm in any::<i64>(),
        ) {
            let instr = Instr {
                op: Op::ALL[op_idx],
                rd: Gpr::from_index(rd),
                rs1: Gpr::from_index(rs1),
                rs2: Gpr::from_index(rs2),
                imm,
            }.normalize();
            let text = instr.to_string();
            let parsed = parse_instr(&text).expect("formatted instruction must parse");
            // Fence pred/succ bits are not part of the textual syntax, so they
            // are the one field allowed to differ after a text round trip.
            let expected = if instr.op.format() == Format::Fence {
                Instr { imm: 0, ..instr }
            } else {
                instr
            };
            prop_assert_eq!(parsed, expected);
        }
    }
}
