//! Executable test programs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::decode::decode_all;
use crate::encode::encode_all_into;
use crate::{DecodeError, Instr, INSTR_BYTES};

/// The address at which every test program is loaded and starts executing.
///
/// The value mirrors the reset vector used by the Chipyard test harness the
/// paper's campaigns ran under (`0x8000_0000`, the start of main memory).
pub const TEXT_BASE: u64 = 0x8000_0000;

/// The base address of the scratch data region available to generated loads
/// and stores.
pub const DATA_BASE: u64 = 0x8001_0000;

/// The size, in bytes, of the scratch data region.
pub const DATA_SIZE: u64 = 0x1_0000;

/// A self-contained test program: an instruction sequence plus an optional
/// pre-initialised data region.
///
/// A `Program` is what the fuzzer feeds to both the processor under test and
/// the golden reference model. Instructions are stored in decoded form
/// because the mutation engine edits them structurally; the byte image the
/// hardware fetches is produced on demand by [`Program::text_bytes`].
///
/// # Example
///
/// ```
/// use riscv::{Program, Instr, Gpr, Op};
///
/// let program = Program::from_instrs(vec![
///     Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 7),
///     Instr::rtype(Op::Add, Gpr::A1, Gpr::A0, Gpr::A0),
/// ]);
/// assert_eq!(program.len(), 2);
/// assert_eq!(program.text_bytes().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
    /// Raw 32-bit words overriding the encoding of individual instruction
    /// slots. Bit-level mutations can produce words that do not decode to any
    /// instruction; those words still need to reach the hardware (they
    /// exercise the illegal-instruction paths), so they are kept here keyed by
    /// instruction index.
    raw_overrides: std::collections::BTreeMap<usize, u32>,
    /// Initial contents of the data region, starting at [`DATA_BASE`].
    data: Vec<u8>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program { instrs: Vec::new(), raw_overrides: Default::default(), data: Vec::new() }
    }

    /// Creates a program from decoded instructions, with an empty data region.
    pub fn from_instrs(instrs: Vec<Instr>) -> Program {
        Program { instrs, raw_overrides: Default::default(), data: Vec::new() }
    }

    /// Creates a program by decoding a little-endian byte image; undecodable
    /// words are preserved as raw overrides (and NOP placeholders in the
    /// decoded view) so the byte image survives a round trip.
    ///
    /// Returns the program together with the number of words that failed to
    /// decode, which the caller may use to gauge how much of a mutated image
    /// remained legal.
    ///
    /// An image truncated mid-instruction (length not a multiple of 4) does
    /// not silently shorten: the 1–3 byte tail becomes a final zero-padded
    /// raw-override slot — counted as illegal even if the padded word happens
    /// to decode, because the original image never contained that word — so
    /// corrupt images stay visible instead of masquerading as shorter valid
    /// ones. Round-tripping such a program emits the zero-padded completion
    /// of the tail.
    pub fn from_text_bytes(bytes: &[u8]) -> (Program, usize) {
        let (decoded, tail) = decode_all(bytes);
        let mut illegal = 0;
        let mut raw_overrides = std::collections::BTreeMap::new();
        let mut instrs: Vec<Instr> = decoded
            .into_iter()
            .enumerate()
            .map(|(index, r)| match r {
                Ok(i) => i,
                Err(DecodeError { word }) => {
                    illegal += 1;
                    raw_overrides.insert(index, word);
                    Instr::nop()
                }
            })
            .collect();
        if let Some(tail) = tail {
            illegal += 1;
            raw_overrides.insert(instrs.len(), tail.padded_word());
            instrs.push(Instr::nop());
        }
        (Program { instrs, raw_overrides, data: Vec::new() }, illegal)
    }

    /// Overrides the encoded word of the instruction slot at `index` with a
    /// raw 32-bit value (typically an undecodable word produced by a bit-level
    /// mutation).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_raw(&mut self, index: usize, word: u32) {
        assert!(index < self.instrs.len(), "raw override index {index} out of bounds");
        self.raw_overrides.insert(index, word);
    }

    /// Returns the raw-word override of slot `index`, if any.
    pub fn raw(&self, index: usize) -> Option<u32> {
        self.raw_overrides.get(&index).copied()
    }

    /// Removes the raw override of slot `index` (e.g. after the slot has been
    /// re-mutated into a decodable instruction).
    pub fn clear_raw(&mut self, index: usize) {
        self.raw_overrides.remove(&index);
    }

    /// Returns the number of raw (undecodable) word overrides.
    pub fn raw_count(&self) -> usize {
        self.raw_overrides.len()
    }

    /// Returns the number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` when the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Returns the instructions as a slice.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Returns a mutable view of the instructions (used by the mutation
    /// engine).
    pub fn instrs_mut(&mut self) -> &mut Vec<Instr> {
        &mut self.instrs
    }

    /// Returns the initial data region contents.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Replaces the initial data region contents.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds [`DATA_SIZE`] bytes.
    pub fn set_data(&mut self, data: Vec<u8>) {
        assert!(
            data.len() as u64 <= DATA_SIZE,
            "data region limited to {DATA_SIZE} bytes, got {}",
            data.len()
        );
        self.data = data;
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    /// Encodes the instruction sequence into the little-endian byte image
    /// fetched by the processors, applying any raw-word overrides.
    pub fn text_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.instrs.len() * 4);
        self.text_bytes_into(&mut bytes);
        bytes
    }

    /// Encodes the text image into a caller-owned buffer (cleared first),
    /// reusing its allocation — the no-allocation form of
    /// [`text_bytes`](Program::text_bytes) used by the simulation hot path.
    pub fn text_bytes_into(&self, bytes: &mut Vec<u8>) {
        bytes.clear();
        encode_all_into(&self.instrs, bytes);
        for (&index, &word) in &self.raw_overrides {
            if let Some(slot) = bytes.get_mut(index * 4..index * 4 + 4) {
                slot.copy_from_slice(&word.to_le_bytes());
            }
        }
    }

    /// Returns the address of the instruction at `index`.
    pub fn addr_of(&self, index: usize) -> u64 {
        TEXT_BASE + index as u64 * INSTR_BYTES
    }

    /// Returns the index of the instruction at `addr`, or `None` when the
    /// address falls outside the program text or is misaligned.
    pub fn index_of(&self, addr: u64) -> Option<usize> {
        if addr < TEXT_BASE || !(addr - TEXT_BASE).is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let index = ((addr - TEXT_BASE) / INSTR_BYTES) as usize;
        (index < self.instrs.len()).then_some(index)
    }

    /// Formats the program as an assembly listing with addresses.
    pub fn to_listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "{:#010x}:  {}", self.addr_of(i), instr);
        }
        out
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::new()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_listing())
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Program::from_instrs(iter.into_iter().collect())
    }
}

impl Extend<Instr> for Program {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gpr, Op};

    fn sample() -> Program {
        Program::from_instrs(vec![
            Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 1),
            Instr::rtype(Op::Add, Gpr::A1, Gpr::A0, Gpr::A0),
            Instr::nullary(Op::Ecall),
        ])
    }

    #[test]
    fn text_bytes_round_trip() {
        let program = sample();
        let bytes = program.text_bytes();
        let (back, illegal) = Program::from_text_bytes(&bytes);
        assert_eq!(illegal, 0);
        assert_eq!(back.instrs(), program.instrs());
    }

    #[test]
    fn illegal_words_become_nops_but_are_counted() {
        let mut bytes = sample().text_bytes();
        bytes[4..8].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        let (back, illegal) = Program::from_text_bytes(&bytes);
        assert_eq!(illegal, 1);
        assert_eq!(back.len(), 3);
        assert_eq!(back.instrs()[1], Instr::nop());
    }

    #[test]
    fn truncated_images_keep_their_tail_as_an_illegal_slot() {
        // Regression: a 1–3 byte tail used to vanish, so a corrupt image
        // decoded to a shorter program indistinguishable from a valid one.
        let full = sample().text_bytes();
        for cut in 1..=3usize {
            let truncated = &full[..full.len() - cut];
            let (program, illegal) = Program::from_text_bytes(truncated);
            assert_eq!(program.len(), 3, "the tail occupies a slot (cut {cut})");
            assert_eq!(illegal, 1, "the tail counts as illegal (cut {cut})");
            let padded = program.raw(2).expect("tail kept as a raw override");
            let mut expected = [0u8; 4];
            expected[..4 - cut].copy_from_slice(&full[8..full.len() - cut]);
            assert_eq!(padded, u32::from_le_bytes(expected));
            // Round-tripping emits the zero-padded completion of the image.
            let mut completed = truncated.to_vec();
            completed.resize(12, 0);
            assert_eq!(program.text_bytes(), completed);
        }
    }

    #[test]
    fn address_index_mapping() {
        let program = sample();
        assert_eq!(program.addr_of(0), TEXT_BASE);
        assert_eq!(program.addr_of(2), TEXT_BASE + 8);
        assert_eq!(program.index_of(TEXT_BASE + 8), Some(2));
        assert_eq!(program.index_of(TEXT_BASE + 12), None);
        assert_eq!(program.index_of(TEXT_BASE + 2), None);
        assert_eq!(program.index_of(TEXT_BASE - 4), None);
    }

    #[test]
    fn listing_contains_addresses_and_mnemonics() {
        let listing = sample().to_listing();
        assert!(listing.contains("0x80000000"));
        assert!(listing.contains("addi a0, zero, 1"));
        assert!(listing.contains("ecall"));
    }

    #[test]
    #[should_panic(expected = "data region")]
    fn oversized_data_region_panics() {
        let mut program = sample();
        program.set_data(vec![0u8; (DATA_SIZE + 1) as usize]);
    }

    #[test]
    fn raw_overrides_survive_byte_round_trips() {
        let mut program = sample();
        program.set_raw(1, 0xffff_ffff);
        assert_eq!(program.raw(1), Some(0xffff_ffff));
        assert_eq!(program.raw_count(), 1);
        let bytes = program.text_bytes();
        assert_eq!(&bytes[4..8], &0xffff_ffffu32.to_le_bytes());
        let (back, illegal) = Program::from_text_bytes(&bytes);
        assert_eq!(illegal, 1);
        assert_eq!(back.raw(1), Some(0xffff_ffff));
        assert_eq!(back.text_bytes(), bytes);
        let mut cleared = program.clone();
        cleared.clear_raw(1);
        assert_eq!(cleared.raw_count(), 0);
        assert_eq!(cleared.text_bytes(), sample().text_bytes());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn raw_override_out_of_bounds_panics() {
        let mut program = sample();
        program.set_raw(99, 0);
    }

    #[test]
    fn collect_and_extend() {
        let mut program: Program = (0..4).map(|i| Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, i)).collect();
        assert_eq!(program.len(), 4);
        program.extend([Instr::nullary(Op::Ecall)]);
        assert_eq!(program.len(), 5);
        assert!(!program.is_empty());
    }
}
