//! Control-and-status-register (CSR) addresses and metadata.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 12-bit CSR address.
///
/// The CSR address space is what the Zicsr instructions (`CSRRW`, `CSRRS`, …)
/// index into. The fuzzer deliberately generates accesses to both implemented
/// and unimplemented addresses because one of the reproduced vulnerabilities
/// (V6, CWE-1281: *accessing unimplemented CSRs returns X-values*) is only
/// reachable through unimplemented addresses.
///
/// # Example
///
/// ```
/// use riscv::CsrAddr;
///
/// assert_eq!(CsrAddr::MSTATUS.value(), 0x300);
/// assert!(CsrAddr::MSTATUS.is_implemented());
/// assert!(!CsrAddr::new(0x5c0).is_implemented());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CsrAddr(u16);

impl CsrAddr {
    /// Machine status register.
    pub const MSTATUS: CsrAddr = CsrAddr(0x300);
    /// Machine ISA register.
    pub const MISA: CsrAddr = CsrAddr(0x301);
    /// Machine interrupt-enable register.
    pub const MIE: CsrAddr = CsrAddr(0x304);
    /// Machine trap-handler base address.
    pub const MTVEC: CsrAddr = CsrAddr(0x305);
    /// Machine scratch register.
    pub const MSCRATCH: CsrAddr = CsrAddr(0x340);
    /// Machine exception program counter.
    pub const MEPC: CsrAddr = CsrAddr(0x341);
    /// Machine trap cause.
    pub const MCAUSE: CsrAddr = CsrAddr(0x342);
    /// Machine bad address or instruction.
    pub const MTVAL: CsrAddr = CsrAddr(0x343);
    /// Machine interrupt-pending register.
    pub const MIP: CsrAddr = CsrAddr(0x344);
    /// Machine cycle counter.
    pub const MCYCLE: CsrAddr = CsrAddr(0xb00);
    /// Machine retired-instruction counter.
    pub const MINSTRET: CsrAddr = CsrAddr(0xb02);
    /// Machine vendor id (read-only).
    pub const MVENDORID: CsrAddr = CsrAddr(0xf11);
    /// Machine architecture id (read-only).
    pub const MARCHID: CsrAddr = CsrAddr(0xf12);
    /// Machine implementation id (read-only).
    pub const MIMPID: CsrAddr = CsrAddr(0xf13);
    /// Hardware thread id (read-only).
    pub const MHARTID: CsrAddr = CsrAddr(0xf14);
    /// User-mode cycle counter shadow.
    pub const CYCLE: CsrAddr = CsrAddr(0xc00);
    /// User-mode retired-instruction counter shadow.
    pub const INSTRET: CsrAddr = CsrAddr(0xc02);

    /// Every CSR that the golden reference model implements.
    pub const IMPLEMENTED: [CsrAddr; 17] = [
        CsrAddr::MSTATUS,
        CsrAddr::MISA,
        CsrAddr::MIE,
        CsrAddr::MTVEC,
        CsrAddr::MSCRATCH,
        CsrAddr::MEPC,
        CsrAddr::MCAUSE,
        CsrAddr::MTVAL,
        CsrAddr::MIP,
        CsrAddr::MCYCLE,
        CsrAddr::MINSTRET,
        CsrAddr::MVENDORID,
        CsrAddr::MARCHID,
        CsrAddr::MIMPID,
        CsrAddr::MHARTID,
        CsrAddr::CYCLE,
        CsrAddr::INSTRET,
    ];

    /// Creates a CSR address, masking the argument to the architectural 12 bits.
    #[inline]
    pub fn new(addr: u16) -> CsrAddr {
        CsrAddr(addr & 0xfff)
    }

    /// Returns the raw 12-bit address.
    #[inline]
    pub fn value(self) -> u16 {
        self.0
    }

    /// Returns `true` when the golden reference model implements this CSR.
    pub fn is_implemented(self) -> bool {
        Self::IMPLEMENTED.contains(&self)
    }

    /// Returns `true` when the CSR is architecturally read-only.
    ///
    /// Per the privileged specification the top two address bits `11` mark a
    /// read-only CSR; writes to such a CSR must raise an illegal-instruction
    /// exception.
    #[inline]
    pub fn is_read_only(self) -> bool {
        (self.0 >> 10) & 0b11 == 0b11
    }

    /// Returns the minimum privilege level (0 = user, 3 = machine) encoded in
    /// bits `[9:8]` of the address.
    #[inline]
    pub fn required_privilege(self) -> u8 {
        ((self.0 >> 8) & 0b11) as u8
    }

    /// Returns the canonical lower-case name when the CSR is a known one,
    /// otherwise `None`.
    pub fn name(self) -> Option<&'static str> {
        Some(match self {
            CsrAddr::MSTATUS => "mstatus",
            CsrAddr::MISA => "misa",
            CsrAddr::MIE => "mie",
            CsrAddr::MTVEC => "mtvec",
            CsrAddr::MSCRATCH => "mscratch",
            CsrAddr::MEPC => "mepc",
            CsrAddr::MCAUSE => "mcause",
            CsrAddr::MTVAL => "mtval",
            CsrAddr::MIP => "mip",
            CsrAddr::MCYCLE => "mcycle",
            CsrAddr::MINSTRET => "minstret",
            CsrAddr::MVENDORID => "mvendorid",
            CsrAddr::MARCHID => "marchid",
            CsrAddr::MIMPID => "mimpid",
            CsrAddr::MHARTID => "mhartid",
            CsrAddr::CYCLE => "cycle",
            CsrAddr::INSTRET => "instret",
            _ => return None,
        })
    }

    /// Parses a CSR name (`"mstatus"`) or a hexadecimal/decimal address
    /// (`"0x300"`, `"768"`).
    pub fn parse(text: &str) -> Option<CsrAddr> {
        let text = text.trim();
        for csr in Self::IMPLEMENTED {
            if csr.name() == Some(text) {
                return Some(csr);
            }
        }
        let value = if let Some(hex) = text.strip_prefix("0x") {
            u16::from_str_radix(hex, 16).ok()?
        } else {
            text.parse::<u16>().ok()?
        };
        if value < 0x1000 {
            Some(CsrAddr(value))
        } else {
            None
        }
    }
}

impl fmt::Display for CsrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => f.write_str(name),
            None => write!(f, "{:#05x}", self.0),
        }
    }
}

impl fmt::LowerHex for CsrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u16> for CsrAddr {
    fn from(addr: u16) -> CsrAddr {
        CsrAddr::new(addr)
    }
}

impl From<CsrAddr> for u16 {
    fn from(addr: CsrAddr) -> u16 {
        addr.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_masks_to_12_bits() {
        assert_eq!(CsrAddr::new(0xffff).value(), 0xfff);
        assert_eq!(CsrAddr::new(0x300).value(), 0x300);
    }

    #[test]
    fn implemented_list_is_consistent() {
        for csr in CsrAddr::IMPLEMENTED {
            assert!(csr.is_implemented());
            assert!(csr.name().is_some());
        }
        assert!(!CsrAddr::new(0x5c0).is_implemented());
    }

    #[test]
    fn read_only_detection_follows_address_bits() {
        assert!(CsrAddr::MHARTID.is_read_only());
        assert!(CsrAddr::MVENDORID.is_read_only());
        assert!(CsrAddr::CYCLE.is_read_only());
        assert!(!CsrAddr::MSTATUS.is_read_only());
        assert!(!CsrAddr::MSCRATCH.is_read_only());
    }

    #[test]
    fn privilege_extraction() {
        assert_eq!(CsrAddr::MSTATUS.required_privilege(), 3);
        assert_eq!(CsrAddr::CYCLE.required_privilege(), 0);
    }

    #[test]
    fn parse_round_trips_names_and_numbers() {
        assert_eq!(CsrAddr::parse("mstatus"), Some(CsrAddr::MSTATUS));
        assert_eq!(CsrAddr::parse("0x300"), Some(CsrAddr::MSTATUS));
        assert_eq!(CsrAddr::parse("768"), Some(CsrAddr::MSTATUS));
        assert_eq!(CsrAddr::parse("0x1000"), None);
        assert_eq!(CsrAddr::parse("bogus"), None);
    }

    #[test]
    fn display_prefers_names() {
        assert_eq!(CsrAddr::MEPC.to_string(), "mepc");
        assert_eq!(CsrAddr::new(0x5c0).to_string(), "0x5c0");
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(addr in 0u16..0x1000) {
            let csr = CsrAddr::new(addr);
            let text = csr.to_string();
            prop_assert_eq!(CsrAddr::parse(&text), Some(csr));
        }
    }
}
