//! General-purpose integer registers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the 32 RISC-V general-purpose integer registers (`x0`–`x31`).
///
/// The enum variants are named after the standard ABI mnemonics; the numeric
/// encoding of each variant is its architectural register index, so
/// `Gpr::A0 as u8 == 10`.
///
/// # Example
///
/// ```
/// use riscv::Gpr;
///
/// assert_eq!(Gpr::A0.index(), 10);
/// assert_eq!(Gpr::from_index(10), Gpr::A0);
/// assert_eq!(Gpr::Zero.to_string(), "zero");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
#[derive(Default)]
pub enum Gpr {
    #[default]
    Zero = 0,
    Ra = 1,
    Sp = 2,
    Gp = 3,
    Tp = 4,
    T0 = 5,
    T1 = 6,
    T2 = 7,
    S0 = 8,
    S1 = 9,
    A0 = 10,
    A1 = 11,
    A2 = 12,
    A3 = 13,
    A4 = 14,
    A5 = 15,
    A6 = 16,
    A7 = 17,
    S2 = 18,
    S3 = 19,
    S4 = 20,
    S5 = 21,
    S6 = 22,
    S7 = 23,
    S8 = 24,
    S9 = 25,
    S10 = 26,
    S11 = 27,
    T3 = 28,
    T4 = 29,
    T5 = 30,
    T6 = 31,
}

/// All registers in architectural order (`x0` first).
pub const ALL_GPRS: [Gpr; 32] = [
    Gpr::Zero,
    Gpr::Ra,
    Gpr::Sp,
    Gpr::Gp,
    Gpr::Tp,
    Gpr::T0,
    Gpr::T1,
    Gpr::T2,
    Gpr::S0,
    Gpr::S1,
    Gpr::A0,
    Gpr::A1,
    Gpr::A2,
    Gpr::A3,
    Gpr::A4,
    Gpr::A5,
    Gpr::A6,
    Gpr::A7,
    Gpr::S2,
    Gpr::S3,
    Gpr::S4,
    Gpr::S5,
    Gpr::S6,
    Gpr::S7,
    Gpr::S8,
    Gpr::S9,
    Gpr::S10,
    Gpr::S11,
    Gpr::T3,
    Gpr::T4,
    Gpr::T5,
    Gpr::T6,
];

impl Gpr {
    /// Returns the architectural register index in `0..32`.
    #[inline]
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Returns the register with the given architectural index.
    ///
    /// The index is taken modulo 32 so that arbitrary fuzzer-mutated values map
    /// onto a valid register rather than panicking.
    #[inline]
    pub fn from_index(index: u8) -> Gpr {
        ALL_GPRS[(index & 0x1f) as usize]
    }

    /// Returns `true` for `x0`, whose writes are architecturally discarded.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Gpr::Zero
    }

    /// Returns the ABI mnemonic (`"a0"`, `"sp"`, …) for the register.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index() as usize]
    }

    /// Returns the numeric name (`"x10"`, …) for the register.
    pub fn x_name(self) -> String {
        format!("x{}", self.index())
    }

    /// Parses either an ABI name (`"a0"`) or a numeric name (`"x10"`).
    ///
    /// Returns `None` when the string names no register.
    pub fn parse(name: &str) -> Option<Gpr> {
        let name = name.trim();
        if let Some(rest) = name.strip_prefix('x') {
            if let Ok(idx) = rest.parse::<u8>() {
                if idx < 32 {
                    return Some(Gpr::from_index(idx));
                }
            }
        }
        ALL_GPRS.iter().copied().find(|g| g.abi_name() == name)
    }
}


impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl From<Gpr> for u8 {
    fn from(g: Gpr) -> u8 {
        g.index()
    }
}

impl From<Gpr> for usize {
    fn from(g: Gpr) -> usize {
        g.index() as usize
    }
}

impl From<u8> for Gpr {
    fn from(idx: u8) -> Gpr {
        Gpr::from_index(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_round_trip() {
        for (i, g) in ALL_GPRS.iter().enumerate() {
            assert_eq!(g.index() as usize, i);
            assert_eq!(Gpr::from_index(i as u8), *g);
        }
    }

    #[test]
    fn from_index_wraps_modulo_32() {
        assert_eq!(Gpr::from_index(32), Gpr::Zero);
        assert_eq!(Gpr::from_index(42), Gpr::A0);
        assert_eq!(Gpr::from_index(255), Gpr::T6);
    }

    #[test]
    fn abi_names_parse_back() {
        for g in ALL_GPRS {
            assert_eq!(Gpr::parse(g.abi_name()), Some(g));
            assert_eq!(Gpr::parse(&g.x_name()), Some(g));
        }
        assert_eq!(Gpr::parse("not_a_register"), None);
        assert_eq!(Gpr::parse("x32"), None);
    }

    #[test]
    fn zero_register_is_flagged() {
        assert!(Gpr::Zero.is_zero());
        assert!(!Gpr::A0.is_zero());
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(Gpr::Sp.to_string(), "sp");
        assert_eq!(format!("{}", Gpr::T6), "t6");
    }

    proptest! {
        #[test]
        fn any_byte_maps_to_valid_register(byte in any::<u8>()) {
            let g = Gpr::from_index(byte);
            prop_assert_eq!(g.index(), byte & 0x1f);
        }
    }
}
