//! Operation mnemonics and their static metadata.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The encoding format of an instruction, as defined by the RISC-V
/// unprivileged specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Format {
    /// Register-register operations (`add rd, rs1, rs2`).
    R,
    /// Register-immediate operations and loads (`addi rd, rs1, imm`).
    I,
    /// Shift-immediate operations; like `I` but the immediate is a 6-bit shamt.
    IShift,
    /// Stores (`sd rs2, imm(rs1)`).
    S,
    /// Conditional branches (`beq rs1, rs2, offset`).
    B,
    /// Upper-immediate operations (`lui rd, imm`).
    U,
    /// Unconditional jumps (`jal rd, offset`).
    J,
    /// CSR accesses with a register source (`csrrw rd, csr, rs1`).
    Csr,
    /// CSR accesses with an immediate source (`csrrwi rd, csr, uimm`).
    CsrImm,
    /// Memory fences (`fence`, `fence.i`).
    Fence,
    /// System instructions without operands (`ecall`, `ebreak`, `mret`, `wfi`).
    System,
}

/// A coarse functional class, used by the seed generator to weight opcode
/// selection and by the coverage model to group decoder coverage points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Register-register and register-immediate integer arithmetic/logic.
    Arith,
    /// Multiply instructions from the M extension.
    Mul,
    /// Divide/remainder instructions from the M extension.
    Div,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Conditional branches.
    Branch,
    /// Unconditional jumps (`jal`, `jalr`).
    Jump,
    /// CSR read/write instructions.
    Csr,
    /// Environment/system instructions (`ecall`, `ebreak`, `mret`, `wfi`).
    System,
    /// Memory ordering instructions (`fence`, `fence.i`).
    Fence,
}

impl OpClass {
    /// Every class, in a stable order.
    pub const ALL: [OpClass; 10] = [
        OpClass::Arith,
        OpClass::Mul,
        OpClass::Div,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Jump,
        OpClass::Csr,
        OpClass::System,
        OpClass::Fence,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpClass::Arith => "arith",
            OpClass::Mul => "mul",
            OpClass::Div => "div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::Csr => "csr",
            OpClass::System => "system",
            OpClass::Fence => "fence",
        };
        f.write_str(name)
    }
}

macro_rules! ops {
    ($( $variant:ident => ($mnemonic:expr, $format:ident, $class:ident) ),+ $(,)?) => {
        /// A RISC-V operation mnemonic (RV64IM + Zicsr + machine-mode system
        /// instructions).
        ///
        /// `Op` carries no operands; see [`Instr`](crate::Instr) for a full
        /// instruction. Static per-operation metadata (encoding format and
        /// functional class) is available through [`Op::format`] and
        /// [`Op::class`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum Op {
            $( $variant, )+
        }

        impl Op {
            /// Every operation, in a stable order.
            pub const ALL: [Op; ops!(@count $($variant)+)] = [ $( Op::$variant, )+ ];

            /// Returns the assembly mnemonic, e.g. `"addw"` or `"fence.i"`.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $( Op::$variant => $mnemonic, )+
                }
            }

            /// Returns the encoding [`Format`] of the operation.
            pub fn format(self) -> Format {
                match self {
                    $( Op::$variant => Format::$format, )+
                }
            }

            /// Returns the functional [`OpClass`] of the operation.
            pub fn class(self) -> OpClass {
                match self {
                    $( Op::$variant => OpClass::$class, )+
                }
            }

            /// Parses an assembly mnemonic back into an operation.
            pub fn parse(mnemonic: &str) -> Option<Op> {
                match mnemonic {
                    $( $mnemonic => Some(Op::$variant), )+
                    _ => None,
                }
            }
        }
    };
    (@count $($x:ident)+) => { 0usize $( + { let _ = stringify!($x); 1 } )+ };
}

ops! {
    // RV64I upper-immediate / jumps
    Lui => ("lui", U, Arith),
    Auipc => ("auipc", U, Arith),
    Jal => ("jal", J, Jump),
    Jalr => ("jalr", I, Jump),
    // Conditional branches
    Beq => ("beq", B, Branch),
    Bne => ("bne", B, Branch),
    Blt => ("blt", B, Branch),
    Bge => ("bge", B, Branch),
    Bltu => ("bltu", B, Branch),
    Bgeu => ("bgeu", B, Branch),
    // Loads
    Lb => ("lb", I, Load),
    Lh => ("lh", I, Load),
    Lw => ("lw", I, Load),
    Ld => ("ld", I, Load),
    Lbu => ("lbu", I, Load),
    Lhu => ("lhu", I, Load),
    Lwu => ("lwu", I, Load),
    // Stores
    Sb => ("sb", S, Store),
    Sh => ("sh", S, Store),
    Sw => ("sw", S, Store),
    Sd => ("sd", S, Store),
    // Register-immediate arithmetic
    Addi => ("addi", I, Arith),
    Slti => ("slti", I, Arith),
    Sltiu => ("sltiu", I, Arith),
    Xori => ("xori", I, Arith),
    Ori => ("ori", I, Arith),
    Andi => ("andi", I, Arith),
    Slli => ("slli", IShift, Arith),
    Srli => ("srli", IShift, Arith),
    Srai => ("srai", IShift, Arith),
    // Register-register arithmetic
    Add => ("add", R, Arith),
    Sub => ("sub", R, Arith),
    Sll => ("sll", R, Arith),
    Slt => ("slt", R, Arith),
    Sltu => ("sltu", R, Arith),
    Xor => ("xor", R, Arith),
    Srl => ("srl", R, Arith),
    Sra => ("sra", R, Arith),
    Or => ("or", R, Arith),
    And => ("and", R, Arith),
    // RV64 word-width arithmetic
    Addiw => ("addiw", I, Arith),
    Slliw => ("slliw", IShift, Arith),
    Srliw => ("srliw", IShift, Arith),
    Sraiw => ("sraiw", IShift, Arith),
    Addw => ("addw", R, Arith),
    Subw => ("subw", R, Arith),
    Sllw => ("sllw", R, Arith),
    Srlw => ("srlw", R, Arith),
    Sraw => ("sraw", R, Arith),
    // M extension
    Mul => ("mul", R, Mul),
    Mulh => ("mulh", R, Mul),
    Mulhsu => ("mulhsu", R, Mul),
    Mulhu => ("mulhu", R, Mul),
    Div => ("div", R, Div),
    Divu => ("divu", R, Div),
    Rem => ("rem", R, Div),
    Remu => ("remu", R, Div),
    Mulw => ("mulw", R, Mul),
    Divw => ("divw", R, Div),
    Divuw => ("divuw", R, Div),
    Remw => ("remw", R, Div),
    Remuw => ("remuw", R, Div),
    // Zicsr
    Csrrw => ("csrrw", Csr, Csr),
    Csrrs => ("csrrs", Csr, Csr),
    Csrrc => ("csrrc", Csr, Csr),
    Csrrwi => ("csrrwi", CsrImm, Csr),
    Csrrsi => ("csrrsi", CsrImm, Csr),
    Csrrci => ("csrrci", CsrImm, Csr),
    // Fences
    Fence => ("fence", Fence, Fence),
    FenceI => ("fence.i", Fence, Fence),
    // System
    Ecall => ("ecall", System, System),
    Ebreak => ("ebreak", System, System),
    Mret => ("mret", System, System),
    Wfi => ("wfi", System, System),
}

impl Op {
    /// Returns `true` when the operation writes a destination register.
    pub fn writes_rd(self) -> bool {
        !matches!(
            self.format(),
            Format::S | Format::B | Format::Fence | Format::System
        )
    }

    /// Returns `true` when the operation reads its `rs1` field.
    pub fn reads_rs1(self) -> bool {
        !matches!(
            self.format(),
            Format::U | Format::J | Format::CsrImm | Format::Fence | Format::System
        )
    }

    /// Returns `true` when the operation reads its `rs2` field.
    pub fn reads_rs2(self) -> bool {
        matches!(self.format(), Format::R | Format::S | Format::B)
    }

    /// Returns `true` when the operation may transfer control (branches,
    /// jumps, traps and `mret`).
    pub fn is_control_flow(self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
            || matches!(self, Op::Ecall | Op::Ebreak | Op::Mret)
    }

    /// Returns `true` when the operation accesses data memory.
    pub fn is_memory(self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::Store)
    }

    /// Returns the access width, in bytes, of a load or store, or `None` for
    /// other operations.
    pub fn memory_width(self) -> Option<u8> {
        Some(match self {
            Op::Lb | Op::Lbu | Op::Sb => 1,
            Op::Lh | Op::Lhu | Op::Sh => 2,
            Op::Lw | Op::Lwu | Op::Sw => 4,
            Op::Ld | Op::Sd => 8,
            _ => return None,
        })
    }

    /// Returns all operations belonging to `class`.
    pub fn of_class(class: OpClass) -> impl Iterator<Item = Op> {
        Op::ALL.iter().copied().filter(move |op| op.class() == class)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_ops_have_unique_mnemonics() {
        let mnemonics: HashSet<_> = Op::ALL.iter().map(|op| op.mnemonic()).collect();
        assert_eq!(mnemonics.len(), Op::ALL.len());
    }

    #[test]
    fn mnemonic_parse_round_trip() {
        for op in Op::ALL {
            assert_eq!(Op::parse(op.mnemonic()), Some(op), "{op:?}");
        }
        assert_eq!(Op::parse("frobnicate"), None);
    }

    #[test]
    fn every_class_has_members() {
        for class in OpClass::ALL {
            assert!(Op::of_class(class).count() > 0, "{class:?} has no ops");
        }
    }

    #[test]
    fn operand_usage_matches_format() {
        assert!(Op::Add.writes_rd() && Op::Add.reads_rs1() && Op::Add.reads_rs2());
        assert!(Op::Sd.reads_rs2() && !Op::Sd.writes_rd());
        assert!(Op::Beq.reads_rs1() && Op::Beq.reads_rs2() && !Op::Beq.writes_rd());
        assert!(Op::Lui.writes_rd() && !Op::Lui.reads_rs1());
        assert!(Op::Csrrwi.writes_rd() && !Op::Csrrwi.reads_rs1());
        assert!(!Op::Ecall.writes_rd() && !Op::Ecall.reads_rs1());
    }

    #[test]
    fn memory_widths() {
        assert_eq!(Op::Lb.memory_width(), Some(1));
        assert_eq!(Op::Sh.memory_width(), Some(2));
        assert_eq!(Op::Lwu.memory_width(), Some(4));
        assert_eq!(Op::Sd.memory_width(), Some(8));
        assert_eq!(Op::Add.memory_width(), None);
    }

    #[test]
    fn control_flow_classification() {
        assert!(Op::Jal.is_control_flow());
        assert!(Op::Beq.is_control_flow());
        assert!(Op::Ecall.is_control_flow());
        assert!(Op::Mret.is_control_flow());
        assert!(!Op::Add.is_control_flow());
        assert!(!Op::Fence.is_control_flow());
    }

    #[test]
    fn instruction_count_covers_rv64im_zicsr() {
        // 49 RV64I + 13 M + 6 Zicsr + 2 fences + 4 system. The exact total
        // guards against accidentally dropping variants during refactors.
        assert_eq!(Op::ALL.len(), 74);
    }
}
