//! Static analysis of RISC-V text images: basic blocks, a *total* control-flow
//! graph, and per-block register liveness.
//!
//! The analyzer runs **once per text image** — the fuzzing pipeline attaches
//! its result to the decode cache entry for the image (see
//! `isa_sim::DecodeCache::get_or_decode_with_facts`), so steady-state fuzzing
//! pays for analysis only on a cache miss. Everything here is a pure function
//! of the text bytes: no global state, no randomness, no wall clock.
//!
//! # CFG closure rules
//!
//! The text image is the slot array produced by decoding each little-endian
//! 32-bit word at `TEXT_BASE + 4·slot` (an empty image gets the same phantom
//! zero slot the simulators use). From it the analyzer recovers:
//!
//! * **Leaders** — slot 0, every statically-known aligned in-text `jal`/branch
//!   target, and the fall-through slot of every control-transfer instruction.
//! * **Blocks** — maximal runs of slots ending at a control-transfer
//!   instruction ([`Op::is_control_flow`]), just before the next leader, or at
//!   the last slot of the image. Undecodable (statically-illegal) slots and
//!   potentially-faulting loads/stores/CSR accesses do *not* end a block:
//!   their traps are modelled by the block's trap-exit edge.
//! * **Edges** — identified by `(from_pc, to, kind)` where `to == None` is the
//!   synthetic `Unknown` sink, making the CFG total:
//!   - `BranchTaken(term_pc, target)` for a branch whose taken target is
//!     4-aligned (`Some` in text, `None` out of text); a misaligned taken
//!     target traps instead, so no taken edge is emitted.
//!   - `FallThrough(term_pc, term_pc + 4)` for branch not-taken paths, leader
//!     boundaries and non-control block ends (`None` when the successor slot
//!     would fall off the end of the image).
//!   - `Jump(term_pc, target)` for `jal` with a 4-aligned target (`Some`/`None`
//!     as above; misaligned targets trap, no edge).
//!   - `Indirect(term_pc, None)` for `jalr` and `mret`: the target is a
//!     runtime value, always closed with the `Unknown` sink.
//!   - `TrapExit(block_start, None)` — emitted for **every** block, last in its
//!     edge list, so any faulting commit (illegal instruction, memory fault,
//!     CSR fault, `ecall`/`ebreak`, misaligned control target — on the golden
//!     model *or* a buggy DUT) maps to exactly one edge of its block.
//!
//! Within a block the edge order is fixed: the terminator's control edges
//! (taken before fall-through), then the trap exit. [`ProgramFacts::map_transition`]
//! resolves a dynamic `(pc, next_pc, faulted)` commit against this order
//! deterministically.
//!
//! # Edge-id stability guarantee
//!
//! Blocks are emitted in ascending start address and edges in the fixed
//! per-block order above, so both the edge *index* and the edge *identity
//! tuple* `(from_pc, to, kind)` are pure functions of the text bytes. The
//! edge-coverage signal hashes the identity tuple (not the index) into a
//! fixed-size space, so coverage slots are stable across runs, shards,
//! processes and cache hits/misses — the property the `fuzzer::shard`
//! determinism contract requires of any coverage signal.
//!
//! # Classifications and liveness
//!
//! Pass 2 computes, per block, GPR def/use bitmasks (bit *i* = `x_i`; `x0` is
//! never a def or use) and a backward liveness fixpoint over the *direct* CFG
//! — trap-exit edges are deliberately excluded, so `live_in`/`live_out`
//! describe the no-trap fast path a JIT would speculate on (a trap deopts to
//! full architectural state anyway). Edges into the `Unknown` sink and blocks
//! with no direct successors (e.g. `ecall` halts, where the differential
//! oracle observes the whole final state) treat every register as live.
//! Static classifications: statically-illegal slots, blocks unreachable from
//! the entry block by direct flow (a configured trap vector can still reach
//! them dynamically), and trivially-infinite self-loops (a non-trapping block
//! whose only direct edge is a `jal` back to its own start).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use riscv::program::TEXT_BASE;
use riscv::{decode, Gpr, Instr, Op, OpClass};

/// Bitmask of every observable register: all GPRs except the hardwired `x0`.
pub const ALL_LIVE: u32 = 0xffff_fffe;

/// The kind of a static CFG edge. Part of the edge identity tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Sequential flow into the next slot (branch not taken, leader boundary,
    /// or a non-control instruction at the end of a block).
    FallThrough,
    /// A conditional branch's statically-known taken target.
    BranchTaken,
    /// A `jal`'s statically-known target.
    Jump,
    /// A runtime-valued control transfer (`jalr`, `mret`); always targets the
    /// `Unknown` sink.
    Indirect,
    /// Any trapping exit from the block (illegal instruction, memory/CSR
    /// fault, `ecall`/`ebreak`, misaligned control target).
    TrapExit,
}

impl EdgeKind {
    /// Stable wire code for hashing the edge identity tuple.
    pub fn code(self) -> u8 {
        match self {
            EdgeKind::FallThrough => 0,
            EdgeKind::BranchTaken => 1,
            EdgeKind::Jump => 2,
            EdgeKind::Indirect => 3,
            EdgeKind::TrapExit => 4,
        }
    }

    /// Stable lower-case name used by the JSON renderer.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::FallThrough => "fall-through",
            EdgeKind::BranchTaken => "branch-taken",
            EdgeKind::Jump => "jump",
            EdgeKind::Indirect => "indirect",
            EdgeKind::TrapExit => "trap-exit",
        }
    }
}

/// One static CFG edge, identified by `(from_pc, to, kind)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CfgEdge {
    /// The terminator's pc (for [`EdgeKind::TrapExit`], the block's start pc —
    /// any slot of the block may trap).
    pub from_pc: u64,
    /// Target pc, or `None` for the synthetic `Unknown` sink (indirect flow,
    /// out-of-text targets, trap exits, falling off the end of the image).
    pub to: Option<u64>,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// One basic block plus its per-block dataflow facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first slot.
    pub start: u64,
    /// Number of slots in the block (always ≥ 1).
    pub len: u32,
    /// Index of the block's first edge in [`ProgramFacts::edges`].
    pub edge_start: u32,
    /// Number of edges (always ≥ 1: the trap exit is unconditional).
    pub edge_count: u32,
    /// `true` when some slot of the block may raise an exception.
    pub can_trap: bool,
    /// GPRs written by the block (bit *i* = `x_i`; `x0` excluded).
    pub def: u32,
    /// GPRs read before being written within the block.
    pub uses: u32,
    /// Registers live on entry (no-trap path; see the module docs).
    pub live_in: u32,
    /// Registers live on exit (no-trap path; see the module docs).
    pub live_out: u32,
}

impl BasicBlock {
    /// Address of the block's terminator (last) slot.
    pub fn terminator_pc(&self) -> u64 {
        self.start + 4 * (self.len as u64 - 1)
    }
}

/// How a dynamic `(pc, next_pc, faulted)` commit maps onto the static CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Sequential flow inside a block — not an edge.
    Internal,
    /// The commit traverses the edge at this index in [`ProgramFacts::edges`].
    Edge(usize),
    /// The commit fits no static edge (only possible for a commit stream that
    /// deviates from the golden semantics, i.e. a buggy DUT).
    Unmatched,
}

/// The result of statically analyzing one text image.
///
/// A pure function of the text bytes — see the module docs for the closure
/// rules and the edge-id stability guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramFacts {
    slots: usize,
    blocks: Vec<BasicBlock>,
    edges: Vec<CfgEdge>,
    block_of_slot: Vec<u32>,
    statically_illegal: Vec<u32>,
    unreachable: Vec<u32>,
    trivial_self_loops: Vec<u32>,
}

fn reg_bit(reg: Gpr) -> u32 {
    // Writes to x0 are discarded and reads of x0 see the constant zero, so
    // the hardwired register is neither a def nor a use.
    (1u32 << reg.index()) & !1
}

/// The statically-known target of a `jal` or conditional branch.
fn static_control_target(pc: u64, instr: &Instr) -> Option<u64> {
    match instr.op {
        Op::Jal => Some(pc.wrapping_add(instr.imm as u64)),
        op if op.class() == OpClass::Branch => Some(pc.wrapping_add(instr.imm as u64)),
        _ => None,
    }
}

/// Conservative may-trap per decoded slot.
fn slot_can_trap(pc: u64, instr: &Instr) -> bool {
    match instr.op {
        Op::Ecall | Op::Ebreak | Op::Jalr => true,
        Op::Jal => !pc.wrapping_add(instr.imm as u64).is_multiple_of(4),
        op if op.is_memory() => true,
        op if op.class() == OpClass::Branch => !pc.wrapping_add(instr.imm as u64).is_multiple_of(4),
        op if op.class() == OpClass::Csr => true,
        _ => false,
    }
}

impl ProgramFacts {
    /// Analyzes a text image (little-endian 32-bit words starting at
    /// `TEXT_BASE`). An empty image is given the same phantom zero slot the
    /// simulators fetch, so the CFG is never empty.
    pub fn analyze(text: &[u8]) -> ProgramFacts {
        let mut instrs: Vec<Option<Instr>> = text
            .chunks_exact(4)
            .map(|chunk| decode(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]])).ok())
            .collect();
        if instrs.is_empty() {
            // The phantom zero slot: undecodable, raises IllegalInstruction.
            instrs.push(None);
        }
        let slots = instrs.len();
        let end = TEXT_BASE + 4 * slots as u64;
        let in_text = |pc: u64| pc.is_multiple_of(4) && (TEXT_BASE..end).contains(&pc);
        let pc_of = |slot: usize| TEXT_BASE + 4 * slot as u64;
        let slot_of = |pc: u64| ((pc - TEXT_BASE) / 4) as usize;

        // Pass 1a: leaders.
        let mut leader = vec![false; slots];
        leader[0] = true;
        for (i, instr) in instrs.iter().enumerate() {
            let Some(instr) = instr else { continue };
            if !instr.op.is_control_flow() {
                continue;
            }
            if i + 1 < slots {
                leader[i + 1] = true;
            }
            if let Some(target) = static_control_target(pc_of(i), instr) {
                if in_text(target) {
                    leader[slot_of(target)] = true;
                }
            }
        }

        // Pass 1b: blocks and edges.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut edges: Vec<CfgEdge> = Vec::new();
        let mut block_of_slot = vec![0u32; slots];
        let mut statically_illegal = Vec::new();
        let mut start = 0usize;
        for i in 0..slots {
            if instrs[i].is_none() {
                statically_illegal.push(i as u32);
            }
            let terminator = instrs[i].as_ref().is_some_and(|x| x.op.is_control_flow());
            let last = i + 1 == slots;
            if !(terminator || last || leader[i + 1]) {
                continue;
            }
            let block_index = blocks.len() as u32;
            for slot in block_of_slot.iter_mut().take(i + 1).skip(start) {
                *slot = block_index;
            }
            let term_pc = pc_of(i);
            let fall_to = if last { None } else { Some(term_pc + 4) };
            let edge_start = edges.len() as u32;
            match instrs[i].as_ref() {
                Some(instr) if instr.op == Op::Jal => {
                    let target = term_pc.wrapping_add(instr.imm as u64);
                    if target.is_multiple_of(4) {
                        let to = in_text(target).then_some(target);
                        edges.push(CfgEdge { from_pc: term_pc, to, kind: EdgeKind::Jump });
                    }
                    // A misaligned target traps on the jump: the trap exit
                    // below is the only way out.
                }
                Some(instr) if instr.op == Op::Jalr || instr.op == Op::Mret => {
                    edges.push(CfgEdge { from_pc: term_pc, to: None, kind: EdgeKind::Indirect });
                }
                Some(instr) if instr.op.class() == OpClass::Branch => {
                    let target = term_pc.wrapping_add(instr.imm as u64);
                    if target.is_multiple_of(4) {
                        let to = in_text(target).then_some(target);
                        edges.push(CfgEdge { from_pc: term_pc, to, kind: EdgeKind::BranchTaken });
                    }
                    edges.push(CfgEdge { from_pc: term_pc, to: fall_to, kind: EdgeKind::FallThrough });
                }
                Some(instr) if instr.op == Op::Ecall || instr.op == Op::Ebreak => {
                    // Always trap (halt or redirect): the trap exit covers it.
                }
                _ => {
                    // Leader boundary or end of image after a non-control slot.
                    edges.push(CfgEdge { from_pc: term_pc, to: fall_to, kind: EdgeKind::FallThrough });
                }
            }
            edges.push(CfgEdge { from_pc: pc_of(start), to: None, kind: EdgeKind::TrapExit });

            let mut can_trap = false;
            let mut def = 0u32;
            let mut uses = 0u32;
            for (slot, decoded) in instrs.iter().enumerate().take(i + 1).skip(start) {
                match decoded {
                    None => can_trap = true,
                    Some(instr) => {
                        can_trap |= slot_can_trap(pc_of(slot), instr);
                        for src in instr.sources() {
                            let bit = reg_bit(src);
                            if def & bit == 0 {
                                uses |= bit;
                            }
                        }
                        if let Some(rd) = instr.dest() {
                            def |= reg_bit(rd);
                        }
                    }
                }
            }
            blocks.push(BasicBlock {
                start: pc_of(start),
                len: (i - start + 1) as u32,
                edge_start,
                edge_count: edges.len() as u32 - edge_start,
                can_trap,
                def,
                uses,
                live_in: 0,
                live_out: 0,
            });
            start = i + 1;
        }

        // Pass 2a: direct successors (trap exits excluded; see module docs).
        let block_count = blocks.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); block_count];
        let mut exit_all_live = vec![false; block_count];
        for (b, block) in blocks.iter().enumerate() {
            let range = block.edge_start as usize..(block.edge_start + block.edge_count) as usize;
            let mut has_direct = false;
            for edge in &edges[range] {
                if edge.kind == EdgeKind::TrapExit {
                    continue;
                }
                has_direct = true;
                match edge.to {
                    Some(target) => succs[b].push(block_of_slot[slot_of(target)]),
                    None => exit_all_live[b] = true,
                }
            }
            if !has_direct {
                exit_all_live[b] = true;
            }
        }

        // Pass 2b: backward liveness fixpoint.
        loop {
            let mut changed = false;
            for b in (0..block_count).rev() {
                let mut out = if exit_all_live[b] { ALL_LIVE } else { 0 };
                for &succ in &succs[b] {
                    out |= blocks[succ as usize].live_in;
                }
                let live_in = blocks[b].uses | (out & !blocks[b].def);
                if out != blocks[b].live_out || live_in != blocks[b].live_in {
                    blocks[b].live_out = out;
                    blocks[b].live_in = live_in;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Pass 2c: reachability from the entry block over direct edges.
        let mut reached = vec![false; block_count];
        reached[0] = true;
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            for &succ in &succs[b] {
                if !reached[succ as usize] {
                    reached[succ as usize] = true;
                    stack.push(succ as usize);
                }
            }
        }
        let unreachable: Vec<u32> =
            (0..block_count).filter(|&b| !reached[b]).map(|b| b as u32).collect();

        // Pass 2d: trivially-infinite self-loops.
        let trivial_self_loops: Vec<u32> = blocks
            .iter()
            .enumerate()
            .filter(|(_, block)| {
                if block.can_trap {
                    return false;
                }
                let range =
                    block.edge_start as usize..(block.edge_start + block.edge_count) as usize;
                let direct: Vec<&CfgEdge> =
                    edges[range].iter().filter(|e| e.kind != EdgeKind::TrapExit).collect();
                direct.len() == 1
                    && direct[0].kind == EdgeKind::Jump
                    && direct[0].to == Some(block.start)
            })
            .map(|(b, _)| b as u32)
            .collect();

        ProgramFacts {
            slots,
            blocks,
            edges,
            block_of_slot,
            statically_illegal,
            unreachable,
            trivial_self_loops,
        }
    }

    /// Number of slots in the analyzed image (≥ 1).
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// The basic blocks, in ascending start address.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The flat edge table; per-block slices via [`ProgramFacts::block_edges`].
    pub fn edges(&self) -> &[CfgEdge] {
        &self.edges
    }

    /// The edges of one block, in the fixed per-block order.
    pub fn block_edges(&self, block: usize) -> &[CfgEdge] {
        let block = &self.blocks[block];
        &self.edges[block.edge_start as usize..(block.edge_start + block.edge_count) as usize]
    }

    /// The block containing `pc`, if `pc` is an in-text slot address.
    pub fn block_of_pc(&self, pc: u64) -> Option<usize> {
        if !pc.is_multiple_of(4) || pc < TEXT_BASE {
            return None;
        }
        let slot = ((pc - TEXT_BASE) / 4) as usize;
        self.block_of_slot.get(slot).map(|&b| b as usize)
    }

    /// Slot indices whose word does not decode.
    pub fn statically_illegal(&self) -> &[u32] {
        &self.statically_illegal
    }

    /// Blocks unreachable from the entry block by direct flow.
    pub fn unreachable_blocks(&self) -> &[u32] {
        &self.unreachable
    }

    /// Non-trapping blocks whose only direct edge jumps back to their start.
    pub fn trivial_self_loops(&self) -> &[u32] {
        &self.trivial_self_loops
    }

    /// Maps one dynamic commit onto the static CFG.
    ///
    /// `pc` is the committed instruction's address, `next_pc` the next pc in
    /// program order (including any trap redirect), and `faulted` whether the
    /// commit raised an exception. Resolution order: a faulting commit takes
    /// its block's trap-exit edge; a sequential step inside a block is
    /// [`Transition::Internal`]; a terminator commit matches its block's edges
    /// in stored order — exact target first, then `Indirect` (any target),
    /// then the `Unknown`-sink edges for an out-of-text `next_pc`.
    pub fn map_transition(&self, pc: u64, next_pc: u64, faulted: bool) -> Transition {
        let Some(block_index) = self.block_of_pc(pc) else {
            return Transition::Unmatched;
        };
        let block = &self.blocks[block_index];
        let edge_start = block.edge_start as usize;
        let edges = self.block_edges(block_index);
        if faulted {
            // The trap exit is unconditionally the last edge of every block.
            return Transition::Edge(edge_start + edges.len() - 1);
        }
        if pc != block.terminator_pc() {
            return if next_pc == pc + 4 { Transition::Internal } else { Transition::Unmatched };
        }
        for (offset, edge) in edges.iter().enumerate() {
            if edge.kind != EdgeKind::TrapExit && edge.to == Some(next_pc) {
                return Transition::Edge(edge_start + offset);
            }
        }
        for (offset, edge) in edges.iter().enumerate() {
            if edge.kind == EdgeKind::Indirect {
                return Transition::Edge(edge_start + offset);
            }
        }
        let end = TEXT_BASE + 4 * self.slots as u64;
        let in_text = next_pc.is_multiple_of(4) && (TEXT_BASE..end).contains(&next_pc);
        if !in_text {
            for (offset, edge) in edges.iter().enumerate() {
                if edge.kind != EdgeKind::TrapExit && edge.to.is_none() {
                    return Transition::Edge(edge_start + offset);
                }
            }
        }
        Transition::Unmatched
    }

    /// Renders the facts as one strict JSON object (fixed key order, integers
    /// and fixed kind names only — byte-stable across runs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"slots\":{},\"block_count\":{},\"edge_count\":{}",
            self.slots,
            self.blocks.len(),
            self.edges.len()
        );
        push_u32_array(&mut out, "illegal_slots", &self.statically_illegal);
        push_u32_array(&mut out, "unreachable_blocks", &self.unreachable);
        push_u32_array(&mut out, "trivial_self_loops", &self.trivial_self_loops);
        out.push_str(",\"blocks\":[");
        for (b, block) in self.blocks.iter().enumerate() {
            if b > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"start\":{},\"len\":{},\"can_trap\":{},\"def\":{},\"use\":{},\
                 \"live_in\":{},\"live_out\":{},\"edges\":[",
                block.start,
                block.len,
                block.can_trap,
                block.def,
                block.uses,
                block.live_in,
                block.live_out
            );
            for (e, edge) in self.block_edges(b).iter().enumerate() {
                if e > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"from\":{},\"to\":", edge.from_pc);
                match edge.to {
                    Some(to) => {
                        let _ = write!(out, "{to}");
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"kind\":\"{}\"}}", edge.kind.name());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn push_u32_array(out: &mut String, key: &str, values: &[u32]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{value}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::Program;

    fn facts_of(instrs: Vec<Instr>) -> ProgramFacts {
        ProgramFacts::analyze(&Program::from_instrs(instrs).text_bytes())
    }

    fn kinds(facts: &ProgramFacts, block: usize) -> Vec<EdgeKind> {
        facts.block_edges(block).iter().map(|e| e.kind).collect()
    }

    #[test]
    fn empty_image_gets_the_phantom_illegal_slot() {
        let facts = ProgramFacts::analyze(&[]);
        assert_eq!(facts.slot_count(), 1);
        assert_eq!(facts.blocks().len(), 1);
        assert_eq!(facts.statically_illegal(), &[0]);
        assert!(facts.blocks()[0].can_trap);
        // Fall off the end of the image + the unconditional trap exit.
        assert_eq!(kinds(&facts, 0), vec![EdgeKind::FallThrough, EdgeKind::TrapExit]);
        assert_eq!(facts.block_edges(0)[0].to, None);
    }

    #[test]
    fn straight_line_program_is_one_block_ending_in_a_trap_exit() {
        let facts = facts_of(vec![
            Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, 1),
            Instr::itype(Op::Addi, Gpr::A1, Gpr::A0, 2),
            Instr::nullary(Op::Ecall),
        ]);
        assert_eq!(facts.blocks().len(), 1);
        assert_eq!(facts.blocks()[0].len, 3);
        // ecall has no direct successor: the trap exit is the only edge.
        assert_eq!(kinds(&facts, 0), vec![EdgeKind::TrapExit]);
        assert_eq!(facts.block_edges(0)[0].from_pc, TEXT_BASE);
        assert!(facts.unreachable_blocks().is_empty());
    }

    #[test]
    fn branch_splits_blocks_and_emits_taken_and_fall_through_edges() {
        let facts = facts_of(vec![
            Instr::branch(Op::Beq, Gpr::A0, Gpr::A1, 8),
            Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, 1),
            Instr::nullary(Op::Ecall),
        ]);
        assert_eq!(facts.blocks().len(), 3);
        assert_eq!(
            kinds(&facts, 0),
            vec![EdgeKind::BranchTaken, EdgeKind::FallThrough, EdgeKind::TrapExit]
        );
        let edges = facts.block_edges(0);
        assert_eq!(edges[0].to, Some(TEXT_BASE + 8));
        assert_eq!(edges[1].to, Some(TEXT_BASE + 4));
        // The middle block ends at the leader boundary with a fall-through.
        assert_eq!(kinds(&facts, 1), vec![EdgeKind::FallThrough, EdgeKind::TrapExit]);
        assert!(facts.unreachable_blocks().is_empty());
    }

    #[test]
    fn jal_over_a_block_leaves_it_unreachable() {
        let facts = facts_of(vec![
            Instr::jal(Gpr::Zero, 8),
            Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, 1),
            Instr::nullary(Op::Ecall),
        ]);
        assert_eq!(facts.blocks().len(), 3);
        assert_eq!(kinds(&facts, 0), vec![EdgeKind::Jump, EdgeKind::TrapExit]);
        assert_eq!(facts.block_edges(0)[0].to, Some(TEXT_BASE + 8));
        assert_eq!(facts.unreachable_blocks(), &[1]);
    }

    #[test]
    fn out_of_text_jal_targets_the_unknown_sink() {
        let facts = facts_of(vec![Instr::jal(Gpr::Zero, 8)]);
        let edges = facts.block_edges(0);
        assert_eq!(edges[0].kind, EdgeKind::Jump);
        assert_eq!(edges[0].to, None);
    }

    #[test]
    fn jal_to_self_is_a_trivially_infinite_loop() {
        let facts = facts_of(vec![Instr::jal(Gpr::Zero, 0)]);
        assert_eq!(facts.trivial_self_loops(), &[0]);
        assert!(!facts.blocks()[0].can_trap);
    }

    #[test]
    fn backward_jal_loop_header_is_a_trivially_infinite_loop() {
        let facts = facts_of(vec![
            Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, 1),
            Instr::jal(Gpr::Zero, -4),
        ]);
        assert_eq!(facts.blocks().len(), 1);
        assert_eq!(facts.trivial_self_loops(), &[0]);
    }

    #[test]
    fn indirect_and_misaligned_targets_close_with_the_sink_or_trap() {
        let facts = facts_of(vec![
            Instr::itype(Op::Jalr, Gpr::Ra, Gpr::A0, 0),
            // Misaligned taken target (offset 6 ≡ 2 mod 4): trap covers it.
            Instr::branch(Op::Bne, Gpr::A0, Gpr::A1, 6),
            Instr::nullary(Op::Ecall),
        ]);
        assert_eq!(kinds(&facts, 0), vec![EdgeKind::Indirect, EdgeKind::TrapExit]);
        assert_eq!(kinds(&facts, 1), vec![EdgeKind::FallThrough, EdgeKind::TrapExit]);
        assert!(facts.blocks()[1].can_trap);
    }

    #[test]
    fn def_use_and_liveness_follow_the_no_trap_path() {
        // Block 0 defines t0 from scratch; a0 is read before any def.
        let facts = facts_of(vec![
            Instr::itype(Op::Addi, Gpr::T0, Gpr::Zero, 5),
            Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, 1),
            Instr::nullary(Op::Ecall),
        ]);
        let block = &facts.blocks()[0];
        assert_eq!(block.def, reg_bit(Gpr::T0) | reg_bit(Gpr::A0));
        assert_eq!(block.uses, reg_bit(Gpr::A0));
        // ecall halts: every register is observable at exit.
        assert_eq!(block.live_out, ALL_LIVE);
        assert_eq!(block.live_in, ALL_LIVE & !reg_bit(Gpr::T0) | reg_bit(Gpr::A0));
    }

    #[test]
    fn liveness_flows_backward_through_direct_edges() {
        // jal over an unreachable block into the halting block: the entry
        // block's live-out is the halt block's live-in (all live).
        let facts = facts_of(vec![Instr::jal(Gpr::Zero, 8), Instr::nop(), Instr::nullary(Op::Ecall)]);
        assert_eq!(facts.blocks()[0].live_out, ALL_LIVE);
    }

    #[test]
    fn map_transition_resolves_internal_edges_and_traps() {
        let facts = facts_of(vec![
            Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, 1),
            Instr::branch(Op::Beq, Gpr::A0, Gpr::A1, 8),
            Instr::itype(Op::Addi, Gpr::A0, Gpr::A0, 2),
            Instr::nullary(Op::Ecall),
        ]);
        // Sequential step inside block 0.
        assert_eq!(facts.map_transition(TEXT_BASE, TEXT_BASE + 4, false), Transition::Internal);
        // Branch taken and not taken resolve to distinct edges.
        let taken = facts.map_transition(TEXT_BASE + 4, TEXT_BASE + 12, false);
        let not_taken = facts.map_transition(TEXT_BASE + 4, TEXT_BASE + 8, false);
        let (Transition::Edge(t), Transition::Edge(n)) = (taken, not_taken) else {
            panic!("branch transitions must map to edges: {taken:?} / {not_taken:?}");
        };
        assert_ne!(t, n);
        assert_eq!(facts.edges()[t].kind, EdgeKind::BranchTaken);
        assert_eq!(facts.edges()[n].kind, EdgeKind::FallThrough);
        // A faulting commit anywhere in a block takes its trap exit.
        let Transition::Edge(trap) = facts.map_transition(TEXT_BASE, TEXT_BASE + 4, true) else {
            panic!("faulting commit must map to the trap exit");
        };
        assert_eq!(facts.edges()[trap].kind, EdgeKind::TrapExit);
        // The halting ecall maps to its own block's trap exit.
        let Transition::Edge(halt) = facts.map_transition(TEXT_BASE + 12, TEXT_BASE + 16, true)
        else {
            panic!("ecall commit must map to the trap exit");
        };
        assert_eq!(facts.edges()[halt].kind, EdgeKind::TrapExit);
        assert_ne!(trap, halt);
        // Out-of-text pcs never map.
        assert_eq!(facts.map_transition(TEXT_BASE - 4, TEXT_BASE, false), Transition::Unmatched);
    }

    #[test]
    fn map_transition_routes_out_of_text_targets_to_the_sink_edges() {
        let facts = facts_of(vec![Instr::itype(Op::Jalr, Gpr::Ra, Gpr::A0, 0)]);
        let Transition::Edge(edge) = facts.map_transition(TEXT_BASE, 0x9000_0000, false) else {
            panic!("indirect transfer must map to the indirect edge");
        };
        assert_eq!(facts.edges()[edge].kind, EdgeKind::Indirect);
    }

    #[test]
    fn json_rendering_is_stable_and_strict() {
        let facts = facts_of(vec![Instr::jal(Gpr::Zero, 0)]);
        let json = facts.to_json();
        assert_eq!(
            json,
            format!(
                "{{\"slots\":1,\"block_count\":1,\"edge_count\":2,\"illegal_slots\":[],\
                 \"unreachable_blocks\":[],\"trivial_self_loops\":[0],\"blocks\":[{{\"start\":{base},\
                 \"len\":1,\"can_trap\":false,\"def\":0,\"use\":0,\"live_in\":0,\"live_out\":0,\
                 \"edges\":[{{\"from\":{base},\"to\":{base},\"kind\":\"jump\"}},\
                 {{\"from\":{base},\"to\":null,\"kind\":\"trap-exit\"}}]}}]}}",
                base = TEXT_BASE
            )
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let program = Program::from_instrs(vec![
            Instr::branch(Op::Blt, Gpr::A0, Gpr::A1, 8),
            Instr::jal(Gpr::Ra, 4),
            Instr::nullary(Op::Ecall),
        ]);
        let text = program.text_bytes();
        assert_eq!(ProgramFacts::analyze(&text), ProgramFacts::analyze(&text));
    }

    mod closure_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For arbitrary word images the CFG is total and internally
            /// consistent: every block ends with its trap exit, every
            /// `Some` target is a block start, and the slot map is exact.
            #[test]
            fn cfg_is_total_over_arbitrary_images(words in proptest::collection::vec(any::<u32>(), 0..48)) {
                let mut text = Vec::with_capacity(words.len() * 4);
                for word in &words {
                    text.extend_from_slice(&word.to_le_bytes());
                }
                let facts = ProgramFacts::analyze(&text);
                prop_assert_eq!(facts.slot_count(), words.len().max(1));
                let mut covered = 0usize;
                for (b, block) in facts.blocks().iter().enumerate() {
                    covered += block.len as usize;
                    let edges = facts.block_edges(b);
                    prop_assert!(!edges.is_empty());
                    prop_assert_eq!(edges.last().unwrap().kind, EdgeKind::TrapExit);
                    for edge in edges {
                        if let Some(to) = edge.to {
                            let target = facts.block_of_pc(to).expect("in-text target");
                            prop_assert_eq!(facts.blocks()[target].start, to,
                                "every Some target is a block leader");
                        }
                    }
                    prop_assert_eq!(facts.block_of_pc(block.start), Some(b));
                    prop_assert_eq!(facts.block_of_pc(block.terminator_pc()), Some(b));
                }
                prop_assert_eq!(covered, facts.slot_count());
            }
        }
    }
}
