//! Cross-crate closure audit: the seed generator's static control-transfer
//! targets all land inside the text image, so the CFG of every generated
//! seed needs the `Unknown` sink only where the closure rules demand it
//! (indirect jumps, and falling off the final slot) — never for a `jal` or
//! taken-branch edge.

use analysis::{EdgeKind, ProgramFacts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use riscv::gen::{GeneratorConfig, ProgramGenerator};

fn assert_direct_targets_resolve(facts: &ProgramFacts, context: &str) {
    for edge in facts.edges() {
        match edge.kind {
            EdgeKind::Jump | EdgeKind::BranchTaken => {
                assert!(
                    edge.to.is_some(),
                    "{context}: {:?} edge from {:#x} escapes to the unknown sink",
                    edge.kind,
                    edge.from_pc
                );
            }
            // Indirect targets and end-of-image fall-offs are the sink's
            // legitimate customers; trap exits always leave the image.
            EdgeKind::Indirect | EdgeKind::FallThrough | EdgeKind::TrapExit => {}
        }
    }
}

#[test]
fn generated_seeds_have_fully_resolved_direct_edges_in_both_modes() {
    for terminate in [true, false] {
        let generator = ProgramGenerator::new(GeneratorConfig {
            terminate_with_ecall: terminate,
            ..GeneratorConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..150 {
            let program = generator.generate_seed(&mut rng);
            let facts = ProgramFacts::analyze(&program.text_bytes());
            assert_direct_targets_resolve(
                &facts,
                &format!("terminate={terminate} round={round}"),
            );
        }
    }
}

#[test]
fn generated_seeds_have_no_statically_illegal_slots() {
    // The generator emits only encodable instructions; analysis agrees.
    let generator = ProgramGenerator::default();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let program = generator.generate_seed(&mut rng);
        let facts = ProgramFacts::analyze(&program.text_bytes());
        assert!(facts.statically_illegal().is_empty());
    }
}
