//! The campaign session type: spec in, outcome out.
//!
//! [`Campaign`] is the single execution entry point behind every fuzzing
//! run in the workspace. It is built from a declarative
//! [`CampaignSpec`] — either self-contained
//! ([`Campaign::from_spec`]) or against a caller-supplied processor
//! ([`Campaign::from_spec_on`]) — optionally decorated with streaming
//! [`CampaignObserver`]s, and consumed by [`execute`](Campaign::execute).
//! The legacy `MabFuzzer::run` / `run_sharded` constructors are thin
//! compatibility wrappers over this type, and the experiment grid drives it
//! through specs for every cell.
//!
//! Both scheduling worlds run through here, and both speak the full
//! [`CampaignObserver`] event protocol:
//!
//! * [`PolicySpec::Baseline`](crate::spec::PolicySpec) executes the
//!   TheHuzz-style FIFO baseline (no bandit, no arms — the outcome's arm
//!   summary is empty) through the instrumented per-test fold of
//!   `TheHuzzFuzzer::run_with`: observers stream [`TestFolded`],
//!   [`DetectionObserved`] and [`CoverageMilestone`] per executed test
//!   (under the baseline conventions documented in
//!   [`observer`](crate::observer)) and the final [`CampaignFinished`];
//! * [`PolicySpec::Bandit`](crate::spec::PolicySpec) executes the MABFuzz
//!   loop of Fig. 2, serial or sharded per the spec's plan, with the
//!   determinism contract of `fuzzer::shard` intact: attaching observers or
//!   changing the shard count never changes a single byte of the report —
//!   nor of the event stream, which always fires in `test_index` fold
//!   order.

use std::sync::Arc;

use coverage::CoverageMap;
use fuzzer::shard::derive_stream_seed;
use fuzzer::{
    CampaignStats, DiffReport, ExecScratch, FuzzHarness, MutationEngine, SeedGenerator, ShardPlan,
    ShardPool, TestCase, TheHuzzFuzzer,
};
use mab::Bandit;
use proc_sim::Processor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use riscv::Program;

use crate::arm::Arm;
use crate::cancel::CancelToken;
use crate::config::MabFuzzConfig;
use crate::monitor::SaturationMonitor;
use crate::observer::{
    ArmReset, ArmSelected, BatchFolded, CampaignFinished, CampaignObserver, CoverageMilestone,
    DecileTracker, DetectionObserved, TestFolded,
};
use crate::orchestrator::{ArmSummary, MabFuzzOutcome};
use crate::reward::RewardParams;
use crate::spec::{CampaignSpec, PolicySpec, SpecError};

/// The assembled state of one MABFuzz campaign, ready to run.
///
/// This is what `MabFuzzer` has always carried; it now lives behind the
/// [`Campaign`] session type so the spec path and the legacy constructors
/// share one execution loop.
pub(crate) struct MabSession {
    pub(crate) harness: FuzzHarness,
    pub(crate) config: MabFuzzConfig,
    pub(crate) bandit: Box<dyn Bandit>,
    pub(crate) rng: StdRng,
    pub(crate) seed: u64,
    pub(crate) seeds: SeedGenerator,
    pub(crate) mutator: MutationEngine,
}

impl MabSession {
    pub(crate) fn new(
        processor: Arc<dyn Processor>,
        config: MabFuzzConfig,
        bandit: Box<dyn Bandit>,
        rng_seed: u64,
    ) -> MabSession {
        let harness = FuzzHarness::new(processor, config.campaign.max_steps_per_test);
        let seeds = SeedGenerator::new(config.campaign.generator.clone());
        let mutator = MutationEngine::new(config.campaign.generator.clone());
        MabSession {
            harness,
            config,
            bandit,
            rng: StdRng::seed_from_u64(rng_seed),
            seed: rng_seed,
            seeds,
            mutator,
        }
    }
}

enum CampaignKind {
    Baseline(TheHuzzFuzzer),
    Mab { session: MabSession, plan: ShardPlan },
}

/// One fuzzing campaign, assembled and ready to
/// [`execute`](Campaign::execute).
///
/// # Example
///
/// A custom policy registered at runtime drives a full campaign through a
/// spec, with no edit to any core type:
///
/// ```
/// use mab::{register_policy, BanditKind, EpsilonGreedy, PolicyParams};
/// use mabfuzz::{BugSpec, Campaign, CampaignSpec};
/// use proc_sim::ProcessorKind;
///
/// // A "custom" policy (here simply uniform-random exploration).
/// register_policy("doc-uniform", |params: &PolicyParams| {
///     Box::new(EpsilonGreedy::new(params.arms, 1.0))
/// })
/// .expect("fresh name");
///
/// let spec = CampaignSpec::builder()
///     .policy_named("doc-uniform")
///     .arms(4)
///     .max_tests(16)
///     .processor(ProcessorKind::Rocket, BugSpec::None)
///     .rng_seed(3)
///     .build()
///     .unwrap();
/// let outcome = Campaign::from_spec(&spec).unwrap().execute();
/// assert_eq!(outcome.stats.tests_executed(), 16);
/// assert!(outcome.stats.label().contains("doc-uniform"));
/// ```
pub struct Campaign {
    kind: CampaignKind,
    observers: Vec<Box<dyn CampaignObserver>>,
    cancel: Option<CancelToken>,
}

impl Campaign {
    /// Assembles a self-contained campaign: the spec names the processor.
    ///
    /// # Errors
    ///
    /// [`SpecError::MissingProcessor`] when the spec has no processor
    /// section, or any validation error of the spec.
    pub fn from_spec(spec: &CampaignSpec) -> Result<Campaign, SpecError> {
        spec.validate()?;
        let processor = spec.processor.ok_or(SpecError::MissingProcessor)?;
        Campaign::assemble(Arc::from(processor.build()), spec)
    }

    /// Assembles a campaign from a spec against a caller-supplied processor
    /// (the experiment grid's path — cells build their processors once and
    /// reuse the spec).
    ///
    /// # Errors
    ///
    /// Any validation error of the spec.
    pub fn from_spec_on(
        processor: Arc<dyn Processor>,
        spec: &CampaignSpec,
    ) -> Result<Campaign, SpecError> {
        spec.validate()?;
        Campaign::assemble(processor, spec)
    }

    /// Assembles a campaign from an already-validated spec (both `from_spec`
    /// entry points funnel through here, so validation runs exactly once per
    /// construction and error ordering cannot drift between them).
    fn assemble(processor: Arc<dyn Processor>, spec: &CampaignSpec) -> Result<Campaign, SpecError> {
        let kind = match spec.policy {
            PolicySpec::Baseline => {
                let mut fuzzer = TheHuzzFuzzer::new(processor, spec.campaign.clone(), spec.rng_seed);
                fuzzer.set_coverage_signal(spec.coverage_signal);
                CampaignKind::Baseline(fuzzer)
            }
            PolicySpec::Bandit(kind) => {
                let bandit = kind.build_with(&spec.policy_params(kind));
                if bandit.arms() != spec.arms() {
                    return Err(SpecError::ArmCountMismatch {
                        bandit: bandit.arms(),
                        spec: spec.arms(),
                    });
                }
                let mut session =
                    MabSession::new(processor, spec.to_mab_config(), bandit, spec.rng_seed);
                // Shard workers clone this harness, so the signal propagates
                // to every worker and `coverage_space_len` sizes the stats
                // and arms for the selected space automatically.
                session.harness.set_coverage_signal(spec.coverage_signal);
                CampaignKind::Mab { session, plan: spec.plan() }
            }
        };
        Ok(Campaign { kind, observers: Vec::new(), cancel: None })
    }

    /// Assembles a MABFuzz campaign from already-built parts (the legacy
    /// `MabFuzzer` wrappers route through here).
    pub(crate) fn from_session(session: MabSession, plan: ShardPlan) -> Campaign {
        Campaign { kind: CampaignKind::Mab { session, plan }, observers: Vec::new(), cancel: None }
    }

    /// Attaches a streaming observer (builder style). Observers receive the
    /// campaign's event stream in deterministic fold order and cannot affect
    /// the outcome.
    pub fn with_observer(mut self, observer: Box<dyn CampaignObserver>) -> Campaign {
        self.observers.push(observer);
        self
    }

    /// Attaches a streaming observer in place.
    pub fn attach_observer(&mut self, observer: Box<dyn CampaignObserver>) {
        self.observers.push(observer);
    }

    /// Attaches a cooperative cancellation token (builder style). Any clone
    /// of the token may request cancellation from any thread; the campaign
    /// stops at the next deterministic fold boundary — between bandit rounds
    /// for MABFuzz campaigns, between FIFO tests for the baseline. An
    /// interrupted campaign finalises its statistics over the tests it
    /// folded and does **not** emit [`CampaignFinished`], so its event
    /// stream is a strict prefix of the uncancelled run's stream; check
    /// [`CancelToken::was_interrupted`] after [`execute`](Campaign::execute)
    /// to learn whether the run was cut short.
    pub fn with_cancellation(mut self, token: CancelToken) -> Campaign {
        self.cancel = Some(token);
        self
    }

    /// Returns the campaign's report label (`"TheHuzz on rocket"`,
    /// `"MABFuzz: UCB on cva6"`, …).
    pub fn label(&self) -> String {
        match &self.kind {
            CampaignKind::Baseline(fuzzer) => format!("TheHuzz on {}", fuzzer.processor_name()),
            CampaignKind::Mab { session, .. } => {
                format!("{} on {}", session.config.label(), session.harness.processor().name())
            }
        }
    }

    /// Returns the size of the processor's coverage space — what the
    /// campaign's [`CoverageMilestone`] deciles and coverage percentages
    /// (e.g. a [`ProgressMonitor`](crate::ProgressMonitor)) are measured
    /// against.
    pub fn coverage_space_len(&self) -> usize {
        match &self.kind {
            CampaignKind::Baseline(fuzzer) => fuzzer.coverage_space_len(),
            CampaignKind::Mab { session, .. } => session.harness.coverage_space_len(),
        }
    }

    /// Runs the campaign to completion.
    ///
    /// Baseline campaigns return an outcome with an empty arm summary (there
    /// are no bandit arms to report); MABFuzz campaigns produce the full
    /// per-arm report. Both stream the complete event protocol to attached
    /// observers (see the baseline vocabulary in
    /// [`observer`](crate::observer)). Reports — and event streams — are
    /// byte-identical for every shard count of the plan at a fixed batch
    /// size, and independent of attached observers.
    pub fn execute(mut self) -> MabFuzzOutcome {
        match self.kind {
            CampaignKind::Baseline(fuzzer) => {
                execute_baseline(fuzzer, &mut self.observers, self.cancel.as_ref())
            }
            CampaignKind::Mab { session, plan } => {
                execute_mab(session, &plan, self.observers, self.cancel.as_ref())
            }
        }
    }
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("label", &self.label())
            .field("observers", &self.observers.len())
            .finish()
    }
}

/// The baseline (TheHuzz) campaign path: the FIFO loop of
/// `fuzzer::thehuzz`, instrumented with the shared per-test event protocol.
///
/// Observer-less campaigns (the whole experiment grid, the golden runs, the
/// benches) take the sink-less `run()` and pay nothing for the seam;
/// observed campaigns stream [`TestFolded`], [`DetectionObserved`] and
/// [`CoverageMilestone`] per executed test in FIFO order — draw-for-draw the
/// same campaign, since the sink cannot perturb the loop.
fn execute_baseline(
    fuzzer: TheHuzzFuzzer,
    observers: &mut [Box<dyn CampaignObserver>],
    cancel: Option<&CancelToken>,
) -> MabFuzzOutcome {
    // The stop probe marks the token the moment the FIFO loop observes it,
    // so `was_interrupted` reflects an actual early cut, not merely a
    // request that arrived after the budget was already exhausted.
    let should_stop = || {
        cancel.is_some_and(|token| {
            let cancelled = token.is_cancelled();
            if cancelled {
                token.mark_interrupted();
            }
            cancelled
        })
    };
    let stats = if observers.is_empty() && cancel.is_none() {
        fuzzer.run()
    } else {
        let space_len = fuzzer.coverage_space_len();
        let mut deciles = DecileTracker::new(space_len);
        fuzzer.run_with_stop(should_stop, |record| {
            let event = TestFolded {
                test_number: record.test_number,
                test_id: record.test_id,
                // Baseline conventions (see the observer module docs): no
                // arms (0), one global pool (local == global novelty), no
                // bandit to reward (0.0).
                arm: 0,
                local_new: record.new_points,
                global_new: record.new_points,
                covered: record.covered,
                reward: 0.0,
                detected: record.detected,
                coverage: record.coverage,
                diff: record.diff,
            };
            for observer in observers.iter_mut() {
                observer.test_folded(&event);
            }
            if record.detected {
                let event = DetectionObserved {
                    test_number: record.test_number,
                    test_id: record.test_id,
                    arm: 0,
                    diff: record.diff,
                };
                for observer in observers.iter_mut() {
                    observer.detection(&event);
                }
            }
            for decile in deciles.crossed(record.covered) {
                let event = CoverageMilestone {
                    decile,
                    covered: record.covered,
                    space_len,
                    test_number: record.test_number,
                };
                for observer in observers.iter_mut() {
                    observer.coverage_milestone(&event);
                }
            }
        })
    };
    // An interrupted campaign's stream stays a strict prefix of the full
    // run's stream: the finished event is withheld (see `cancel`).
    if !cancel.is_some_and(CancelToken::was_interrupted) {
        let finished = CampaignFinished {
            tests_executed: stats.tests_executed(),
            final_coverage: stats.final_coverage(),
            total_resets: 0,
        };
        for observer in observers.iter_mut() {
            observer.campaign_finished(&finished);
        }
    }
    MabFuzzOutcome { stats, arms: Vec::new(), total_resets: 0 }
}

/// The MABFuzz campaign loop (Fig. 2 of the paper, batched): select an arm,
/// assemble the round's batch, simulate it (in place or across the shard
/// pool), fold the outcomes in `test_index` order.
fn execute_mab(
    session: MabSession,
    plan: &ShardPlan,
    observers: Vec<Box<dyn CampaignObserver>>,
    cancel: Option<&CancelToken>,
) -> MabFuzzOutcome {
    let label = format!("{} on {}", session.config.label(), session.harness.processor().name());
    let space_len = session.harness.coverage_space_len();
    let max_tests = session.config.campaign.max_tests;
    let campaign_seed = session.seed;
    // Per-test derived RNG streams are a batched-mode feature; the
    // batch-size-1 plan keeps every draw on the main RNG so `run()`
    // reproduces the pre-sharding serial campaigns byte for byte.
    let legacy_stream = plan.batch_size() == 1;
    let pool = (plan.shards() > 1).then(|| ShardPool::new(&session.harness, plan.shards()));
    let mut scratch = ExecScratch::new();

    let mut fold = CampaignFold {
        stats: CampaignStats::new(label, space_len, session.config.campaign.sample_interval),
        arms: Vec::new(),
        monitor: SaturationMonitor::new(session.config.arms(), session.config.gamma),
        bandit: session.bandit,
        rng: session.rng,
        seeds: session.seeds,
        mutator: session.mutator,
        reward_params: RewardParams::new(session.config.alpha),
        space_len,
        mutations_per_interesting_test: session.config.campaign.mutations_per_interesting_test,
        stop_on_first_detection: session.config.campaign.stop_on_first_detection,
        total_resets: 0,
        pending_rewards: Vec::with_capacity(plan.batch_size()),
        arm_index: 0,
        round: 0,
        round_tests: 0,
        deciles: DecileTracker::new(space_len),
        observers,
    };
    // One seed per arm (Fig. 2: "Given a seed pool with each seed
    // corresponding to an arm").
    fold.arms = (0..session.config.arms())
        .map(|index| Arm::new(index, fold.seeds.generate_seed(&mut fold.rng), space_len))
        .collect();

    let mut round: u64 = 0;
    while fold.stats.tests_executed() < max_tests {
        // Cooperative cancellation cuts the campaign at a round (fold)
        // boundary: every round that started folds completely, so the event
        // stream so far is a strict prefix of the uncancelled stream.
        if let Some(token) = cancel {
            if token.is_cancelled() {
                token.mark_interrupted();
                break;
            }
        }
        let remaining =
            usize::try_from(max_tests - fold.stats.tests_executed()).unwrap_or(usize::MAX);
        let batch_len = plan.batch_size().min(remaining);

        // 1. Select the round's arm.
        fold.begin_round(round, batch_len);

        // Derived per-test streams for this round (batched mode only).
        let mut lanes: Vec<StdRng> = if legacy_stream {
            Vec::new()
        } else {
            (0..batch_len)
                .map(|index| {
                    StdRng::seed_from_u64(derive_stream_seed(campaign_seed, round, index as u64))
                })
                .collect()
        };

        // 2. Assemble the batch before the fork: pool pops and refills
        //    happen serially, so batch contents are shard-independent.
        let batch = fold.assemble_batch(batch_len, &mut lanes);

        // 3. Simulate — fork/join across the shard pool, or in place on
        //    the campaign thread — and 4. fold in test order.
        let stopped = match &pool {
            Some(pool) => {
                let programs: Arc<Vec<Program>> =
                    Arc::new(batch.iter().map(|test| test.program.clone()).collect());
                let outcomes = pool.simulate(&programs);
                let mut stopped = false;
                for (slot, (test, outcome)) in batch.iter().zip(&outcomes).enumerate() {
                    if fold.fold_test(test, &outcome.coverage, &outcome.diff, lanes.get_mut(slot)) {
                        stopped = true;
                        break;
                    }
                }
                // Hand the batch's outcome buffers back to the workers so
                // the next round reuses their allocations (coverage bitmap,
                // diff vector) instead of cloning afresh per test.
                pool.recycle(outcomes);
                stopped
            }
            None => {
                let mut stopped = false;
                for (slot, test) in batch.iter().enumerate() {
                    let view = session.harness.run_program_into(&test.program, &mut scratch);
                    if fold.fold_test(test, view.coverage, view.diff, lanes.get_mut(slot)) {
                        stopped = true;
                        break;
                    }
                }
                stopped
            }
        };
        fold.flush_rewards();
        fold.finish_round();
        if stopped {
            break;
        }
        round += 1;
    }

    fold.stats.finish();
    let arm_summaries = fold
        .arms
        .iter()
        .map(|arm| ArmSummary {
            index: arm.index(),
            pulls: arm.total_pulls(),
            resets: arm.resets(),
            final_local_coverage: arm.local_coverage().count(),
        })
        .collect();
    // An interrupted campaign's stream stays a strict prefix of the full
    // run's stream: the finished event is withheld (see `cancel`).
    if !cancel.is_some_and(CancelToken::was_interrupted) {
        let finished = CampaignFinished {
            tests_executed: fold.stats.tests_executed(),
            final_coverage: fold.stats.final_coverage(),
            total_resets: fold.total_resets,
        };
        for observer in &mut fold.observers {
            observer.campaign_finished(&finished);
        }
    }
    MabFuzzOutcome { stats: fold.stats, arms: arm_summaries, total_resets: fold.total_resets }
}

/// The serial half of a campaign round: everything the ordered reduction
/// mutates, gathered so the fold runs identically whether outcomes arrive
/// from the campaign thread (1 shard) or from the shard pool.
///
/// The fold *is* the built-in observer: its direct `stats` bookkeeping
/// performs exactly what `impl CampaignObserver for CampaignStats` performs,
/// and every attached observer receives the corresponding event right after
/// the reduction step it describes.
struct CampaignFold {
    stats: CampaignStats,
    arms: Vec<Arm>,
    monitor: SaturationMonitor,
    bandit: Box<dyn Bandit>,
    rng: StdRng,
    seeds: SeedGenerator,
    mutator: MutationEngine,
    reward_params: RewardParams,
    space_len: usize,
    mutations_per_interesting_test: usize,
    stop_on_first_detection: bool,
    total_resets: u64,
    pending_rewards: Vec<f64>,
    arm_index: usize,
    round: u64,
    round_tests: usize,
    deciles: DecileTracker,
    observers: Vec<Box<dyn CampaignObserver>>,
}

impl CampaignFold {
    /// Starts a round: the bandit picks the arm the whole batch pulls.
    fn begin_round(&mut self, round: u64, batch_len: usize) {
        self.arm_index = self.bandit.select(&mut self.rng);
        self.round = round;
        self.round_tests = 0;
        if !self.observers.is_empty() {
            let event = ArmSelected { round, arm: self.arm_index, batch_len };
            for observer in &mut self.observers {
                observer.arm_selected(&event);
            }
        }
    }

    /// Ends a round after its rewards were flushed.
    fn finish_round(&mut self) {
        if !self.observers.is_empty() {
            let event =
                BatchFolded { round: self.round, arm: self.arm_index, tests: self.round_tests };
            for observer in &mut self.observers {
                observer.batch_folded(&event);
            }
        }
    }

    /// Pops the round's batch from the selected arm's pool, refilling an
    /// empty pool by mutating the arm's seed. Refill randomness comes from
    /// the slot's derived lane when one exists (batched rounds) and from
    /// the main RNG otherwise (the legacy batch-size-1 stream).
    fn assemble_batch(&mut self, batch_len: usize, lanes: &mut [StdRng]) -> Vec<TestCase> {
        let mut batch = Vec::with_capacity(batch_len);
        for slot in 0..batch_len {
            let arm = &mut self.arms[self.arm_index];
            let test = match arm.next_test() {
                Some(test) => test,
                None => {
                    let rng = match lanes.get_mut(slot) {
                        Some(lane) => lane,
                        None => &mut self.rng,
                    };
                    let (mutant, _) = self.mutator.mutate(&arm.seed().program, rng);
                    let child = self.seeds.adopt_child(&arm.seed().clone(), mutant);
                    arm.pool_mut().push(child);
                    arm.next_test().expect("pool was just refilled")
                }
            };
            batch.push(test);
        }
        batch
    }

    /// Folds one simulated test into the campaign state, in `test_index`
    /// order. Returns `true` when the campaign must stop (detection mode
    /// hit a mismatch); the remaining outcomes of the round are then
    /// discarded unrecorded, exactly like the tests a serial campaign would
    /// never have simulated.
    fn fold_test(
        &mut self,
        test: &TestCase,
        coverage: &CoverageMap,
        diff: &DiffReport,
        lane: Option<&mut StdRng>,
    ) -> bool {
        // Global novelty first (cov_G), then the arm-local novelty
        // (cov_L ⊇ cov_G). Only the counts are needed for the reward, so no
        // id vectors are materialised.
        let detected = !diff.is_clean();
        let global_new = self.stats.record_test_count(test.id, coverage, diff);
        let local_new = self.arms[self.arm_index].absorb_coverage(coverage);
        self.round_tests += 1;

        if self.stop_on_first_detection && detected {
            self.emit_test_events(test, coverage, diff, local_new, global_new, 0.0, detected);
            return true;
        }

        // Mutate interesting tests into the arm's pool.
        if local_new > 0 {
            let mutation_count = self.mutations_per_interesting_test;
            let CampaignFold { rng, seeds, mutator, arms, arm_index, .. } = self;
            let rng = match lane {
                Some(lane) => lane,
                None => rng,
            };
            for _ in 0..mutation_count {
                let (mutant, _) = mutator.mutate(&test.program, rng);
                let child = seeds.adopt_child(test, mutant);
                arms[*arm_index].pool_mut().push(child);
            }
        }

        // Queue the reward; the round flush (or a reset) folds the pending
        // rewards into the bandit in order via `update_batch`.
        let reward = self.reward_params.policy_reward(
            self.bandit.kind(),
            local_new,
            global_new,
            self.space_len,
        );
        self.pending_rewards.push(reward);
        self.emit_test_events(test, coverage, diff, local_new, global_new, reward, detected);

        // Reset saturated arms. Pending rewards are flushed first so the
        // bandit observes update-then-reset in the same order as a serial
        // campaign.
        if self.monitor.record(self.arm_index, local_new) {
            self.flush_rewards();
            let fresh = self.seeds.generate_seed(&mut self.rng);
            self.arms[self.arm_index].reset(fresh);
            self.bandit.reset_arm(self.arm_index);
            self.monitor.reset_arm(self.arm_index);
            self.total_resets += 1;
            if !self.observers.is_empty() {
                let event = ArmReset {
                    arm: self.arm_index,
                    test_number: self.stats.tests_executed(),
                    total_resets: self.total_resets,
                };
                for observer in &mut self.observers {
                    observer.arm_reset(&event);
                }
            }
        }
        false
    }

    /// Streams the per-test events (test folded, detection, coverage
    /// milestone) to the attached observers.
    #[allow(clippy::too_many_arguments)]
    fn emit_test_events(
        &mut self,
        test: &TestCase,
        coverage: &CoverageMap,
        diff: &DiffReport,
        local_new: usize,
        global_new: usize,
        reward: f64,
        detected: bool,
    ) {
        // Observer-less campaigns (the whole experiment grid, the golden
        // runs, the benches) skip all event bookkeeping: observers can only
        // attach before `execute()` consumes the campaign, so nothing can
        // ever observe state tracked while this list is empty.
        if self.observers.is_empty() {
            return;
        }
        let covered = self.stats.final_coverage();
        let crossed = self.deciles.crossed(covered);
        let test_number = self.stats.tests_executed();
        let event = TestFolded {
            test_number,
            test_id: test.id,
            arm: self.arm_index,
            local_new,
            global_new,
            covered,
            reward,
            detected,
            coverage,
            diff,
        };
        for observer in &mut self.observers {
            observer.test_folded(&event);
        }
        if detected {
            let event = DetectionObserved {
                test_number,
                test_id: test.id,
                arm: self.arm_index,
                diff,
            };
            for observer in &mut self.observers {
                observer.detection(&event);
            }
        }
        for decile in crossed {
            let event = CoverageMilestone {
                decile,
                covered,
                space_len: self.space_len,
                test_number,
            };
            for observer in &mut self.observers {
                observer.coverage_milestone(&event);
            }
        }
    }

    /// Folds the queued rewards of the current round into the bandit, in
    /// `test_index` order.
    fn flush_rewards(&mut self) {
        if !self.pending_rewards.is_empty() {
            self.bandit.update_batch(self.arm_index, &self.pending_rewards);
            self.pending_rewards.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    use mab::BanditKind;
    use proc_sim::cores::{Cva6Core, RocketCore};
    use proc_sim::{BugSet, Processor, ProcessorKind, Vulnerability};

    use crate::spec::BugSpec;

    fn quick_spec(kind: BanditKind, max_tests: u64) -> CampaignSpec {
        CampaignSpec::builder()
            .algorithm(kind)
            .arms(4)
            .max_tests(max_tests)
            .max_steps_per_test(200)
            .mutations_per_interesting_test(2)
            .sample_interval(5)
            .rng_seed(3)
            .build()
            .expect("valid spec")
    }

    #[test]
    fn spec_execution_matches_the_legacy_wrapper_byte_for_byte() {
        use crate::orchestrator::MabFuzzer;
        for kind in BanditKind::ALL {
            let spec = quick_spec(kind, 25);
            let via_spec = Campaign::from_spec_on(
                Arc::new(RocketCore::new(BugSet::none())),
                &spec,
            )
            .unwrap()
            .execute();
            let via_wrapper = MabFuzzer::new(
                Arc::new(RocketCore::new(BugSet::none())),
                spec.to_mab_config(),
                spec.rng_seed,
            )
            .run();
            assert_eq!(via_spec, via_wrapper, "{kind}");
        }
    }

    #[test]
    fn self_contained_specs_build_their_processor() {
        let spec = CampaignSpec::builder()
            .arms(4)
            .max_tests(10)
            .processor(ProcessorKind::Rocket, BugSpec::None)
            .build()
            .unwrap();
        let outcome = Campaign::from_spec(&spec).unwrap().execute();
        assert_eq!(outcome.stats.tests_executed(), 10);
        assert!(outcome.stats.label().contains("rocket"));
    }

    #[test]
    fn specs_without_a_processor_require_from_spec_on() {
        let spec = CampaignSpec::builder().build().unwrap();
        assert_eq!(
            Campaign::from_spec(&spec).err(),
            Some(SpecError::MissingProcessor),
            "self-contained execution needs a processor section"
        );
    }

    #[test]
    fn baseline_specs_run_thehuzz() {
        let spec = CampaignSpec::builder()
            .baseline()
            .max_tests(15)
            .processor(ProcessorKind::Rocket, BugSpec::None)
            .rng_seed(1)
            .build()
            .unwrap();
        let campaign = Campaign::from_spec(&spec).unwrap();
        assert!(campaign.label().starts_with("TheHuzz on rocket"), "{}", campaign.label());
        let outcome = campaign.execute();
        assert_eq!(outcome.stats.tests_executed(), 15);
        assert!(outcome.arms.is_empty(), "the baseline has no bandit arms");
        assert_eq!(outcome.total_resets, 0);
        assert!(outcome.stats.label().contains("TheHuzz"));
    }

    #[test]
    fn baseline_campaigns_stream_the_per_test_event_protocol() {
        let spec = CampaignSpec::builder()
            .baseline()
            .max_tests(30)
            .max_steps_per_test(200)
            .sample_interval(5)
            .rng_seed(1)
            .build()
            .unwrap();
        let plain = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .execute();

        let log = Arc::new(Mutex::new(Vec::new()));
        let observed = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .with_observer(Box::new(Recorder { log: Arc::clone(&log) }))
            .execute();
        assert_eq!(plain, observed, "observers must never change the baseline campaign");

        let log = log.lock().unwrap();
        let tests = log.iter().filter(|l| l.starts_with("test:")).count();
        assert_eq!(tests, 30, "one TestFolded per executed FIFO test");
        assert!(
            !log.iter().any(|l| l.starts_with("select:") || l.starts_with("batch:")),
            "the baseline has no bandit rounds: {log:?}"
        );
        assert!(
            log.iter().any(|l| l.starts_with("decile:")),
            "baseline coverage crosses deciles too"
        );
        assert_eq!(log.last().unwrap(), &format!("finish:{}", observed.stats.tests_executed()));
    }

    #[test]
    fn routed_baseline_matches_the_legacy_wrapper_in_detection_mode() {
        // Satellite check: TheHuzz breaks out of the loop after recording the
        // detecting test but before enqueuing mutants; the Campaign-routed
        // path must reproduce that ordering draw-for-draw.
        let spec = CampaignSpec::builder()
            .baseline()
            .max_tests(400)
            .max_steps_per_test(200)
            .mutations_per_interesting_test(2)
            .arms(4)
            .sample_interval(5)
            .stop_on_first_detection(true)
            .rng_seed(3)
            .build()
            .unwrap();
        let cva6 = || Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let legacy = fuzzer::TheHuzzFuzzer::new(cva6(), spec.campaign.clone(), spec.rng_seed).run();

        let log = Arc::new(Mutex::new(Vec::new()));
        let routed = Campaign::from_spec_on(cva6(), &spec)
            .unwrap()
            .with_observer(Box::new(Recorder { log: Arc::clone(&log) }))
            .execute();

        assert_eq!(legacy, routed.stats, "routed baseline diverged from the legacy wrapper");
        let detection = legacy.first_detection().expect("V5 is easy to trigger");
        assert_eq!(legacy.tests_executed(), detection, "the campaign stops on the detecting test");
        assert_eq!(routed.stats.tests_executed(), detection);
        let log = log.lock().unwrap();
        assert!(
            log.contains(&format!("detect:{detection}")),
            "the stopping detection streams as an event: {log:?}"
        );
        assert_eq!(
            log.iter().filter(|l| l.starts_with("test:")).count() as u64,
            detection,
            "the detecting test is the last TestFolded"
        );
    }

    /// Records every event category, to pin dispatch order and content.
    #[derive(Default)]
    struct Recorder {
        log: Arc<Mutex<Vec<String>>>,
    }

    impl CampaignObserver for Recorder {
        fn arm_selected(&mut self, event: &ArmSelected) {
            self.log.lock().unwrap().push(format!("select:{}:{}", event.round, event.arm));
        }
        fn test_folded(&mut self, event: &TestFolded<'_>) {
            self.log.lock().unwrap().push(format!("test:{}", event.test_number));
        }
        fn batch_folded(&mut self, event: &BatchFolded) {
            self.log.lock().unwrap().push(format!("batch:{}:{}", event.round, event.tests));
        }
        fn detection(&mut self, event: &DetectionObserved<'_>) {
            self.log.lock().unwrap().push(format!("detect:{}", event.test_number));
        }
        fn arm_reset(&mut self, event: &ArmReset) {
            self.log.lock().unwrap().push(format!("reset:{}", event.arm));
        }
        fn coverage_milestone(&mut self, event: &CoverageMilestone) {
            self.log.lock().unwrap().push(format!("decile:{}", event.decile));
        }
        fn campaign_finished(&mut self, event: &CampaignFinished) {
            self.log.lock().unwrap().push(format!("finish:{}", event.tests_executed));
        }
    }

    #[test]
    fn observers_stream_the_campaign_without_changing_it() {
        let spec = quick_spec(BanditKind::Ucb1, 30);
        let plain = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .execute();

        let log = Arc::new(Mutex::new(Vec::new()));
        let shadow_stats = CampaignStats::new(
            plain.stats.label().to_owned(),
            RocketCore::new(BugSet::none()).coverage_space().len(),
            spec.campaign.sample_interval,
        );
        let shadow = Arc::new(Mutex::new(Some(shadow_stats)));

        /// Routes events into a shared `CampaignStats` — the "shadow stats"
        /// monitoring pattern from the module docs.
        struct Shadow(Arc<Mutex<Option<CampaignStats>>>);
        impl CampaignObserver for Shadow {
            fn test_folded(&mut self, event: &TestFolded<'_>) {
                self.0.lock().unwrap().as_mut().unwrap().test_folded(event);
            }
            fn campaign_finished(&mut self, event: &CampaignFinished) {
                self.0.lock().unwrap().as_mut().unwrap().campaign_finished(event);
            }
        }

        let observed = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .with_observer(Box::new(Recorder { log: Arc::clone(&log) }))
            .with_observer(Box::new(Shadow(Arc::clone(&shadow))))
            .execute();

        assert_eq!(plain, observed, "observers must never change the campaign");

        let log = log.lock().unwrap();
        let selects = log.iter().filter(|l| l.starts_with("select:")).count();
        let tests = log.iter().filter(|l| l.starts_with("test:")).count();
        let batches = log.iter().filter(|l| l.starts_with("batch:")).count();
        assert_eq!(tests, 30, "one test event per executed test");
        assert_eq!(selects, 30, "batch size 1: one selection per test");
        assert_eq!(batches, selects, "every round closes with a batch event");
        assert!(log.iter().any(|l| l.starts_with("decile:")), "coverage crosses deciles");
        assert_eq!(log.last().unwrap(), &format!("finish:{}", observed.stats.tests_executed()));

        // The shadow stats replayed from events match the built-in collection.
        let shadow = shadow.lock().unwrap().take().unwrap();
        assert_eq!(shadow, observed.stats, "CampaignStats-as-observer replays the campaign");
    }

    #[test]
    fn detection_events_fire_in_detection_mode() {
        let spec = CampaignSpec::builder()
            .algorithm(BanditKind::Ucb1)
            .arms(4)
            .max_tests(400)
            .max_steps_per_test(200)
            .mutations_per_interesting_test(2)
            .sample_interval(5)
            .stop_on_first_detection(true)
            .rng_seed(2)
            .build()
            .unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let outcome = Campaign::from_spec_on(
            Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault))),
            &spec,
        )
        .unwrap()
        .with_observer(Box::new(Recorder { log: Arc::clone(&log) }))
        .execute();
        let detection = outcome.stats.first_detection().expect("V5 triggers quickly");
        let log = log.lock().unwrap();
        assert!(
            log.contains(&format!("detect:{detection}")),
            "the stopping detection streams as an event"
        );
    }

    #[test]
    fn cancellation_cuts_a_mab_campaign_to_a_stream_prefix() {
        let spec = quick_spec(BanditKind::Ucb1, 400);
        // The full reference stream of the uncancelled campaign.
        let full = {
            let buffer = crate::SharedBuffer::new();
            Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
                .unwrap()
                .with_observer(Box::new(crate::EventLog::new(buffer.clone())))
                .execute();
            buffer.contents()
        };
        // A token flipped by an observer mid-stream cuts at the next round.
        struct CancelAt {
            token: CancelToken,
            at: u64,
        }
        impl CampaignObserver for CancelAt {
            fn test_folded(&mut self, event: &TestFolded<'_>) {
                if event.test_number == self.at {
                    self.token.cancel();
                }
            }
        }
        let token = CancelToken::new();
        let buffer = crate::SharedBuffer::new();
        let outcome = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .with_observer(Box::new(CancelAt { token: token.clone(), at: 37 }))
            .with_observer(Box::new(crate::EventLog::new(buffer.clone())))
            .with_cancellation(token.clone())
            .execute();
        assert!(token.was_interrupted(), "the campaign observed the request");
        assert_eq!(outcome.stats.tests_executed(), 37, "batch size 1: cut right after the fold");
        let partial = buffer.contents();
        assert!(partial.len() < full.len(), "the cut stream is shorter");
        assert!(full.starts_with(&partial), "the cut stream is a strict prefix");
        assert!(
            !partial.contains("campaign_finished"),
            "an interrupted campaign withholds the finished event"
        );
    }

    #[test]
    fn cancellation_cuts_a_baseline_campaign_to_a_stream_prefix() {
        let spec = CampaignSpec::builder()
            .baseline()
            .max_tests(200)
            .max_steps_per_test(200)
            .sample_interval(5)
            .rng_seed(1)
            .build()
            .unwrap();
        let full = {
            let buffer = crate::SharedBuffer::new();
            Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
                .unwrap()
                .with_observer(Box::new(crate::EventLog::new(buffer.clone())))
                .execute();
            buffer.contents()
        };
        let token = CancelToken::new();
        struct CancelAt {
            token: CancelToken,
            at: u64,
        }
        impl CampaignObserver for CancelAt {
            fn test_folded(&mut self, event: &TestFolded<'_>) {
                if event.test_number == self.at {
                    self.token.cancel();
                }
            }
        }
        let buffer = crate::SharedBuffer::new();
        let outcome = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .with_observer(Box::new(CancelAt { token: token.clone(), at: 11 }))
            .with_observer(Box::new(crate::EventLog::new(buffer.clone())))
            .with_cancellation(token.clone())
            .execute();
        assert!(token.was_interrupted());
        assert_eq!(outcome.stats.tests_executed(), 11, "the FIFO loop stops at a test boundary");
        let partial = buffer.contents();
        assert!(full.starts_with(&partial) && partial.len() < full.len());
        assert!(!partial.contains("campaign_finished"));
    }

    #[test]
    fn late_cancellation_leaves_the_campaign_complete() {
        let spec = quick_spec(BanditKind::Exp3, 20);
        let plain = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .execute();
        let token = CancelToken::new();
        let buffer = crate::SharedBuffer::new();
        let observed = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .with_observer(Box::new(crate::EventLog::new(buffer.clone())))
            .with_cancellation(token.clone())
            .execute();
        // Never cancelled: the token is inert and the stream is complete.
        assert_eq!(plain, observed, "an unused token cannot perturb the campaign");
        assert!(!token.was_interrupted());
        assert!(buffer.contents().contains("campaign_finished"));
        // A request landing after execute() changes nothing retroactively.
        token.cancel();
        assert!(!token.was_interrupted());
    }

    #[test]
    fn sharded_spec_execution_is_shard_count_independent() {
        let spec = |shards: usize| {
            CampaignSpec::builder()
                .algorithm(BanditKind::Ucb1)
                .arms(4)
                .max_tests(42)
                .max_steps_per_test(200)
                .mutations_per_interesting_test(2)
                .sample_interval(5)
                .rng_seed(9)
                .shards(shards)
                .batch_size(5)
                .build()
                .unwrap()
        };
        let reference = Campaign::from_spec_on(
            Arc::new(RocketCore::new(BugSet::none())),
            &spec(1),
        )
        .unwrap()
        .execute();
        for shards in [2usize, 3] {
            let sharded = Campaign::from_spec_on(
                Arc::new(RocketCore::new(BugSet::none())),
                &spec(shards),
            )
            .unwrap()
            .execute();
            assert_eq!(reference, sharded, "{shards} shards diverged");
        }
    }

    #[test]
    fn edge_signal_campaigns_are_shard_count_independent() {
        use fuzzer::CoverageSignal;
        let spec = |shards: usize| {
            CampaignSpec::builder()
                .algorithm(BanditKind::Ucb1)
                .arms(4)
                .max_tests(42)
                .max_steps_per_test(200)
                .mutations_per_interesting_test(2)
                .sample_interval(5)
                .rng_seed(9)
                .shards(shards)
                .batch_size(5)
                .coverage_signal(CoverageSignal::Edge)
                .build()
                .unwrap()
        };
        let campaign =
            Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec(1)).unwrap();
        assert_eq!(
            campaign.coverage_space_len(),
            coverage::EdgeSpace::DEFAULT_LEN,
            "edge campaigns measure against the fixed edge space"
        );
        let reference = campaign.execute();
        assert!(reference.stats.final_coverage() > 0, "the edge signal observes coverage");
        for shards in [2usize, 4] {
            let sharded =
                Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec(shards))
                    .unwrap()
                    .execute();
            assert_eq!(reference, sharded, "{shards} shards diverged under the edge signal");
        }
    }
}
