//! Cooperative campaign cancellation.
//!
//! A [`CancelToken`] is a cloneable, thread-safe flag attached to a
//! [`Campaign`](crate::Campaign) before execution
//! ([`Campaign::with_cancellation`](crate::Campaign::with_cancellation)).
//! Any holder of a clone may call [`cancel`](CancelToken::cancel) from any
//! thread; the campaign polls the flag at its deterministic fold boundaries —
//! between bandit rounds for MABFuzz campaigns, between FIFO tests for the
//! baseline — and stops there, with its statistics finalised over exactly
//! the tests it folded.
//!
//! Determinism of the cut: because the campaign only ever stops at a fold
//! boundary, the event stream of a cancelled campaign is a **strict prefix**
//! of the stream the uncancelled campaign would have produced (see the
//! event-ordering contract in [`observer`](crate::observer)) — the final
//! [`CampaignFinished`](crate::observer::CampaignFinished) event is *not*
//! emitted for an interrupted run, so a consumer can distinguish a completed
//! stream (ends with `campaign_finished`) from a truncated one.
//!
//! [`was_interrupted`](CancelToken::was_interrupted) reports — after
//! `execute()` returned — whether the campaign actually stopped early: a
//! cancellation that lands after the last fold leaves the campaign (and its
//! event stream) fully complete, and the flag stays `false`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag for one running campaign.
///
/// # Example
///
/// ```
/// use mabfuzz::{Campaign, CampaignSpec, CancelToken};
/// use proc_sim::{cores::RocketCore, BugSet};
/// use std::sync::Arc;
///
/// let spec = CampaignSpec::builder().max_tests(500).build().unwrap();
/// let token = CancelToken::new();
/// token.cancel(); // cancelled before the first round: stops immediately
/// let outcome = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
///     .unwrap()
///     .with_cancellation(token.clone())
///     .execute();
/// assert!(token.was_interrupted());
/// assert_eq!(outcome.stats.tests_executed(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Flags>,
}

#[derive(Debug, Default)]
struct Flags {
    /// Set by `cancel()`: the campaign should stop at the next boundary.
    requested: AtomicBool,
    /// Set by the campaign when it actually stopped early.
    interrupted: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.inner.requested.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.requested.load(Ordering::Acquire)
    }

    /// Whether a campaign observed the request and stopped before running
    /// its full budget. Meaningful once `execute()` has returned: `false`
    /// means the campaign completed normally (the request, if any, landed
    /// too late to cut anything).
    pub fn was_interrupted(&self) -> bool {
        self.inner.interrupted.load(Ordering::Acquire)
    }

    /// Records that the campaign stopped early at a fold boundary.
    pub(crate) fn mark_interrupted(&self) {
        self.inner.interrupted.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_share_state_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(!token.was_interrupted(), "only a campaign marks interruption");
        token.mark_interrupted();
        assert!(clone.was_interrupted());
    }
}
