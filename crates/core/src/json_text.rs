//! The crate's shared JSON text conventions: string escaping and
//! finite-float-or-null rendering.
//!
//! Two golden-pinned artifact formats are built on these — the campaign-spec
//! codec (`spec::CampaignSpec::to_json`) and the JSONL event stream
//! (`event_log::EventLog`) — so there is exactly one definition of each
//! convention; a change here moves both formats together (and fails both
//! golden suites together).

use std::fmt::Write as _;

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn push_json_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float as JSON: shortest round-trip for finite values, `null`
/// otherwise.
pub(crate) fn push_json_float(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_specials() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_render_shortest_or_null() {
        let mut out = String::new();
        push_json_float(&mut out, 2.75);
        out.push(',');
        push_json_float(&mut out, 600.0);
        out.push(',');
        push_json_float(&mut out, f64::NAN);
        assert_eq!(out, "2.75,600,null");
    }
}
