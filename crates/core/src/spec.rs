//! Declarative campaign specifications.
//!
//! [`CampaignSpec`] is the single serializable description of **one
//! campaign**: which policy schedules seeds (the baseline or any
//! [`BanditKind`], including custom policies registered through
//! [`mab::register_policy`]), the reward/reset parameters (α, γ, ε, η), the
//! shared fuzzing-campaign configuration (budget, mutation counts, program
//! generator), the RNG seed and the shard plan. It subsumes what previously
//! lived across `MabFuzzConfig`, `CampaignConfig` and ad-hoc
//! (seed, plan) call arguments, and it is what the experiment grid, the
//! `experiments` binary (`experiments run --spec file.json`) and the
//! [`Campaign`](crate::Campaign) session type consume.
//!
//! Specs are built fluently and validated once, at [`build`]:
//!
//! ```
//! use mab::BanditKind;
//! use mabfuzz::CampaignSpec;
//!
//! let spec = CampaignSpec::builder()
//!     .algorithm(BanditKind::Exp3)
//!     .arms(4)
//!     .alpha(0.5)
//!     .max_tests(200)
//!     .rng_seed(7)
//!     .build()
//!     .unwrap();
//! assert_eq!(spec.label(), "MABFuzz: EXP3");
//! assert_eq!(spec.arms(), 4);
//!
//! // Round-trips through JSON.
//! let restored = CampaignSpec::from_json(&spec.to_json()).unwrap();
//! assert_eq!(restored, spec);
//! ```
//!
//! [`build`]: CampaignSpecBuilder::build
//!
//! The JSON codec is hand-rolled (like the deterministic report renderers in
//! `mabfuzz-bench`): the vendored `serde` shim provides only marker traits,
//! so the spec implements an explicit, stable schema with strict
//! unknown-field rejection — a typo'd field in a spec file fails loudly
//! instead of being silently ignored.

use std::fmt;

use fuzzer::{CampaignConfig, CoverageSignal, ShardPlan};
use mab::{BanditKind, PolicyParams};
use proc_sim::{BugSet, Processor, ProcessorKind, Vulnerability};
use riscv::gen::{ClassWeights, GeneratorConfig};
use serde::{Deserialize, Serialize};

use crate::config::MabFuzzConfig;
use crate::json_value as json;

/// Which scheduling policy drives the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// The TheHuzz-style baseline: static FIFO scheduling, no bandit.
    Baseline,
    /// MABFuzz with the given bandit policy (built-in or registered custom).
    Bandit(BanditKind),
}

impl PolicySpec {
    /// Parses a policy name: `thehuzz` / `baseline` / `fifo` select the
    /// baseline, anything else resolves through [`BanditKind::parse`]
    /// (case-insensitive, registered custom policies included).
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownPolicy`], listing every name this function
    /// accepts — the baseline spellings as well as every bandit policy.
    pub fn parse(text: &str) -> Result<PolicySpec, SpecError> {
        // The baseline spellings come from the registry's reserved-name
        // list, so this match and `register_policy`'s shadowing guard can
        // never drift apart.
        let key = text.trim().to_ascii_lowercase();
        if mab::BASELINE_SCHEDULER_NAMES.contains(&key.as_str()) {
            Ok(PolicySpec::Baseline)
        } else {
            BanditKind::parse(text).map(PolicySpec::Bandit).map_err(|error| {
                let mut valid = vec!["TheHuzz"];
                valid.extend(error.valid);
                SpecError::UnknownPolicy(format!(
                    "unknown policy `{}` (valid policies: {})",
                    error.name,
                    valid.join(", ")
                ))
            })
        }
    }

    /// Returns the policy's display name (the spelling
    /// [`parse`](PolicySpec::parse) accepts back).
    pub fn name(self) -> &'static str {
        match self {
            PolicySpec::Baseline => "TheHuzz",
            PolicySpec::Bandit(kind) => kind.name(),
        }
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which injected bugs a spec-built processor carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugSpec {
    /// No injected bugs (coverage experiments).
    None,
    /// The processor's paper-native bugs (V1–V6 on CVA6, V7 on Rocket).
    Native,
    /// Exactly one vulnerability (detection experiments).
    Only(Vulnerability),
}

impl BugSpec {
    /// Parses `none`, `native` or a vulnerability id (`V1`–`V7`).
    pub fn parse(text: &str) -> Result<BugSpec, SpecError> {
        match text.trim().to_ascii_lowercase().as_str() {
            "none" => Ok(BugSpec::None),
            "native" => Ok(BugSpec::Native),
            other => Vulnerability::parse(other)
                .map(BugSpec::Only)
                .ok_or_else(|| SpecError::UnknownBugs(text.trim().to_owned())),
        }
    }

    /// Renders the spelling [`parse`](BugSpec::parse) accepts back.
    pub fn name(self) -> &'static str {
        match self {
            BugSpec::None => "none",
            BugSpec::Native => "native",
            BugSpec::Only(vulnerability) => vulnerability.id(),
        }
    }

    /// Materialises the bug set.
    pub fn to_bug_set(self, core: ProcessorKind) -> BugSet {
        match self {
            BugSpec::None => BugSet::none(),
            BugSpec::Native => BugSet::native_to(core.name()),
            BugSpec::Only(vulnerability) => BugSet::only(vulnerability),
        }
    }
}

/// The processor a self-contained spec runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// Which benchmark core.
    pub core: ProcessorKind,
    /// Which injected bugs.
    pub bugs: BugSpec,
}

impl ProcessorSpec {
    /// Builds the described processor model.
    pub fn build(self) -> Box<dyn Processor> {
        self.core.build(self.bugs.to_bug_set(self.core))
    }
}

/// Why a [`CampaignSpec`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// α must lie in `[0, 1]`.
    AlphaOutOfRange(f64),
    /// ε must lie in `[0, 1]`.
    EpsilonOutOfRange(f64),
    /// η must be positive and finite.
    EtaNotPositive(f64),
    /// γ must be at least 1.
    ZeroGamma,
    /// The campaign needs at least one arm/seed.
    ZeroArms,
    /// The campaign needs a positive test budget.
    ZeroTests,
    /// Per-test instruction budget must be positive.
    ZeroSteps,
    /// Coverage-series sampling interval must be positive.
    ZeroSampleInterval,
    /// Shard plans need at least one shard.
    ZeroShards,
    /// Shard plans need at least one test per round.
    ZeroBatch,
    /// The policy name resolved to nothing; the message lists valid names.
    UnknownPolicy(String),
    /// The processor core name is not one of the benchmarks.
    UnknownProcessor(String),
    /// The bug selector is not `none`, `native` or a vulnerability id.
    UnknownBugs(String),
    /// A generator probability is not a finite value in `[0, 1]`.
    GeneratorProbOutOfRange {
        /// Which generator field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The spec names no processor but the caller asked the spec to build
    /// one.
    MissingProcessor,
    /// The supplied bandit's arm count does not match the spec's.
    ArmCountMismatch {
        /// Arms the bandit was built with.
        bandit: usize,
        /// Arms the spec declares.
        spec: usize,
    },
    /// The JSON document failed to parse or did not match the schema.
    Json(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::AlphaOutOfRange(alpha) => {
                write!(f, "alpha must lie in [0, 1], got {alpha}")
            }
            SpecError::EpsilonOutOfRange(epsilon) => {
                write!(f, "epsilon must lie in [0, 1], got {epsilon}")
            }
            SpecError::EtaNotPositive(eta) => {
                write!(f, "eta must be positive and finite, got {eta}")
            }
            SpecError::ZeroGamma => f.write_str("gamma must be at least 1"),
            SpecError::ZeroArms => f.write_str("the campaign needs at least one arm"),
            SpecError::ZeroTests => f.write_str("max_tests must be at least 1"),
            SpecError::ZeroSteps => f.write_str("max_steps_per_test must be at least 1"),
            SpecError::ZeroSampleInterval => f.write_str("sample_interval must be at least 1"),
            SpecError::ZeroShards => f.write_str("the shard plan needs at least one shard"),
            SpecError::ZeroBatch => f.write_str("the shard plan needs at least one test per round"),
            SpecError::UnknownPolicy(message) => f.write_str(message),
            SpecError::UnknownProcessor(name) => write!(f, "unknown processor core `{name}`"),
            SpecError::UnknownBugs(name) => {
                write!(f, "unknown bug selector `{name}` (expected none, native or V1..V7)")
            }
            SpecError::GeneratorProbOutOfRange { field, value } => {
                write!(f, "generator.{field} must be a finite probability in [0, 1], got {value}")
            }
            SpecError::MissingProcessor => {
                f.write_str("the spec names no processor; add a \"processor\" section or use Campaign::from_spec_on")
            }
            SpecError::ArmCountMismatch { bandit, spec } => write!(
                f,
                "the bandit was built for {bandit} arms but the spec declares {spec}"
            ),
            SpecError::Json(message) => write!(f, "invalid campaign spec JSON: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete, validated, serializable description of one fuzzing campaign.
///
/// Construct through [`CampaignSpec::builder`] (which validates) or
/// [`CampaignSpec::from_json`] (which parses *and* validates); the fields
/// are public for inspection and for cheap per-cell tweaks in experiment
/// grids (re-validate with [`validate`](CampaignSpec::validate) after
/// editing by hand).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Which scheduling policy drives the campaign.
    pub policy: PolicySpec,
    /// Weight of arm-locally new coverage in the reward (`α ∈ [0, 1]`).
    pub alpha: f64,
    /// Saturation window: γ consecutive zero-gain pulls reset an arm.
    pub gamma: usize,
    /// Exploration probability for ε-greedy (and custom policies that reuse
    /// the knob).
    pub epsilon: f64,
    /// Learning rate for EXP3 (and custom policies that reuse the knob).
    pub eta: f64,
    /// Seed of the campaign's deterministic RNG stream.
    pub rng_seed: u64,
    /// Number of simulation shard workers.
    pub shards: usize,
    /// Tests simulated per bandit round. **1 is the legacy serial stream**
    /// every published artefact uses; larger batches are a different
    /// deterministic campaign (see the determinism contract in
    /// `fuzzer::shard`).
    pub batch_size: usize,
    /// Which coverage signal feeds the reward: the paper's point coverage
    /// (the default — every published artefact uses it, and `to_json` omits
    /// the field entirely so existing goldens stay byte-identical) or static
    /// CFG edge coverage.
    pub coverage_signal: CoverageSignal,
    /// The processor under test, when the spec is self-contained.
    /// `None` when the caller supplies the processor (grid cells).
    pub processor: Option<ProcessorSpec>,
    /// Shared campaign parameters (budget, mutation counts, generator).
    /// `campaign.num_seeds` doubles as the number of arms.
    pub campaign: CampaignConfig,
}

impl CampaignSpec {
    /// Starts a builder initialised with the paper defaults (UCB, α = 0.25,
    /// γ = 3, ε = 0.1, η = 0.1, serial plan, seed 0).
    pub fn builder() -> CampaignSpecBuilder {
        CampaignSpecBuilder::default()
    }

    /// Re-expresses a legacy [`MabFuzzConfig`] (+ seed + plan) as a spec —
    /// the migration path for code still assembling configs imperatively.
    pub fn from_mab_config(config: &MabFuzzConfig, rng_seed: u64, plan: &ShardPlan) -> CampaignSpec {
        CampaignSpec {
            policy: PolicySpec::Bandit(config.algorithm),
            alpha: config.alpha,
            gamma: config.gamma,
            epsilon: config.epsilon,
            eta: config.eta,
            rng_seed,
            shards: plan.shards(),
            batch_size: plan.batch_size(),
            coverage_signal: CoverageSignal::Point,
            processor: None,
            campaign: config.campaign.clone(),
        }
    }

    /// Number of arms (the campaign's `num_seeds`).
    pub fn arms(&self) -> usize {
        self.campaign.num_seeds
    }

    /// The human-readable campaign label used in reports: `"TheHuzz"` or
    /// `"MABFuzz: <policy>"` — custom policies appear under their registered
    /// name.
    pub fn label(&self) -> String {
        match self.policy {
            PolicySpec::Baseline => "TheHuzz".to_owned(),
            PolicySpec::Bandit(kind) => format!("MABFuzz: {kind}"),
        }
    }

    /// The shard plan the spec describes.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::sharded(self.shards).with_batch_size(self.batch_size)
    }

    /// The bandit-policy construction parameters the spec describes.
    pub fn policy_params(&self, kind: BanditKind) -> PolicyParams {
        PolicyParams { kind, arms: self.arms(), epsilon: self.epsilon, eta: self.eta }
    }

    /// Re-expresses the spec as the legacy [`MabFuzzConfig`] the orchestrator
    /// layers consume. For the baseline policy the algorithm field is
    /// meaningless and defaults to UCB.
    pub fn to_mab_config(&self) -> MabFuzzConfig {
        let algorithm = match self.policy {
            PolicySpec::Baseline => BanditKind::Ucb1,
            PolicySpec::Bandit(kind) => kind,
        };
        MabFuzzConfig {
            campaign: self.campaign.clone(),
            algorithm,
            alpha: self.alpha,
            gamma: self.gamma,
            epsilon: self.epsilon,
            eta: self.eta,
        }
    }

    /// Checks every invariant of the spec.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        // A hand-constructed `BanditKind::Custom` may name a policy that was
        // never registered; catching it here keeps `Campaign::from_spec*`
        // panic-free (errors-as-values all the way down).
        if let PolicySpec::Bandit(BanditKind::Custom(name)) = self.policy {
            if mab::lookup_policy(name).is_none() {
                return Err(SpecError::UnknownPolicy(format!(
                    "custom policy `{name}` is not registered (register_policy first)"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(SpecError::AlphaOutOfRange(self.alpha));
        }
        if !(0.0..=1.0).contains(&self.epsilon) {
            return Err(SpecError::EpsilonOutOfRange(self.epsilon));
        }
        if !(self.eta > 0.0 && self.eta.is_finite()) {
            return Err(SpecError::EtaNotPositive(self.eta));
        }
        if self.gamma == 0 {
            return Err(SpecError::ZeroGamma);
        }
        if self.campaign.num_seeds == 0 {
            return Err(SpecError::ZeroArms);
        }
        if self.campaign.max_tests == 0 {
            return Err(SpecError::ZeroTests);
        }
        if self.campaign.max_steps_per_test == 0 {
            return Err(SpecError::ZeroSteps);
        }
        if self.campaign.sample_interval == 0 {
            return Err(SpecError::ZeroSampleInterval);
        }
        if self.shards == 0 {
            return Err(SpecError::ZeroShards);
        }
        if self.batch_size == 0 {
            return Err(SpecError::ZeroBatch);
        }
        // Finite probabilities keep the JSON round-trip total: `to_json`
        // renders non-finite floats as `null`, which `from_json` (rightly)
        // rejects — so no valid spec may carry one.
        for (field, value) in [
            ("unimplemented_csr_prob", self.campaign.generator.unimplemented_csr_prob),
            ("wild_memory_prob", self.campaign.generator.wild_memory_prob),
        ] {
            if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                return Err(SpecError::GeneratorProbOutOfRange { field, value });
            }
        }
        Ok(())
    }

    /// Renders the spec as one deterministic JSON object (compact, fixed
    /// field order, shortest-round-trip floats).
    pub fn to_json(&self) -> String {
        let weights = &self.campaign.generator.weights;
        let processor = match &self.processor {
            None => "null".to_owned(),
            Some(spec) => format!(
                "{{\"core\":{},\"bugs\":{}}}",
                json_string(spec.core.name()),
                json_string(spec.bugs.name())
            ),
        };
        format!(
            concat!(
                "{{\"policy\":{policy},\"alpha\":{alpha},\"gamma\":{gamma},",
                "\"epsilon\":{epsilon},\"eta\":{eta},\"rng_seed\":{rng_seed},",
                "\"shards\":{shards},\"batch_size\":{batch_size},{signal}",
                "\"processor\":{processor},\"campaign\":{{",
                "\"max_tests\":{max_tests},\"max_steps_per_test\":{max_steps},",
                "\"num_seeds\":{num_seeds},",
                "\"mutations_per_interesting_test\":{mutations},",
                "\"stop_on_first_detection\":{stop},",
                "\"sample_interval\":{sample_interval},\"generator\":{{",
                "\"instr_count\":{instr_count},\"weights\":{{",
                "\"arith\":{arith},\"mul\":{mul},\"div\":{div},\"load\":{load},",
                "\"store\":{store},\"branch\":{branch},\"jump\":{jump},",
                "\"csr\":{csr},\"system\":{system},\"fence\":{fence}}},",
                "\"unimplemented_csr_prob\":{csr_prob},",
                "\"wild_memory_prob\":{wild_prob},",
                "\"terminate_with_ecall\":{ecall}}}}}}}",
            ),
            policy = json_string(self.policy.name()),
            alpha = json_float(self.alpha),
            gamma = self.gamma,
            epsilon = json_float(self.epsilon),
            eta = json_float(self.eta),
            rng_seed = self.rng_seed,
            shards = self.shards,
            batch_size = self.batch_size,
            // Omitted entirely for the default point signal so every spec
            // JSON written before the field existed stays byte-identical.
            signal = match self.coverage_signal {
                CoverageSignal::Point => "",
                CoverageSignal::Edge => "\"coverage_signal\":\"edge\",",
            },
            processor = processor,
            max_tests = self.campaign.max_tests,
            max_steps = self.campaign.max_steps_per_test,
            num_seeds = self.campaign.num_seeds,
            mutations = self.campaign.mutations_per_interesting_test,
            stop = self.campaign.stop_on_first_detection,
            sample_interval = self.campaign.sample_interval,
            instr_count = self.campaign.generator.instr_count,
            arith = weights.arith,
            mul = weights.mul,
            div = weights.div,
            load = weights.load,
            store = weights.store,
            branch = weights.branch,
            jump = weights.jump,
            csr = weights.csr,
            system = weights.system,
            fence = weights.fence,
            csr_prob = json_float(self.campaign.generator.unimplemented_csr_prob),
            wild_prob = json_float(self.campaign.generator.wild_memory_prob),
            ecall = self.campaign.generator.terminate_with_ecall,
        )
    }

    /// Parses and validates a spec from its JSON form. Every field is
    /// optional — omitted fields take the builder defaults — but unknown
    /// fields are rejected, so typos fail loudly.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] for malformed documents or schema violations, or
    /// any validation error of [`validate`](CampaignSpec::validate).
    pub fn from_json(text: &str) -> Result<CampaignSpec, SpecError> {
        let value = json::parse(text).map_err(SpecError::Json)?;
        // `spec_from_value` ends in the builder's `build()`, which is the
        // single validation authority — no second pass needed here.
        spec_from_value(&value)
    }

    /// Parses and validates a spec from an already-parsed JSON value — the
    /// entry point for callers whose specs are embedded in a larger
    /// document (a dispatch grid file holding an array of specs, say) and
    /// that therefore cannot hand [`from_json`](CampaignSpec::from_json) a
    /// standalone text. Same strict schema, same errors.
    ///
    /// # Errors
    ///
    /// Exactly those of [`from_json`](CampaignSpec::from_json).
    pub fn from_value(value: &json::Value) -> Result<CampaignSpec, SpecError> {
        spec_from_value(value)
    }
}

impl Default for CampaignSpec {
    /// The paper-default UCB campaign on the default budget.
    fn default() -> Self {
        CampaignSpec::builder().build().expect("the default spec is valid")
    }
}

/// Fluent builder for [`CampaignSpec`]; every setter is infallible and
/// [`build`](CampaignSpecBuilder::build) validates the assembled spec.
#[derive(Debug, Clone)]
pub struct CampaignSpecBuilder {
    policy: PolicyChoice,
    spec: CampaignSpec,
}

/// A policy either resolved already or deferred to build-time name lookup
/// (so `policy_named("thom pson")` surfaces its error in `build`'s
/// `Result`, not as a panic in the middle of a fluent chain).
#[derive(Debug, Clone)]
enum PolicyChoice {
    Resolved(PolicySpec),
    Named(String),
}

impl Default for CampaignSpecBuilder {
    fn default() -> Self {
        CampaignSpecBuilder {
            policy: PolicyChoice::Resolved(PolicySpec::Bandit(BanditKind::Ucb1)),
            spec: CampaignSpec {
                policy: PolicySpec::Bandit(BanditKind::Ucb1),
                alpha: 0.25,
                gamma: 3,
                epsilon: 0.1,
                eta: 0.1,
                rng_seed: 0,
                shards: 1,
                batch_size: 1,
                coverage_signal: CoverageSignal::Point,
                processor: None,
                campaign: CampaignConfig::default(),
            },
        }
    }
}

impl CampaignSpecBuilder {
    /// Selects the scheduling policy.
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.policy = PolicyChoice::Resolved(policy);
        self
    }

    /// Selects a MABFuzz bandit policy.
    pub fn algorithm(self, kind: BanditKind) -> Self {
        self.policy(PolicySpec::Bandit(kind))
    }

    /// Selects the TheHuzz baseline (no bandit).
    pub fn baseline(self) -> Self {
        self.policy(PolicySpec::Baseline)
    }

    /// Selects the policy by name; resolution (and its error) happens in
    /// [`build`](CampaignSpecBuilder::build).
    pub fn policy_named(mut self, name: &str) -> Self {
        self.policy = PolicyChoice::Named(name.to_owned());
        self
    }

    /// Sets the number of arms / initial seeds.
    pub fn arms(mut self, arms: usize) -> Self {
        self.spec.campaign.num_seeds = arms;
        self
    }

    /// Sets the reward weight α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.spec.alpha = alpha;
        self
    }

    /// Sets the saturation window γ.
    pub fn gamma(mut self, gamma: usize) -> Self {
        self.spec.gamma = gamma;
        self
    }

    /// Sets the ε-greedy exploration probability.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.spec.epsilon = epsilon;
        self
    }

    /// Sets the EXP3 learning rate η.
    pub fn eta(mut self, eta: f64) -> Self {
        self.spec.eta = eta;
        self
    }

    /// Sets the campaign test budget.
    pub fn max_tests(mut self, max_tests: u64) -> Self {
        self.spec.campaign.max_tests = max_tests;
        self
    }

    /// Sets the per-test committed-instruction budget.
    pub fn max_steps_per_test(mut self, max_steps: usize) -> Self {
        self.spec.campaign.max_steps_per_test = max_steps;
        self
    }

    /// Sets how many mutants each interesting test spawns.
    pub fn mutations_per_interesting_test(mut self, mutations: usize) -> Self {
        self.spec.campaign.mutations_per_interesting_test = mutations;
        self
    }

    /// Sets the coverage-series sampling interval.
    pub fn sample_interval(mut self, interval: u64) -> Self {
        self.spec.campaign.sample_interval = interval;
        self
    }

    /// Stops the campaign at the first architectural mismatch (Table I
    /// detection mode).
    pub fn stop_on_first_detection(mut self, stop: bool) -> Self {
        self.spec.campaign.stop_on_first_detection = stop;
        self
    }

    /// Replaces the program-generator configuration.
    pub fn generator(mut self, generator: GeneratorConfig) -> Self {
        self.spec.campaign.generator = generator;
        self
    }

    /// Replaces the whole shared campaign configuration (budget, mutation
    /// counts, generator, number of seeds) in one call.
    pub fn campaign(mut self, campaign: CampaignConfig) -> Self {
        self.spec.campaign = campaign;
        self
    }

    /// Sets the campaign RNG seed.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.spec.rng_seed = seed;
        self
    }

    /// Sets the shard-worker count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Sets the per-round batch size (1 = the legacy serial stream).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.spec.batch_size = batch_size;
        self
    }

    /// Adopts a whole shard plan.
    pub fn plan(self, plan: &ShardPlan) -> Self {
        self.shards(plan.shards()).batch_size(plan.batch_size())
    }

    /// Selects the coverage signal feeding the reward (default: point).
    pub fn coverage_signal(mut self, signal: CoverageSignal) -> Self {
        self.spec.coverage_signal = signal;
        self
    }

    /// Names the processor the spec runs against, making it self-contained.
    pub fn processor(mut self, core: ProcessorKind, bugs: BugSpec) -> Self {
        self.spec.processor = Some(ProcessorSpec { core, bugs });
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// The first violated invariant (see [`SpecError`]); name-based policy
    /// selection resolves here and reports unknown names with the full list
    /// of valid policies.
    pub fn build(mut self) -> Result<CampaignSpec, SpecError> {
        self.spec.policy = match &self.policy {
            PolicyChoice::Resolved(policy) => *policy,
            PolicyChoice::Named(name) => PolicySpec::parse(name)?,
        };
        self.spec.validate()?;
        Ok(self.spec)
    }
}

fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    crate::json_text::push_json_string(&mut out, text);
    out
}

fn json_float(value: f64) -> String {
    let mut out = String::new();
    crate::json_text::push_json_float(&mut out, value);
    out
}

fn spec_from_value(value: &json::Value) -> Result<CampaignSpec, SpecError> {
    let object = value.as_object("spec")?;
    let mut builder = CampaignSpec::builder();
    let mut spec = builder.spec.clone();
    for (key, field) in object {
        match key.as_str() {
            "policy" => builder = builder.policy_named(field.as_str("policy")?),
            "alpha" => spec.alpha = field.as_f64("alpha")?,
            "gamma" => spec.gamma = field.as_usize("gamma")?,
            "epsilon" => spec.epsilon = field.as_f64("epsilon")?,
            "eta" => spec.eta = field.as_f64("eta")?,
            "rng_seed" => spec.rng_seed = field.as_u64("rng_seed")?,
            "shards" => spec.shards = field.as_usize("shards")?,
            "batch_size" => spec.batch_size = field.as_usize("batch_size")?,
            "coverage_signal" => {
                let name = field.as_str("coverage_signal")?;
                spec.coverage_signal = CoverageSignal::parse(name).ok_or_else(|| {
                    SpecError::Json(format!(
                        "unknown coverage signal `{name}` (expected \"point\" or \"edge\")"
                    ))
                })?;
            }
            "processor" => spec.processor = processor_from_value(field)?,
            "campaign" => campaign_from_value(field, &mut spec.campaign)?,
            other => {
                return Err(SpecError::Json(format!("unknown spec field `{other}`")));
            }
        }
    }
    builder.spec = spec;
    builder.build()
}

fn processor_from_value(value: &json::Value) -> Result<Option<ProcessorSpec>, SpecError> {
    if value.is_null() {
        return Ok(None);
    }
    let object = value.as_object("processor")?;
    let mut core = None;
    let mut bugs = BugSpec::Native;
    for (key, field) in object {
        match key.as_str() {
            "core" => {
                let name = field.as_str("processor.core")?;
                core = Some(
                    ProcessorKind::parse(name)
                        .ok_or_else(|| SpecError::UnknownProcessor(name.to_owned()))?,
                );
            }
            "bugs" => bugs = BugSpec::parse(field.as_str("processor.bugs")?)?,
            other => {
                return Err(SpecError::Json(format!("unknown processor field `{other}`")));
            }
        }
    }
    let core = core.ok_or_else(|| SpecError::Json("processor.core is required".to_owned()))?;
    Ok(Some(ProcessorSpec { core, bugs }))
}

fn campaign_from_value(value: &json::Value, campaign: &mut CampaignConfig) -> Result<(), SpecError> {
    let object = value.as_object("campaign")?;
    for (key, field) in object {
        match key.as_str() {
            "max_tests" => campaign.max_tests = field.as_u64("campaign.max_tests")?,
            "max_steps_per_test" => {
                campaign.max_steps_per_test = field.as_usize("campaign.max_steps_per_test")?
            }
            "num_seeds" => campaign.num_seeds = field.as_usize("campaign.num_seeds")?,
            "mutations_per_interesting_test" => {
                campaign.mutations_per_interesting_test =
                    field.as_usize("campaign.mutations_per_interesting_test")?
            }
            "stop_on_first_detection" => {
                campaign.stop_on_first_detection =
                    field.as_bool("campaign.stop_on_first_detection")?
            }
            "sample_interval" => {
                campaign.sample_interval = field.as_u64("campaign.sample_interval")?
            }
            "generator" => generator_from_value(field, &mut campaign.generator)?,
            other => {
                return Err(SpecError::Json(format!("unknown campaign field `{other}`")));
            }
        }
    }
    Ok(())
}

fn generator_from_value(
    value: &json::Value,
    generator: &mut GeneratorConfig,
) -> Result<(), SpecError> {
    let object = value.as_object("generator")?;
    for (key, field) in object {
        match key.as_str() {
            "instr_count" => generator.instr_count = field.as_usize("generator.instr_count")?,
            "weights" => weights_from_value(field, &mut generator.weights)?,
            "unimplemented_csr_prob" => {
                generator.unimplemented_csr_prob =
                    field.as_f64("generator.unimplemented_csr_prob")?
            }
            "wild_memory_prob" => {
                generator.wild_memory_prob = field.as_f64("generator.wild_memory_prob")?
            }
            "terminate_with_ecall" => {
                generator.terminate_with_ecall = field.as_bool("generator.terminate_with_ecall")?
            }
            other => {
                return Err(SpecError::Json(format!("unknown generator field `{other}`")));
            }
        }
    }
    Ok(())
}

fn weights_from_value(value: &json::Value, weights: &mut ClassWeights) -> Result<(), SpecError> {
    let object = value.as_object("weights")?;
    for (key, field) in object {
        let target = match key.as_str() {
            "arith" => &mut weights.arith,
            "mul" => &mut weights.mul,
            "div" => &mut weights.div,
            "load" => &mut weights.load,
            "store" => &mut weights.store,
            "branch" => &mut weights.branch,
            "jump" => &mut weights.jump,
            "csr" => &mut weights.csr,
            "system" => &mut weights.system,
            "fence" => &mut weights.fence,
            other => {
                return Err(SpecError::Json(format!("unknown weight class `{other}`")));
            }
        };
        *target = field.as_u32(&format!("weights.{key}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let spec = CampaignSpec::default();
        assert_eq!(spec.policy, PolicySpec::Bandit(BanditKind::Ucb1));
        assert_eq!(spec.arms(), 10);
        assert!((spec.alpha - 0.25).abs() < 1e-12);
        assert_eq!(spec.gamma, 3);
        assert_eq!(spec.plan(), ShardPlan::serial());
        assert_eq!(spec.label(), "MABFuzz: UCB");
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn builder_sets_every_field() {
        let spec = CampaignSpec::builder()
            .algorithm(BanditKind::Exp3)
            .arms(6)
            .alpha(0.5)
            .gamma(7)
            .epsilon(0.2)
            .eta(0.3)
            .max_tests(99)
            .max_steps_per_test(123)
            .mutations_per_interesting_test(2)
            .sample_interval(5)
            .stop_on_first_detection(true)
            .rng_seed(42)
            .shards(3)
            .batch_size(16)
            .processor(ProcessorKind::Rocket, BugSpec::Native)
            .build()
            .unwrap();
        assert_eq!(spec.arms(), 6);
        assert_eq!(spec.campaign.max_tests, 99);
        assert_eq!(spec.campaign.max_steps_per_test, 123);
        assert!(spec.campaign.stop_on_first_detection);
        assert_eq!(spec.rng_seed, 42);
        assert_eq!(spec.plan(), ShardPlan::sharded(3).with_batch_size(16));
        assert_eq!(spec.processor.unwrap().core, ProcessorKind::Rocket);
        assert_eq!(spec.label(), "MABFuzz: EXP3");
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let cases: Vec<(CampaignSpecBuilder, SpecError)> = vec![
            (CampaignSpec::builder().alpha(1.5), SpecError::AlphaOutOfRange(1.5)),
            (CampaignSpec::builder().alpha(-0.1), SpecError::AlphaOutOfRange(-0.1)),
            (CampaignSpec::builder().epsilon(2.0), SpecError::EpsilonOutOfRange(2.0)),
            (CampaignSpec::builder().eta(0.0), SpecError::EtaNotPositive(0.0)),
            (CampaignSpec::builder().eta(f64::NAN), SpecError::EtaNotPositive(f64::NAN)),
            (CampaignSpec::builder().gamma(0), SpecError::ZeroGamma),
            (CampaignSpec::builder().arms(0), SpecError::ZeroArms),
            (CampaignSpec::builder().max_tests(0), SpecError::ZeroTests),
            (CampaignSpec::builder().max_steps_per_test(0), SpecError::ZeroSteps),
            (CampaignSpec::builder().sample_interval(0), SpecError::ZeroSampleInterval),
            (CampaignSpec::builder().shards(0), SpecError::ZeroShards),
            (CampaignSpec::builder().batch_size(0), SpecError::ZeroBatch),
        ];
        for (builder, expected) in cases {
            let error = builder.build().expect_err("invalid spec");
            // NaN != NaN, so compare through the Display form.
            assert_eq!(error.to_string(), expected.to_string());
        }
    }

    #[test]
    fn policy_names_resolve_or_fail_loudly() {
        assert_eq!(PolicySpec::parse("TheHuzz").unwrap(), PolicySpec::Baseline);
        assert_eq!(PolicySpec::parse("baseline").unwrap(), PolicySpec::Baseline);
        assert_eq!(
            PolicySpec::parse("ucb1").unwrap(),
            PolicySpec::Bandit(BanditKind::Ucb1)
        );
        let spec = CampaignSpec::builder().policy_named("EXP3").build().unwrap();
        assert_eq!(spec.policy, PolicySpec::Bandit(BanditKind::Exp3));
        let error = CampaignSpec::builder().policy_named("nope").build().expect_err("typo");
        let message = error.to_string();
        assert!(message.contains("nope"));
        assert!(message.contains("UCB"), "the error lists valid policies: {message}");
        assert!(message.contains("TheHuzz"), "the baseline spellings are listed too: {message}");
    }

    #[test]
    fn non_finite_generator_probabilities_fail_validation() {
        // Guards the total round-trip: a NaN probability would serialize as
        // `null` and be rejected by from_json, so build() must refuse it.
        let generator =
            GeneratorConfig { unimplemented_csr_prob: f64::NAN, ..GeneratorConfig::default() };
        let error = CampaignSpec::builder().generator(generator).build().expect_err("NaN prob");
        assert!(error.to_string().contains("unimplemented_csr_prob"), "got: {error}");

        let generator = GeneratorConfig { wild_memory_prob: 1.5, ..GeneratorConfig::default() };
        let error = CampaignSpec::builder().generator(generator).build().expect_err("prob > 1");
        assert!(error.to_string().contains("wild_memory_prob"), "got: {error}");
    }

    #[test]
    fn hand_constructed_unregistered_custom_kinds_fail_validation() {
        // `BanditKind::Custom` is a public variant; a spec naming a policy
        // nobody registered must surface an error, not a panic, from the
        // campaign entry points.
        let error = CampaignSpec::builder()
            .algorithm(BanditKind::Custom("spec-test-never-registered"))
            .build()
            .expect_err("unregistered custom policy");
        assert!(
            error.to_string().contains("not registered"),
            "got: {error}"
        );
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let spec = CampaignSpec::builder()
            .baseline()
            .arms(4)
            .alpha(0.75)
            .gamma(2)
            .max_tests(77)
            .rng_seed(u64::MAX)
            .shards(2)
            .batch_size(8)
            .processor(ProcessorKind::Cva6, BugSpec::Only(Vulnerability::V5MissingAccessFault))
            .build()
            .unwrap();
        let json = spec.to_json();
        let restored = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(restored, spec);
        assert_eq!(restored.rng_seed, u64::MAX, "64-bit seeds survive the codec");
        assert_eq!(restored.to_json(), json, "rendering is deterministic");
    }

    #[test]
    fn json_defaults_apply_to_omitted_fields() {
        let spec = CampaignSpec::from_json("{\"policy\":\"exp3\",\"rng_seed\":9}").unwrap();
        assert_eq!(spec.policy, PolicySpec::Bandit(BanditKind::Exp3));
        assert_eq!(spec.rng_seed, 9);
        assert_eq!(spec.arms(), 10, "defaults fill the rest");
        let empty = CampaignSpec::from_json("{}").unwrap();
        assert_eq!(empty, CampaignSpec::default());
    }

    #[test]
    fn coverage_signal_round_trips_and_defaults_to_point() {
        // The default signal never appears in the rendered JSON: specs
        // written before the field existed stay byte-identical.
        let point = CampaignSpec::default();
        assert_eq!(point.coverage_signal, CoverageSignal::Point);
        assert!(!point.to_json().contains("coverage_signal"));

        let edge = CampaignSpec::builder().coverage_signal(CoverageSignal::Edge).build().unwrap();
        let json = edge.to_json();
        assert!(json.contains("\"coverage_signal\":\"edge\""));
        assert_eq!(CampaignSpec::from_json(&json).unwrap(), edge);

        // Spelling the default out loud parses back to the default too.
        let explicit = CampaignSpec::from_json("{\"coverage_signal\":\"point\"}").unwrap();
        assert_eq!(explicit, CampaignSpec::default());

        let error = CampaignSpec::from_json("{\"coverage_signal\":\"path\"}").expect_err("bad signal");
        assert!(error.to_string().contains("unknown coverage signal `path`"), "got: {error}");
    }

    #[test]
    fn json_rejects_unknown_fields_and_bad_values() {
        for (document, needle) in [
            ("{\"polcy\":\"ucb\"}", "unknown spec field `polcy`"),
            ("{\"campaign\":{\"maxtests\":1}}", "unknown campaign field"),
            ("{\"campaign\":{\"generator\":{\"weights\":{\"arty\":1}}}}", "unknown weight class"),
            ("{\"alpha\":\"high\"}", "expected a number"),
            ("{\"rng_seed\":-4}", "non-negative integer"),
            ("{\"alpha\":2.0}", "alpha must lie in"),
            ("{\"policy\":\"gradient\"}", "valid policies: TheHuzz"),
            ("{\"processor\":{\"core\":\"pentium\"}}", "unknown processor core"),
            ("{\"processor\":{\"bugs\":\"native\"}}", "processor.core is required"),
            ("{\"processor\":{\"core\":\"cva6\",\"bugs\":\"V99\"}}", "unknown bug selector"),
            ("{\"alpha\":", "unexpected end"),
            ("{\"alpha\":0.25}}", "trailing content"),
            ("{\"a\":1,\"a\":2}", "duplicate key"),
        ] {
            let error = CampaignSpec::from_json(document).expect_err(document);
            assert!(
                error.to_string().contains(needle),
                "`{document}` → `{error}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        // RFC 8259 allows any character via \u escapes, with non-BMP
        // scalars as surrogate pairs; the strict reader must accept specs
        // other JSON tools produced. (The unknown-field error proves the
        // decoded key survived intact.)
        let error = CampaignSpec::from_json("{\"\\u0070\\u006flicy\\ud83d\\ude00\":1}")
            .expect_err("unknown field");
        assert!(error.to_string().contains("policy😀"), "got: {error}");
        for (document, needle) in [
            ("{\"\\ud83d\":1}", "lone high surrogate"),
            ("{\"\\ud83d\\u0041\":1}", "invalid low surrogate"),
            ("{\"\\ud8\":1}", "invalid digit"),
        ] {
            let error = CampaignSpec::from_json(document).expect_err(document);
            assert!(error.to_string().contains(needle), "`{document}` → `{error}`");
        }
    }

    #[test]
    fn mab_config_round_trip() {
        let mut config = MabFuzzConfig::new(BanditKind::Exp3).with_arms(5).with_alpha(0.5);
        config.campaign.max_tests = 64;
        let plan = ShardPlan::sharded(2).with_batch_size(4);
        let spec = CampaignSpec::from_mab_config(&config, 11, &plan);
        assert_eq!(spec.rng_seed, 11);
        assert_eq!(spec.plan(), plan);
        let back = spec.to_mab_config();
        assert_eq!(back.algorithm, config.algorithm);
        assert!((back.alpha - config.alpha).abs() < 1e-12);
        assert_eq!(back.campaign.max_tests, 64);
        assert_eq!(back.arms(), 5);
    }

    #[test]
    fn bug_specs_materialise_the_right_sets() {
        assert!(BugSpec::None.to_bug_set(ProcessorKind::Cva6).is_empty());
        assert!(!BugSpec::Native.to_bug_set(ProcessorKind::Cva6).is_empty());
        assert!(BugSpec::Native.to_bug_set(ProcessorKind::Boom).is_empty(), "BOOM has no native bugs");
        let only = BugSpec::Only(Vulnerability::V5MissingAccessFault);
        assert!(only.to_bug_set(ProcessorKind::Cva6).has(Vulnerability::V5MissingAccessFault));
        assert_eq!(BugSpec::parse("native").unwrap(), BugSpec::Native);
        assert_eq!(BugSpec::parse("NONE").unwrap(), BugSpec::None);
        assert_eq!(BugSpec::parse("V5").unwrap(), only);
    }
}
