//! The MABFuzz orchestrator (Fig. 2 of the paper).

use std::sync::Arc;

use coverage::CoverageMap;
use fuzzer::shard::derive_stream_seed;
use fuzzer::{
    CampaignStats, DiffReport, ExecScratch, FuzzHarness, MutationEngine, SeedGenerator, ShardPlan,
    ShardPool, TestCase,
};
use mab::Bandit;
use proc_sim::Processor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use riscv::Program;
use serde::{Deserialize, Serialize};

use crate::arm::Arm;
use crate::config::MabFuzzConfig;
use crate::monitor::SaturationMonitor;
use crate::reward::RewardParams;

/// Per-arm summary included in the campaign outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmSummary {
    /// Arm index.
    pub index: usize,
    /// Total pulls across the campaign.
    pub pulls: u64,
    /// Number of times the arm was reset.
    pub resets: u64,
    /// Coverage points reached by the arm's final seed family.
    pub final_local_coverage: usize,
}

/// The result of one MABFuzz campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MabFuzzOutcome {
    /// The shared campaign statistics (coverage curve, detections, …).
    pub stats: CampaignStats,
    /// Per-arm activity summary.
    pub arms: Vec<ArmSummary>,
    /// Total number of arm resets across the campaign.
    pub total_resets: u64,
}

/// The MABFuzz fuzzer: a multi-armed-bandit seed scheduler wrapped around the
/// same simulate–compare–mutate loop as the baseline.
///
/// One fuzzing iteration (one "pull") follows Fig. 2 of the paper:
///
/// 1. the bandit selects an arm,
/// 2. the next test from that arm's pool is simulated on the DUT and the
///    golden model (differential testing),
/// 3. the test's coverage is folded into the arm-local and global coverage,
///    yielding `|cov_L|` and `|cov_G|`,
/// 4. if the test found new coverage it is mutated and its children join the
///    arm's pool,
/// 5. the reward `α·|cov_L| + (1 − α)·|cov_G|` (normalised for EXP3) updates
///    the bandit,
/// 6. the γ-window monitor decides whether the arm is depleted; if so the arm
///    is reset: fresh seed, cleared pool and local coverage, and re-initialised
///    bandit statistics.
pub struct MabFuzzer {
    harness: FuzzHarness,
    config: MabFuzzConfig,
    bandit: Box<dyn Bandit>,
    rng: StdRng,
    seed: u64,
    seeds: SeedGenerator,
    mutator: MutationEngine,
}

impl MabFuzzer {
    /// Creates a MABFuzz campaign for `processor` with reproducible
    /// randomness derived from `rng_seed`.
    pub fn new(processor: Arc<dyn Processor>, config: MabFuzzConfig, rng_seed: u64) -> MabFuzzer {
        let bandit = config.build_bandit();
        MabFuzzer::with_bandit(processor, config, bandit, rng_seed)
    }

    /// Creates a MABFuzz campaign driven by a caller-supplied bandit policy.
    ///
    /// This is the hook that makes MABFuzz "agnostic to any MAB algorithm"
    /// (paper contribution 3): anything implementing [`mab::Bandit`] — not
    /// just the three algorithms evaluated in the paper — can schedule seeds.
    /// The `config.algorithm` field is ignored; everything else (arms, α, γ,
    /// campaign budget) applies as usual.
    ///
    /// # Panics
    ///
    /// Panics if the bandit's arm count differs from `config.arms()`.
    pub fn with_bandit(
        processor: Arc<dyn Processor>,
        config: MabFuzzConfig,
        bandit: Box<dyn Bandit>,
        rng_seed: u64,
    ) -> MabFuzzer {
        assert_eq!(
            bandit.arms(),
            config.arms(),
            "the bandit must have exactly one arm per seed"
        );
        let harness = FuzzHarness::new(processor, config.campaign.max_steps_per_test);
        let seeds = SeedGenerator::new(config.campaign.generator.clone());
        let mutator = MutationEngine::new(config.campaign.generator.clone());
        MabFuzzer {
            harness,
            config,
            bandit,
            rng: StdRng::seed_from_u64(rng_seed),
            seed: rng_seed,
            seeds,
            mutator,
        }
    }

    /// Returns the campaign configuration.
    pub fn config(&self) -> &MabFuzzConfig {
        &self.config
    }

    /// Runs the campaign to completion on the legacy serial plan (one test
    /// per bandit round, no shard workers).
    ///
    /// Exactly equivalent to `run_sharded(&ShardPlan::serial())`; every
    /// published paper artefact goes through this path, and the sharded
    /// loop reproduces its RNG stream draw-for-draw in the batch-size-1
    /// case.
    pub fn run(self) -> MabFuzzOutcome {
        self.run_sharded(&ShardPlan::serial())
    }

    /// Runs the campaign to completion under `plan`, simulating each bandit
    /// round's test batch across the plan's shard workers and folding the
    /// observations back in `test_index` order.
    ///
    /// The campaign report is **byte-identical for every shard count** at a
    /// fixed batch size — see the determinism contract in
    /// [`fuzzer::shard`]. One fuzzing round follows Fig. 2 of the paper,
    /// batched:
    ///
    /// 1. the bandit selects an arm,
    /// 2. the round's batch is popped from the arm's pool (an empty pool is
    ///    refilled by mutating the arm's seed; batched rounds draw that
    ///    randomness from the per-test streams of
    ///    [`derive_stream_seed`]),
    /// 3. the batch is simulated across the shards (differential testing
    ///    against the golden model) — a pure, embarrassingly parallel map,
    /// 4. outcomes are folded in `test_index` order: global then arm-local
    ///    coverage novelty (`|cov_G|`, `|cov_L|`), detections, mutation of
    ///    interesting tests, the reward
    ///    `α·|cov_L| + (1 − α)·|cov_G|` (normalised for EXP3) via
    ///    [`mab::Bandit::update_batch`], and the γ-window saturation check
    ///    with its arm reset.
    pub fn run_sharded(self, plan: &ShardPlan) -> MabFuzzOutcome {
        let label = format!("{} on {}", self.config.label(), self.harness.processor().name());
        let space_len = self.harness.coverage_space_len();
        let max_tests = self.config.campaign.max_tests;
        let campaign_seed = self.seed;
        // Per-test derived RNG streams are a batched-mode feature; the
        // batch-size-1 plan keeps every draw on the main RNG so `run()`
        // reproduces the pre-sharding serial campaigns byte for byte.
        let legacy_stream = plan.batch_size() == 1;
        let pool = (plan.shards() > 1).then(|| ShardPool::new(&self.harness, plan.shards()));
        let mut scratch = ExecScratch::new();

        let mut fold = CampaignFold {
            stats: CampaignStats::new(label, space_len, self.config.campaign.sample_interval),
            arms: Vec::new(),
            monitor: SaturationMonitor::new(self.config.arms(), self.config.gamma),
            bandit: self.bandit,
            rng: self.rng,
            seeds: self.seeds,
            mutator: self.mutator,
            reward_params: RewardParams::new(self.config.alpha),
            space_len,
            mutations_per_interesting_test: self.config.campaign.mutations_per_interesting_test,
            stop_on_first_detection: self.config.campaign.stop_on_first_detection,
            total_resets: 0,
            pending_rewards: Vec::with_capacity(plan.batch_size()),
            arm_index: 0,
        };
        // One seed per arm (Fig. 2: "Given a seed pool with each seed
        // corresponding to an arm").
        fold.arms = (0..self.config.arms())
            .map(|index| Arm::new(index, fold.seeds.generate_seed(&mut fold.rng), space_len))
            .collect();

        let mut round: u64 = 0;
        while fold.stats.tests_executed() < max_tests {
            let remaining = usize::try_from(max_tests - fold.stats.tests_executed())
                .unwrap_or(usize::MAX);
            let batch_len = plan.batch_size().min(remaining);

            // 1. Select the round's arm.
            fold.begin_round();

            // Derived per-test streams for this round (batched mode only).
            let mut lanes: Vec<StdRng> = if legacy_stream {
                Vec::new()
            } else {
                (0..batch_len)
                    .map(|index| {
                        StdRng::seed_from_u64(derive_stream_seed(
                            campaign_seed,
                            round,
                            index as u64,
                        ))
                    })
                    .collect()
            };

            // 2. Assemble the batch before the fork: pool pops and refills
            //    happen serially, so batch contents are shard-independent.
            let batch = fold.assemble_batch(batch_len, &mut lanes);

            // 3. Simulate — fork/join across the shard pool, or in place on
            //    the campaign thread — and 4. fold in test order.
            let stopped = match &pool {
                Some(pool) => {
                    let programs: Arc<Vec<Program>> =
                        Arc::new(batch.iter().map(|test| test.program.clone()).collect());
                    let outcomes = pool.simulate(&programs);
                    let mut stopped = false;
                    for (slot, (test, outcome)) in batch.iter().zip(&outcomes).enumerate() {
                        if fold.fold_test(test, &outcome.coverage, &outcome.diff, lanes.get_mut(slot))
                        {
                            stopped = true;
                            break;
                        }
                    }
                    stopped
                }
                None => {
                    let mut stopped = false;
                    for (slot, test) in batch.iter().enumerate() {
                        let view = self.harness.run_program_into(&test.program, &mut scratch);
                        if fold.fold_test(test, view.coverage, view.diff, lanes.get_mut(slot)) {
                            stopped = true;
                            break;
                        }
                    }
                    stopped
                }
            };
            fold.flush_rewards();
            if stopped {
                break;
            }
            round += 1;
        }

        fold.stats.finish();
        let arm_summaries = fold
            .arms
            .iter()
            .map(|arm| ArmSummary {
                index: arm.index(),
                pulls: arm.total_pulls(),
                resets: arm.resets(),
                final_local_coverage: arm.local_coverage().count(),
            })
            .collect();
        MabFuzzOutcome { stats: fold.stats, arms: arm_summaries, total_resets: fold.total_resets }
    }
}

/// The serial half of a campaign round: everything the ordered reduction
/// mutates, gathered so the fold runs identically whether outcomes arrive
/// from the campaign thread (1 shard) or from the shard pool.
struct CampaignFold {
    stats: CampaignStats,
    arms: Vec<Arm>,
    monitor: SaturationMonitor,
    bandit: Box<dyn Bandit>,
    rng: StdRng,
    seeds: SeedGenerator,
    mutator: MutationEngine,
    reward_params: RewardParams,
    space_len: usize,
    mutations_per_interesting_test: usize,
    stop_on_first_detection: bool,
    total_resets: u64,
    pending_rewards: Vec<f64>,
    arm_index: usize,
}

impl CampaignFold {
    /// Starts a round: the bandit picks the arm the whole batch pulls.
    fn begin_round(&mut self) {
        self.arm_index = self.bandit.select(&mut self.rng);
    }

    /// Pops the round's batch from the selected arm's pool, refilling an
    /// empty pool by mutating the arm's seed. Refill randomness comes from
    /// the slot's derived lane when one exists (batched rounds) and from
    /// the main RNG otherwise (the legacy batch-size-1 stream).
    fn assemble_batch(&mut self, batch_len: usize, lanes: &mut [StdRng]) -> Vec<TestCase> {
        let mut batch = Vec::with_capacity(batch_len);
        for slot in 0..batch_len {
            let arm = &mut self.arms[self.arm_index];
            let test = match arm.next_test() {
                Some(test) => test,
                None => {
                    let rng = match lanes.get_mut(slot) {
                        Some(lane) => lane,
                        None => &mut self.rng,
                    };
                    let (mutant, _) = self.mutator.mutate(&arm.seed().program, rng);
                    let child = self.seeds.adopt_child(&arm.seed().clone(), mutant);
                    arm.pool_mut().push(child);
                    arm.next_test().expect("pool was just refilled")
                }
            };
            batch.push(test);
        }
        batch
    }

    /// Folds one simulated test into the campaign state, in `test_index`
    /// order. Returns `true` when the campaign must stop (detection mode
    /// hit a mismatch); the remaining outcomes of the round are then
    /// discarded unrecorded, exactly like the tests a serial campaign would
    /// never have simulated.
    fn fold_test(
        &mut self,
        test: &TestCase,
        coverage: &CoverageMap,
        diff: &DiffReport,
        lane: Option<&mut StdRng>,
    ) -> bool {
        // Global novelty first (cov_G), then the arm-local novelty
        // (cov_L ⊇ cov_G). Only the counts are needed for the reward, so no
        // id vectors are materialised.
        let detected = !diff.is_clean();
        let global_new = self.stats.record_test_count(test.id, coverage, diff);
        let local_new = self.arms[self.arm_index].absorb_coverage(coverage);

        if self.stop_on_first_detection && detected {
            return true;
        }

        // Mutate interesting tests into the arm's pool.
        if local_new > 0 {
            let mutation_count = self.mutations_per_interesting_test;
            let CampaignFold { rng, seeds, mutator, arms, arm_index, .. } = self;
            let rng = match lane {
                Some(lane) => lane,
                None => rng,
            };
            for _ in 0..mutation_count {
                let (mutant, _) = mutator.mutate(&test.program, rng);
                let child = seeds.adopt_child(test, mutant);
                arms[*arm_index].pool_mut().push(child);
            }
        }

        // Queue the reward; the round flush (or a reset) folds the pending
        // rewards into the bandit in order via `update_batch`.
        let reward = self.reward_params.policy_reward(
            self.bandit.kind(),
            local_new,
            global_new,
            self.space_len,
        );
        self.pending_rewards.push(reward);

        // Reset saturated arms. Pending rewards are flushed first so the
        // bandit observes update-then-reset in the same order as a serial
        // campaign.
        if self.monitor.record(self.arm_index, local_new) {
            self.flush_rewards();
            let fresh = self.seeds.generate_seed(&mut self.rng);
            self.arms[self.arm_index].reset(fresh);
            self.bandit.reset_arm(self.arm_index);
            self.monitor.reset_arm(self.arm_index);
            self.total_resets += 1;
        }
        false
    }

    /// Folds the queued rewards of the current round into the bandit, in
    /// `test_index` order.
    fn flush_rewards(&mut self) {
        if !self.pending_rewards.is_empty() {
            self.bandit.update_batch(self.arm_index, &self.pending_rewards);
            self.pending_rewards.clear();
        }
    }
}

impl std::fmt::Debug for MabFuzzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MabFuzzer")
            .field("processor", &self.harness.processor().name())
            .field("algorithm", &self.config.algorithm)
            .field("arms", &self.config.arms())
            .field("max_tests", &self.config.campaign.max_tests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mab::BanditKind;
    use proc_sim::{cores::Cva6Core, cores::RocketCore, BugSet, Vulnerability};

    fn quick_config(kind: BanditKind, max_tests: u64) -> MabFuzzConfig {
        let mut config = MabFuzzConfig::new(kind).with_arms(4).with_max_tests(max_tests);
        config.campaign.max_steps_per_test = 200;
        config.campaign.mutations_per_interesting_test = 2;
        config.campaign.sample_interval = 5;
        config
    }

    #[test]
    fn campaign_runs_to_the_test_budget_for_every_algorithm() {
        for kind in BanditKind::ALL {
            let processor = Arc::new(RocketCore::new(BugSet::none()));
            let outcome = MabFuzzer::new(processor, quick_config(kind, 25), 3).run();
            assert_eq!(outcome.stats.tests_executed(), 25, "{kind}");
            assert!(outcome.stats.final_coverage() > 100, "{kind}");
            assert_eq!(outcome.arms.len(), 4);
            let pulls: u64 = outcome.arms.iter().map(|a| a.pulls).sum();
            assert!(pulls >= 25, "every executed test is a pull of some arm");
        }
    }

    #[test]
    fn campaigns_are_reproducible_per_rng_seed() {
        let a = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Ucb1, 20),
            11,
        )
        .run();
        let b = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Ucb1, 20),
            11,
        )
        .run();
        assert_eq!(a.stats.final_coverage(), b.stats.final_coverage());
        assert_eq!(a.stats.cumulative().history(), b.stats.cumulative().history());
        assert_eq!(a.total_resets, b.total_resets);
    }

    #[test]
    fn saturated_arms_get_reset_in_long_campaigns() {
        let mut config = quick_config(BanditKind::EpsilonGreedy, 120).with_gamma(2);
        config.campaign.mutations_per_interesting_test = 1;
        let outcome =
            MabFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), config, 5).run();
        assert!(outcome.total_resets > 0, "a 120-test campaign with gamma=2 must reset arms");
        let resets_from_arms: u64 = outcome.arms.iter().map(|a| a.resets).sum();
        assert_eq!(resets_from_arms, outcome.total_resets);
    }

    #[test]
    fn detection_mode_stops_on_the_first_mismatch() {
        let processor = Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let mut config = quick_config(BanditKind::Ucb1, 400);
        config.campaign.stop_on_first_detection = true;
        let outcome = MabFuzzer::new(processor, config, 2).run();
        let detection = outcome.stats.first_detection().expect("V5 triggers quickly");
        assert_eq!(outcome.stats.tests_executed(), detection);
    }

    #[test]
    fn custom_bandits_can_drive_the_fuzzer() {
        /// A deliberately naive policy: round-robin over the arms.
        struct RoundRobin {
            arms: usize,
            next: usize,
            pulls: Vec<u64>,
        }
        impl mab::Bandit for RoundRobin {
            fn kind(&self) -> BanditKind {
                BanditKind::EpsilonGreedy
            }
            fn arms(&self) -> usize {
                self.arms
            }
            fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
                let arm = self.next;
                self.next = (self.next + 1) % self.arms;
                arm
            }
            fn update(&mut self, arm: usize, _reward: f64) {
                self.pulls[arm] += 1;
            }
            fn reset_arm(&mut self, arm: usize) {
                self.pulls[arm] = 0;
            }
            fn value(&self, _arm: usize) -> f64 {
                0.0
            }
            fn pulls(&self, arm: usize) -> u64 {
                self.pulls[arm]
            }
        }

        let config = quick_config(BanditKind::Ucb1, 12);
        let bandit = Box::new(RoundRobin { arms: config.arms(), next: 0, pulls: vec![0; config.arms()] });
        let outcome = MabFuzzer::with_bandit(
            Arc::new(RocketCore::new(BugSet::none())),
            config,
            bandit,
            4,
        )
        .run();
        assert_eq!(outcome.stats.tests_executed(), 12);
        // Round-robin spreads the twelve pulls evenly over the four arms.
        assert!(outcome.arms.iter().all(|a| a.pulls == 3));
    }

    #[test]
    #[should_panic(expected = "one arm per seed")]
    fn mismatched_bandit_arm_count_panics() {
        let config = quick_config(BanditKind::Ucb1, 5);
        let bandit: Box<dyn mab::Bandit> = Box::new(mab::Ucb1::new(2));
        let _ = MabFuzzer::with_bandit(Arc::new(RocketCore::new(BugSet::none())), config, bandit, 1);
    }

    #[test]
    fn sharded_reports_are_identical_for_every_shard_count() {
        // The in-crate smoke version of the cross-crate equivalence suite:
        // same plan batch size, different shard counts, byte-identical
        // outcome (including arm summaries and reset counts).
        let plan = |shards: usize| ShardPlan::sharded(shards).with_batch_size(5);
        let reference = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Ucb1, 42),
            9,
        )
        .run_sharded(&plan(1));
        assert_eq!(reference.stats.tests_executed(), 42);
        for shards in [2usize, 3] {
            let sharded = MabFuzzer::new(
                Arc::new(RocketCore::new(BugSet::none())),
                quick_config(BanditKind::Ucb1, 42),
                9,
            )
            .run_sharded(&plan(shards));
            assert_eq!(reference, sharded, "{shards} shards diverged from 1 shard");
        }
    }

    #[test]
    fn serial_plan_reproduces_run_exactly() {
        let make = || {
            MabFuzzer::new(
                Arc::new(RocketCore::new(BugSet::none())),
                quick_config(BanditKind::Exp3, 30),
                17,
            )
        };
        let via_run = make().run();
        let via_plan = make().run_sharded(&ShardPlan::serial());
        assert_eq!(via_run, via_plan);
    }

    #[test]
    fn sharded_detection_mode_stops_on_the_first_mismatch() {
        let processor = Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let mut config = quick_config(BanditKind::Ucb1, 400);
        config.campaign.stop_on_first_detection = true;
        let outcome = MabFuzzer::new(processor, config, 2)
            .run_sharded(&ShardPlan::sharded(2).with_batch_size(8));
        let detection = outcome.stats.first_detection().expect("V5 triggers quickly");
        assert_eq!(
            outcome.stats.tests_executed(),
            detection,
            "outcomes after the detection are discarded unrecorded"
        );
    }

    #[test]
    fn debug_format_names_the_configuration() {
        let fuzzer = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Exp3, 5),
            1,
        );
        let text = format!("{fuzzer:?}");
        assert!(text.contains("rocket"));
        assert!(text.contains("Exp3"));
        assert_eq!(fuzzer.config().algorithm, BanditKind::Exp3);
    }
}
