//! The MABFuzz orchestrator (Fig. 2 of the paper).

use std::sync::Arc;

use fuzzer::{CampaignStats, ExecScratch, FuzzHarness, MutationEngine, SeedGenerator};
use mab::Bandit;
use proc_sim::Processor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::arm::Arm;
use crate::config::MabFuzzConfig;
use crate::monitor::SaturationMonitor;
use crate::reward::RewardParams;

/// Per-arm summary included in the campaign outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmSummary {
    /// Arm index.
    pub index: usize,
    /// Total pulls across the campaign.
    pub pulls: u64,
    /// Number of times the arm was reset.
    pub resets: u64,
    /// Coverage points reached by the arm's final seed family.
    pub final_local_coverage: usize,
}

/// The result of one MABFuzz campaign.
#[derive(Debug, Clone)]
pub struct MabFuzzOutcome {
    /// The shared campaign statistics (coverage curve, detections, …).
    pub stats: CampaignStats,
    /// Per-arm activity summary.
    pub arms: Vec<ArmSummary>,
    /// Total number of arm resets across the campaign.
    pub total_resets: u64,
}

/// The MABFuzz fuzzer: a multi-armed-bandit seed scheduler wrapped around the
/// same simulate–compare–mutate loop as the baseline.
///
/// One fuzzing iteration (one "pull") follows Fig. 2 of the paper:
///
/// 1. the bandit selects an arm,
/// 2. the next test from that arm's pool is simulated on the DUT and the
///    golden model (differential testing),
/// 3. the test's coverage is folded into the arm-local and global coverage,
///    yielding `|cov_L|` and `|cov_G|`,
/// 4. if the test found new coverage it is mutated and its children join the
///    arm's pool,
/// 5. the reward `α·|cov_L| + (1 − α)·|cov_G|` (normalised for EXP3) updates
///    the bandit,
/// 6. the γ-window monitor decides whether the arm is depleted; if so the arm
///    is reset: fresh seed, cleared pool and local coverage, and re-initialised
///    bandit statistics.
pub struct MabFuzzer {
    harness: FuzzHarness,
    config: MabFuzzConfig,
    bandit: Box<dyn Bandit>,
    rng: StdRng,
    seeds: SeedGenerator,
    mutator: MutationEngine,
}

impl MabFuzzer {
    /// Creates a MABFuzz campaign for `processor` with reproducible
    /// randomness derived from `rng_seed`.
    pub fn new(processor: Arc<dyn Processor>, config: MabFuzzConfig, rng_seed: u64) -> MabFuzzer {
        let bandit = config.build_bandit();
        MabFuzzer::with_bandit(processor, config, bandit, rng_seed)
    }

    /// Creates a MABFuzz campaign driven by a caller-supplied bandit policy.
    ///
    /// This is the hook that makes MABFuzz "agnostic to any MAB algorithm"
    /// (paper contribution 3): anything implementing [`mab::Bandit`] — not
    /// just the three algorithms evaluated in the paper — can schedule seeds.
    /// The `config.algorithm` field is ignored; everything else (arms, α, γ,
    /// campaign budget) applies as usual.
    ///
    /// # Panics
    ///
    /// Panics if the bandit's arm count differs from `config.arms()`.
    pub fn with_bandit(
        processor: Arc<dyn Processor>,
        config: MabFuzzConfig,
        bandit: Box<dyn Bandit>,
        rng_seed: u64,
    ) -> MabFuzzer {
        assert_eq!(
            bandit.arms(),
            config.arms(),
            "the bandit must have exactly one arm per seed"
        );
        let harness = FuzzHarness::new(processor, config.campaign.max_steps_per_test);
        let seeds = SeedGenerator::new(config.campaign.generator.clone());
        let mutator = MutationEngine::new(config.campaign.generator.clone());
        MabFuzzer { harness, config, bandit, rng: StdRng::seed_from_u64(rng_seed), seeds, mutator }
    }

    /// Returns the campaign configuration.
    pub fn config(&self) -> &MabFuzzConfig {
        &self.config
    }

    /// Runs the campaign to completion.
    pub fn run(mut self) -> MabFuzzOutcome {
        let label = format!("{} on {}", self.config.label(), self.harness.processor().name());
        let space_len = self.harness.coverage_space_len();
        let mut stats =
            CampaignStats::new(label, space_len, self.config.campaign.sample_interval);
        let reward_params = RewardParams::new(self.config.alpha);
        let arm_count = self.config.arms();
        let mut monitor = SaturationMonitor::new(arm_count, self.config.gamma);

        // One seed per arm (Fig. 2: "Given a seed pool with each seed
        // corresponding to an arm").
        let mut arms: Vec<Arm> = (0..arm_count)
            .map(|index| Arm::new(index, self.seeds.generate_seed(&mut self.rng), space_len))
            .collect();
        let mut total_resets = 0u64;
        let mut scratch = ExecScratch::new();

        while stats.tests_executed() < self.config.campaign.max_tests {
            // 1. Select an arm.
            let arm_index = self.bandit.select(&mut self.rng);
            let arm = &mut arms[arm_index];

            // 2. Pop the arm's next test; an empty pool is refilled by
            //    mutating the arm's seed so the arm always has something to
            //    offer (the seed itself has already been simulated by then).
            let test = match arm.next_test() {
                Some(test) => test,
                None => {
                    let (mutant, _) = self.mutator.mutate(&arm.seed().program, &mut self.rng);
                    let child = self.seeds.adopt_child(&arm.seed().clone(), mutant);
                    arm.pool_mut().push(child);
                    arm.next_test().expect("pool was just refilled")
                }
            };

            // 3. Simulate and compare.
            let outcome = self.harness.run_program_into(&test.program, &mut scratch);

            // 4. Coverage bookkeeping: global novelty first (cov_G), then the
            //    arm-local novelty (cov_L ⊇ cov_G). Only the counts are
            //    needed for the reward, so no id vectors are materialised.
            let detected = outcome.detected_mismatch();
            let global_new = stats.record_test_count(test.id, outcome.coverage, outcome.diff);
            let local_new = arm.absorb_coverage(outcome.coverage);

            if self.config.campaign.stop_on_first_detection && detected {
                break;
            }

            // 5. Mutate interesting tests into the arm's pool.
            if local_new > 0 {
                for _ in 0..self.config.campaign.mutations_per_interesting_test {
                    let (mutant, _) = self.mutator.mutate(&test.program, &mut self.rng);
                    let child = self.seeds.adopt_child(&test, mutant);
                    arms[arm_index].pool_mut().push(child);
                }
            }

            // 6. Reward the bandit.
            let reward = match self.bandit.kind() {
                mab::BanditKind::Exp3 => {
                    reward_params.normalized_reward(local_new, global_new, space_len)
                }
                _ => reward_params.reward(local_new, global_new),
            };
            self.bandit.update(arm_index, reward);

            // 7. Reset saturated arms.
            if monitor.record(arm_index, local_new) {
                let fresh = self.seeds.generate_seed(&mut self.rng);
                arms[arm_index].reset(fresh);
                self.bandit.reset_arm(arm_index);
                monitor.reset_arm(arm_index);
                total_resets += 1;
            }
        }

        stats.finish();
        let arm_summaries = arms
            .iter()
            .map(|arm| ArmSummary {
                index: arm.index(),
                pulls: arm.total_pulls(),
                resets: arm.resets(),
                final_local_coverage: arm.local_coverage().count(),
            })
            .collect();
        MabFuzzOutcome { stats, arms: arm_summaries, total_resets }
    }
}

impl std::fmt::Debug for MabFuzzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MabFuzzer")
            .field("processor", &self.harness.processor().name())
            .field("algorithm", &self.config.algorithm)
            .field("arms", &self.config.arms())
            .field("max_tests", &self.config.campaign.max_tests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mab::BanditKind;
    use proc_sim::{cores::Cva6Core, cores::RocketCore, BugSet, Vulnerability};

    fn quick_config(kind: BanditKind, max_tests: u64) -> MabFuzzConfig {
        let mut config = MabFuzzConfig::new(kind).with_arms(4).with_max_tests(max_tests);
        config.campaign.max_steps_per_test = 200;
        config.campaign.mutations_per_interesting_test = 2;
        config.campaign.sample_interval = 5;
        config
    }

    #[test]
    fn campaign_runs_to_the_test_budget_for_every_algorithm() {
        for kind in BanditKind::ALL {
            let processor = Arc::new(RocketCore::new(BugSet::none()));
            let outcome = MabFuzzer::new(processor, quick_config(kind, 25), 3).run();
            assert_eq!(outcome.stats.tests_executed(), 25, "{kind}");
            assert!(outcome.stats.final_coverage() > 100, "{kind}");
            assert_eq!(outcome.arms.len(), 4);
            let pulls: u64 = outcome.arms.iter().map(|a| a.pulls).sum();
            assert!(pulls >= 25, "every executed test is a pull of some arm");
        }
    }

    #[test]
    fn campaigns_are_reproducible_per_rng_seed() {
        let a = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Ucb1, 20),
            11,
        )
        .run();
        let b = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Ucb1, 20),
            11,
        )
        .run();
        assert_eq!(a.stats.final_coverage(), b.stats.final_coverage());
        assert_eq!(a.stats.cumulative().history(), b.stats.cumulative().history());
        assert_eq!(a.total_resets, b.total_resets);
    }

    #[test]
    fn saturated_arms_get_reset_in_long_campaigns() {
        let mut config = quick_config(BanditKind::EpsilonGreedy, 120).with_gamma(2);
        config.campaign.mutations_per_interesting_test = 1;
        let outcome =
            MabFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), config, 5).run();
        assert!(outcome.total_resets > 0, "a 120-test campaign with gamma=2 must reset arms");
        let resets_from_arms: u64 = outcome.arms.iter().map(|a| a.resets).sum();
        assert_eq!(resets_from_arms, outcome.total_resets);
    }

    #[test]
    fn detection_mode_stops_on_the_first_mismatch() {
        let processor = Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let mut config = quick_config(BanditKind::Ucb1, 400);
        config.campaign.stop_on_first_detection = true;
        let outcome = MabFuzzer::new(processor, config, 2).run();
        let detection = outcome.stats.first_detection().expect("V5 triggers quickly");
        assert_eq!(outcome.stats.tests_executed(), detection);
    }

    #[test]
    fn custom_bandits_can_drive_the_fuzzer() {
        /// A deliberately naive policy: round-robin over the arms.
        struct RoundRobin {
            arms: usize,
            next: usize,
            pulls: Vec<u64>,
        }
        impl mab::Bandit for RoundRobin {
            fn kind(&self) -> BanditKind {
                BanditKind::EpsilonGreedy
            }
            fn arms(&self) -> usize {
                self.arms
            }
            fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
                let arm = self.next;
                self.next = (self.next + 1) % self.arms;
                arm
            }
            fn update(&mut self, arm: usize, _reward: f64) {
                self.pulls[arm] += 1;
            }
            fn reset_arm(&mut self, arm: usize) {
                self.pulls[arm] = 0;
            }
            fn value(&self, _arm: usize) -> f64 {
                0.0
            }
            fn pulls(&self, arm: usize) -> u64 {
                self.pulls[arm]
            }
        }

        let config = quick_config(BanditKind::Ucb1, 12);
        let bandit = Box::new(RoundRobin { arms: config.arms(), next: 0, pulls: vec![0; config.arms()] });
        let outcome = MabFuzzer::with_bandit(
            Arc::new(RocketCore::new(BugSet::none())),
            config,
            bandit,
            4,
        )
        .run();
        assert_eq!(outcome.stats.tests_executed(), 12);
        // Round-robin spreads the twelve pulls evenly over the four arms.
        assert!(outcome.arms.iter().all(|a| a.pulls == 3));
    }

    #[test]
    #[should_panic(expected = "one arm per seed")]
    fn mismatched_bandit_arm_count_panics() {
        let config = quick_config(BanditKind::Ucb1, 5);
        let bandit: Box<dyn mab::Bandit> = Box::new(mab::Ucb1::new(2));
        let _ = MabFuzzer::with_bandit(Arc::new(RocketCore::new(BugSet::none())), config, bandit, 1);
    }

    #[test]
    fn debug_format_names_the_configuration() {
        let fuzzer = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Exp3, 5),
            1,
        );
        let text = format!("{fuzzer:?}");
        assert!(text.contains("rocket"));
        assert!(text.contains("Exp3"));
        assert_eq!(fuzzer.config().algorithm, BanditKind::Exp3);
    }
}
