//! The MABFuzz orchestrator (Fig. 2 of the paper).
//!
//! Since the `Campaign` session redesign, the execution loop itself lives in
//! [`crate::campaign`]; [`MabFuzzer`] remains as the stable, imperative
//! compatibility surface (`new` / `with_bandit` / `run` / `run_sharded`)
//! over [`Campaign`]. New code should prefer
//! [`CampaignSpec`](crate::CampaignSpec) + `Campaign::from_spec` — see the
//! migration note in `CHANGES.md`.

use std::sync::Arc;

use fuzzer::{CampaignStats, ShardPlan};
use mab::Bandit;
use proc_sim::Processor;
use serde::{Deserialize, Serialize};

use crate::campaign::{Campaign, MabSession};
use crate::config::MabFuzzConfig;

/// Per-arm summary included in the campaign outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmSummary {
    /// Arm index.
    pub index: usize,
    /// Total pulls across the campaign.
    pub pulls: u64,
    /// Number of times the arm was reset.
    pub resets: u64,
    /// Coverage points reached by the arm's final seed family.
    pub final_local_coverage: usize,
}

/// The result of one MABFuzz campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MabFuzzOutcome {
    /// The shared campaign statistics (coverage curve, detections, …).
    pub stats: CampaignStats,
    /// Per-arm activity summary.
    pub arms: Vec<ArmSummary>,
    /// Total number of arm resets across the campaign.
    pub total_resets: u64,
}

/// The MABFuzz fuzzer: a multi-armed-bandit seed scheduler wrapped around the
/// same simulate–compare–mutate loop as the baseline.
///
/// One fuzzing iteration (one "pull") follows Fig. 2 of the paper:
///
/// 1. the bandit selects an arm,
/// 2. the next test from that arm's pool is simulated on the DUT and the
///    golden model (differential testing),
/// 3. the test's coverage is folded into the arm-local and global coverage,
///    yielding `|cov_L|` and `|cov_G|`,
/// 4. if the test found new coverage it is mutated and its children join the
///    arm's pool,
/// 5. the reward `α·|cov_L| + (1 − α)·|cov_G|` (normalised for EXP3) updates
///    the bandit,
/// 6. the γ-window monitor decides whether the arm is depleted; if so the arm
///    is reset: fresh seed, cleared pool and local coverage, and re-initialised
///    bandit statistics.
///
/// `MabFuzzer` is the legacy imperative constructor for this loop; it is a
/// thin wrapper over the [`Campaign`] session type, which new code should
/// reach through a declarative [`CampaignSpec`](crate::CampaignSpec)
/// (`Campaign::from_spec(...).execute()`) instead — specs serialize, carry
/// the shard plan and RNG seed, and accept custom registered policies by
/// name. Attach streaming observers via
/// [`Campaign::with_observer`](crate::Campaign::with_observer).
pub struct MabFuzzer {
    session: MabSession,
}

impl MabFuzzer {
    /// Creates a MABFuzz campaign for `processor` with reproducible
    /// randomness derived from `rng_seed`.
    pub fn new(processor: Arc<dyn Processor>, config: MabFuzzConfig, rng_seed: u64) -> MabFuzzer {
        let bandit = config.build_bandit();
        MabFuzzer::with_bandit(processor, config, bandit, rng_seed)
    }

    /// Creates a MABFuzz campaign driven by a caller-supplied bandit policy.
    ///
    /// This is the hook that makes MABFuzz "agnostic to any MAB algorithm"
    /// (paper contribution 3): anything implementing [`mab::Bandit`] — not
    /// just the three algorithms evaluated in the paper — can schedule seeds.
    /// The `config.algorithm` field is ignored; everything else (arms, α, γ,
    /// campaign budget) applies as usual. (Policies registered through
    /// [`mab::register_policy`] no longer need this hook: name them in a
    /// [`CampaignSpec`](crate::CampaignSpec) instead.)
    ///
    /// # Panics
    ///
    /// Panics if the bandit's arm count differs from `config.arms()`.
    pub fn with_bandit(
        processor: Arc<dyn Processor>,
        config: MabFuzzConfig,
        bandit: Box<dyn Bandit>,
        rng_seed: u64,
    ) -> MabFuzzer {
        assert_eq!(
            bandit.arms(),
            config.arms(),
            "the bandit must have exactly one arm per seed"
        );
        MabFuzzer { session: MabSession::new(processor, config, bandit, rng_seed) }
    }

    /// Returns the campaign configuration.
    pub fn config(&self) -> &MabFuzzConfig {
        &self.session.config
    }

    /// Runs the campaign to completion on the legacy serial plan (one test
    /// per bandit round, no shard workers).
    ///
    /// Exactly equivalent to `run_sharded(&ShardPlan::serial())`; every
    /// published paper artefact goes through this path, and the sharded
    /// loop reproduces its RNG stream draw-for-draw in the batch-size-1
    /// case.
    pub fn run(self) -> MabFuzzOutcome {
        self.run_sharded(&ShardPlan::serial())
    }

    /// Runs the campaign to completion under `plan`, simulating each bandit
    /// round's test batch across the plan's shard workers and folding the
    /// observations back in `test_index` order.
    ///
    /// The campaign report is **byte-identical for every shard count** at a
    /// fixed batch size — see the determinism contract in
    /// [`fuzzer::shard`]. The loop itself lives in the [`Campaign`] session
    /// type; this wrapper hands it the assembled session.
    pub fn run_sharded(self, plan: &ShardPlan) -> MabFuzzOutcome {
        Campaign::from_session(self.session, *plan).execute()
    }
}

impl std::fmt::Debug for MabFuzzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MabFuzzer")
            .field("processor", &self.session.harness.processor().name())
            .field("algorithm", &self.session.config.algorithm)
            .field("arms", &self.session.config.arms())
            .field("max_tests", &self.session.config.campaign.max_tests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mab::BanditKind;
    use proc_sim::{cores::Cva6Core, cores::RocketCore, BugSet, Vulnerability};

    fn quick_config(kind: BanditKind, max_tests: u64) -> MabFuzzConfig {
        let mut config = MabFuzzConfig::new(kind).with_arms(4).with_max_tests(max_tests);
        config.campaign.max_steps_per_test = 200;
        config.campaign.mutations_per_interesting_test = 2;
        config.campaign.sample_interval = 5;
        config
    }

    #[test]
    fn campaign_runs_to_the_test_budget_for_every_algorithm() {
        for kind in BanditKind::ALL {
            let processor = Arc::new(RocketCore::new(BugSet::none()));
            let outcome = MabFuzzer::new(processor, quick_config(kind, 25), 3).run();
            assert_eq!(outcome.stats.tests_executed(), 25, "{kind}");
            assert!(outcome.stats.final_coverage() > 100, "{kind}");
            assert_eq!(outcome.arms.len(), 4);
            let pulls: u64 = outcome.arms.iter().map(|a| a.pulls).sum();
            assert!(pulls >= 25, "every executed test is a pull of some arm");
        }
    }

    #[test]
    fn campaigns_are_reproducible_per_rng_seed() {
        let a = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Ucb1, 20),
            11,
        )
        .run();
        let b = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Ucb1, 20),
            11,
        )
        .run();
        assert_eq!(a.stats.final_coverage(), b.stats.final_coverage());
        assert_eq!(a.stats.cumulative().history(), b.stats.cumulative().history());
        assert_eq!(a.total_resets, b.total_resets);
    }

    #[test]
    fn saturated_arms_get_reset_in_long_campaigns() {
        let mut config = quick_config(BanditKind::EpsilonGreedy, 120).with_gamma(2);
        config.campaign.mutations_per_interesting_test = 1;
        let outcome =
            MabFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), config, 5).run();
        assert!(outcome.total_resets > 0, "a 120-test campaign with gamma=2 must reset arms");
        let resets_from_arms: u64 = outcome.arms.iter().map(|a| a.resets).sum();
        assert_eq!(resets_from_arms, outcome.total_resets);
    }

    #[test]
    fn detection_mode_stops_on_the_first_mismatch() {
        let processor = Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let mut config = quick_config(BanditKind::Ucb1, 400);
        config.campaign.stop_on_first_detection = true;
        let outcome = MabFuzzer::new(processor, config, 2).run();
        let detection = outcome.stats.first_detection().expect("V5 triggers quickly");
        assert_eq!(outcome.stats.tests_executed(), detection);
    }

    #[test]
    fn custom_bandits_can_drive_the_fuzzer() {
        /// A deliberately naive policy: round-robin over the arms.
        struct RoundRobin {
            arms: usize,
            next: usize,
            pulls: Vec<u64>,
        }
        impl mab::Bandit for RoundRobin {
            fn kind(&self) -> BanditKind {
                BanditKind::EpsilonGreedy
            }
            fn arms(&self) -> usize {
                self.arms
            }
            fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
                let arm = self.next;
                self.next = (self.next + 1) % self.arms;
                arm
            }
            fn update(&mut self, arm: usize, _reward: f64) {
                self.pulls[arm] += 1;
            }
            fn reset_arm(&mut self, arm: usize) {
                self.pulls[arm] = 0;
            }
            fn value(&self, _arm: usize) -> f64 {
                0.0
            }
            fn pulls(&self, arm: usize) -> u64 {
                self.pulls[arm]
            }
        }

        let config = quick_config(BanditKind::Ucb1, 12);
        let bandit = Box::new(RoundRobin { arms: config.arms(), next: 0, pulls: vec![0; config.arms()] });
        let outcome = MabFuzzer::with_bandit(
            Arc::new(RocketCore::new(BugSet::none())),
            config,
            bandit,
            4,
        )
        .run();
        assert_eq!(outcome.stats.tests_executed(), 12);
        // Round-robin spreads the twelve pulls evenly over the four arms.
        assert!(outcome.arms.iter().all(|a| a.pulls == 3));
    }

    #[test]
    #[should_panic(expected = "one arm per seed")]
    fn mismatched_bandit_arm_count_panics() {
        let config = quick_config(BanditKind::Ucb1, 5);
        let bandit: Box<dyn mab::Bandit> = Box::new(mab::Ucb1::new(2));
        let _ = MabFuzzer::with_bandit(Arc::new(RocketCore::new(BugSet::none())), config, bandit, 1);
    }

    #[test]
    fn sharded_reports_are_identical_for_every_shard_count() {
        // The in-crate smoke version of the cross-crate equivalence suite:
        // same plan batch size, different shard counts, byte-identical
        // outcome (including arm summaries and reset counts).
        let plan = |shards: usize| ShardPlan::sharded(shards).with_batch_size(5);
        let reference = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Ucb1, 42),
            9,
        )
        .run_sharded(&plan(1));
        assert_eq!(reference.stats.tests_executed(), 42);
        for shards in [2usize, 3] {
            let sharded = MabFuzzer::new(
                Arc::new(RocketCore::new(BugSet::none())),
                quick_config(BanditKind::Ucb1, 42),
                9,
            )
            .run_sharded(&plan(shards));
            assert_eq!(reference, sharded, "{shards} shards diverged from 1 shard");
        }
    }

    #[test]
    fn serial_plan_reproduces_run_exactly() {
        let make = || {
            MabFuzzer::new(
                Arc::new(RocketCore::new(BugSet::none())),
                quick_config(BanditKind::Exp3, 30),
                17,
            )
        };
        let via_run = make().run();
        let via_plan = make().run_sharded(&ShardPlan::serial());
        assert_eq!(via_run, via_plan);
    }

    #[test]
    fn sharded_detection_mode_stops_on_the_first_mismatch() {
        let processor = Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let mut config = quick_config(BanditKind::Ucb1, 400);
        config.campaign.stop_on_first_detection = true;
        let outcome = MabFuzzer::new(processor, config, 2)
            .run_sharded(&ShardPlan::sharded(2).with_batch_size(8));
        let detection = outcome.stats.first_detection().expect("V5 triggers quickly");
        assert_eq!(
            outcome.stats.tests_executed(),
            detection,
            "outcomes after the detection are discarded unrecorded"
        );
    }

    #[test]
    fn debug_format_names_the_configuration() {
        let fuzzer = MabFuzzer::new(
            Arc::new(RocketCore::new(BugSet::none())),
            quick_config(BanditKind::Exp3, 5),
            1,
        );
        let text = format!("{fuzzer:?}");
        assert!(text.contains("rocket"));
        assert!(text.contains("Exp3"));
        assert_eq!(fuzzer.config().algorithm, BanditKind::Exp3);
    }
}
