//! Buffered JSONL sink for campaign event streams — the first production
//! consumer of the [`CampaignObserver`] seam.
//!
//! An [`EventLog`] renders every event of one campaign as one compact JSON
//! object per line, in the exact deterministic order the fold emits them
//! (see the event-ordering contract in [`observer`](crate::observer)).
//! Because the fold order is shard-independent, the written stream is
//! **byte-identical for every shard count** at a fixed batch size — which is
//! what lets `experiments run --events out.jsonl` be golden-pinned and
//! `cmp`-checked across `--shards 1` and `--shards 4` in CI.
//!
//! Rendering is by hand with fixed field order and shortest-round-trip float
//! formatting, exactly like the report renderers in `mabfuzz-bench`: the
//! stream is a stable machine-readable artefact, not a debug dump.
//!
//! Write errors cannot influence the campaign (observers are effect-free by
//! contract): the log reports the first error to stderr, drops the rest of
//! the stream, and raises its [`EventLogHealth`] flag so the caller can fail
//! loudly *after* the campaign finished.
//!
//! # Example
//!
//! ```
//! use mabfuzz::{Campaign, CampaignSpec, EventLog, SharedBuffer};
//! use proc_sim::{cores::RocketCore, BugSet};
//! use std::sync::Arc;
//!
//! let spec = CampaignSpec::builder().max_tests(20).build().unwrap();
//! let buffer = SharedBuffer::new();
//! let log = EventLog::new(buffer.clone());
//! let health = log.health();
//! Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
//!     .unwrap()
//!     .with_observer(Box::new(log))
//!     .execute();
//! assert!(!health.failed());
//! let stream = buffer.contents();
//! assert_eq!(stream.lines().filter(|l| l.contains("\"test_folded\"")).count(), 20);
//! assert!(stream.lines().last().unwrap().starts_with("{\"event\":\"campaign_finished\""));
//! ```

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::json_text::{push_json_float, push_json_string};
use crate::observer::{
    ArmReset, ArmSelected, BatchFolded, CampaignFinished, CampaignObserver, CoverageMilestone,
    DetectionObserved, TestFolded,
};

/// Shared health flag of an [`EventLog`]: raised on the first write or flush
/// error, after which the log drops the remaining stream.
///
/// The campaign consumes its observers, so the flag is the channel through
/// which a caller learns — after `execute()` returns — that the written
/// stream is truncated and must not be trusted (or golden-compared).
#[derive(Debug, Clone, Default)]
pub struct EventLogHealth(Arc<AtomicBool>);

impl EventLogHealth {
    /// Returns `true` when the log hit a write or flush error and truncated
    /// the stream.
    pub fn failed(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    fn raise(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// A buffered JSONL event sink: one compact JSON object per event, one event
/// per line, in deterministic fold order.
pub struct EventLog<W: Write + Send> {
    writer: W,
    /// Per-event line buffer, reused so the steady-state stream costs no
    /// allocation beyond the writer's own buffering.
    line: String,
    health: EventLogHealth,
}

impl EventLog<BufWriter<File>> {
    /// Creates (truncating) `path` and logs to it through a buffer sized for
    /// per-test event rates; the stream is flushed at `campaign_finished`.
    ///
    /// # Errors
    ///
    /// Any error of [`File::create`].
    pub fn create(path: impl AsRef<Path>) -> io::Result<EventLog<BufWriter<File>>> {
        Ok(EventLog::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> EventLog<W> {
    /// Wraps an arbitrary writer. Callers providing an unbuffered writer
    /// (a raw `File`, a socket) should wrap it in a [`BufWriter`] — the log
    /// writes once per event.
    pub fn new(writer: W) -> EventLog<W> {
        EventLog { writer, line: String::new(), health: EventLogHealth::default() }
    }

    /// Returns the log's shared health flag; clone it before boxing the log
    /// into a campaign to check for truncation after the run.
    pub fn health(&self) -> EventLogHealth {
        self.health.clone()
    }

    /// Writes the assembled line, raising the health flag (and reporting to
    /// stderr, once) on the first error.
    fn emit(&mut self) {
        if self.health.failed() {
            return;
        }
        self.line.push('\n');
        if let Err(error) = self.writer.write_all(self.line.as_bytes()) {
            self.health.raise();
            eprintln!("EventLog: dropping the event stream after a write error: {error}");
        }
    }
}

impl<W: Write + Send> CampaignObserver for EventLog<W> {
    fn arm_selected(&mut self, event: &ArmSelected) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"event\":\"arm_selected\",\"round\":{},\"arm\":{},\"batch_len\":{}}}",
            event.round, event.arm, event.batch_len
        );
        self.emit();
    }

    fn test_folded(&mut self, event: &TestFolded<'_>) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"event\":\"test_folded\",\"test_number\":{},\"test_id\":{},\"arm\":{},\
             \"local_new\":{},\"global_new\":{},\"covered\":{},\"reward\":",
            event.test_number, event.test_id.0, event.arm, event.local_new, event.global_new,
            event.covered
        );
        push_json_float(&mut self.line, event.reward);
        let _ = write!(self.line, ",\"detected\":{}}}", event.detected);
        self.emit();
    }

    fn batch_folded(&mut self, event: &BatchFolded) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"event\":\"batch_folded\",\"round\":{},\"arm\":{},\"tests\":{}}}",
            event.round, event.arm, event.tests
        );
        self.emit();
    }

    fn detection(&mut self, event: &DetectionObserved<'_>) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"event\":\"detection\",\"test_number\":{},\"test_id\":{},\"arm\":{},\
             \"mismatches\":{},\"summary\":",
            event.test_number,
            event.test_id.0,
            event.arm,
            event.diff.len()
        );
        push_json_string(&mut self.line, &event.summary());
        self.line.push('}');
        self.emit();
    }

    fn arm_reset(&mut self, event: &ArmReset) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"event\":\"arm_reset\",\"arm\":{},\"test_number\":{},\"total_resets\":{}}}",
            event.arm, event.test_number, event.total_resets
        );
        self.emit();
    }

    fn coverage_milestone(&mut self, event: &CoverageMilestone) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"event\":\"coverage_milestone\",\"decile\":{},\"covered\":{},\
             \"space_len\":{},\"test_number\":{}}}",
            event.decile, event.covered, event.space_len, event.test_number
        );
        self.emit();
    }

    fn campaign_finished(&mut self, event: &CampaignFinished) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"event\":\"campaign_finished\",\"tests_executed\":{},\"final_coverage\":{},\
             \"total_resets\":{}}}",
            event.tests_executed, event.final_coverage, event.total_resets
        );
        self.emit();
        if !self.health.failed() {
            if let Err(error) = self.writer.flush() {
                self.health.raise();
                eprintln!("EventLog: final flush failed: {error}");
            }
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for EventLog<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog").field("failed", &self.health.failed()).finish()
    }
}

/// A cloneable in-memory byte sink (`Arc<Mutex<Vec<u8>>>` behind a `Write`
/// impl) for capturing an event stream without a file: tests, equivalence
/// checks, or a service layer polling the buffer while the campaign runs on
/// another thread.
///
/// [`failing_after`](SharedBuffer::failing_after) builds a fault-injecting
/// variant for exercising consumer error paths: writes succeed until the
/// buffer holds the configured number of bytes, a write straddling the limit
/// is *short* (the prefix up to the limit is accepted), and every write after
/// that fails with an I/O error — the behaviour of a disk filling up, without
/// a disk.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
    /// Total bytes accepted before writes start failing (`None` = unlimited).
    fail_after: Option<usize>,
}

impl SharedBuffer {
    /// An empty buffer that accepts every write.
    pub fn new() -> SharedBuffer {
        SharedBuffer::default()
    }

    /// An empty buffer that accepts exactly `limit` bytes: the write that
    /// crosses the limit is short (its prefix is kept), and every subsequent
    /// write fails with an I/O error. `failing_after(0)` fails from the
    /// first write.
    pub fn failing_after(limit: usize) -> SharedBuffer {
        SharedBuffer { bytes: Arc::default(), fail_after: Some(limit) }
    }

    /// Returns a copy of the buffered bytes as a string (event streams are
    /// always UTF-8 JSON).
    ///
    /// # Panics
    ///
    /// Panics when the buffer holds non-UTF-8 bytes — impossible for bytes
    /// written by an [`EventLog`].
    pub fn contents(&self) -> String {
        String::from_utf8(self.bytes.lock().expect("buffer lock").clone())
            .expect("event streams are UTF-8")
    }

    /// Number of bytes currently buffered.
    pub fn len(&self) -> usize {
        self.bytes.lock().expect("buffer lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut bytes = self.bytes.lock().expect("buffer lock");
        if let Some(limit) = self.fail_after {
            let remaining = limit.saturating_sub(bytes.len());
            if remaining == 0 {
                return Err(io::Error::other(format!(
                    "SharedBuffer: simulated write failure after {limit} bytes"
                )));
            }
            if buf.len() > remaining {
                bytes.extend_from_slice(&buf[..remaining]);
                return Ok(remaining);
            }
        }
        bytes.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A cloneable, append-only event-stream fan-out: one writer (an
/// [`EventLog`] attached to the running campaign), any number of concurrent
/// subscribers, each reading the same byte stream from any offset — the
/// sink behind the campaign service's `GET /campaigns/{id}/events`.
///
/// The broadcast keeps the full history, so a subscriber arriving *after*
/// the campaign finished replays the complete stream; because the stream is
/// deterministic (see the event-ordering contract in
/// [`observer`](crate::observer)), every subscriber — early, late, or
/// reconnecting — observes byte-identical history. [`close`] marks the end
/// of the stream and wakes all blocked readers.
///
/// [`close`]: EventBroadcast::close
///
/// # Example
///
/// ```
/// use mabfuzz::EventBroadcast;
/// use std::io::Write as _;
///
/// let broadcast = EventBroadcast::new();
/// let mut writer = broadcast.clone();
/// writer.write_all(b"{\"event\":\"x\"}\n").unwrap();
/// broadcast.close();
///
/// let mut offset = 0;
/// while let Some(bytes) = broadcast.wait_from(offset) {
///     offset += bytes.len();
/// }
/// assert_eq!(offset, 14, "the subscriber drained the whole stream");
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventBroadcast {
    shared: Arc<BroadcastShared>,
}

#[derive(Debug, Default)]
struct BroadcastShared {
    state: Mutex<BroadcastState>,
    arrived: Condvar,
}

#[derive(Debug, Default)]
struct BroadcastState {
    bytes: Vec<u8>,
    closed: bool,
}

impl EventBroadcast {
    /// An empty, open broadcast.
    pub fn new() -> EventBroadcast {
        EventBroadcast::default()
    }

    /// Marks the end of the stream and wakes every blocked reader.
    /// Idempotent; writes after `close` are still recorded (the campaign
    /// owns the writer — closing is the *publisher's* end-of-stream marker,
    /// emitted once execution returned).
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("broadcast lock");
        state.closed = true;
        self.shared.arrived.notify_all();
    }

    /// Whether the publisher closed the stream.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().expect("broadcast lock").closed
    }

    /// Number of bytes published so far.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("broadcast lock").bytes.len()
    }

    /// Whether no bytes have been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the full stream so far.
    pub fn snapshot(&self) -> Vec<u8> {
        self.shared.state.lock().expect("broadcast lock").bytes.clone()
    }

    /// Blocks until bytes beyond `offset` exist (returning a copy of them)
    /// or the stream is closed with nothing left to read (returning `None`).
    /// Subscribers drain the stream with a cursor:
    /// `while let Some(bytes) = broadcast.wait_from(offset) { offset += bytes.len(); … }`.
    pub fn wait_from(&self, offset: usize) -> Option<Vec<u8>> {
        let mut state = self.shared.state.lock().expect("broadcast lock");
        loop {
            if state.bytes.len() > offset {
                return Some(state.bytes[offset..].to_vec());
            }
            if state.closed {
                return None;
            }
            state = self.shared.arrived.wait(state).expect("broadcast lock");
        }
    }
}

impl Write for EventBroadcast {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.shared.state.lock().expect("broadcast lock");
        state.bytes.extend_from_slice(buf);
        self.shared.arrived.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzer::TestId;

    /// A writer that fails after `allow` successful writes.
    struct Flaky {
        allow: usize,
    }

    impl Write for Flaky {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.allow == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.allow -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_render_one_compact_json_line_each() {
        let buffer = SharedBuffer::new();
        let mut log = EventLog::new(buffer.clone());
        log.arm_selected(&ArmSelected { round: 0, arm: 2, batch_len: 4 });
        log.arm_reset(&ArmReset { arm: 1, test_number: 9, total_resets: 3 });
        log.coverage_milestone(&CoverageMilestone {
            decile: 2,
            covered: 120,
            space_len: 600,
            test_number: 9,
        });
        log.batch_folded(&BatchFolded { round: 0, arm: 2, tests: 4 });
        log.campaign_finished(&CampaignFinished {
            tests_executed: 9,
            final_coverage: 120,
            total_resets: 3,
        });
        assert_eq!(
            buffer.contents(),
            "{\"event\":\"arm_selected\",\"round\":0,\"arm\":2,\"batch_len\":4}\n\
             {\"event\":\"arm_reset\",\"arm\":1,\"test_number\":9,\"total_resets\":3}\n\
             {\"event\":\"coverage_milestone\",\"decile\":2,\"covered\":120,\"space_len\":600,\"test_number\":9}\n\
             {\"event\":\"batch_folded\",\"round\":0,\"arm\":2,\"tests\":4}\n\
             {\"event\":\"campaign_finished\",\"tests_executed\":9,\"final_coverage\":120,\"total_resets\":3}\n"
        );
        assert!(!log.health().failed());
    }

    #[test]
    fn test_folded_renders_rewards_shortest_round_trip() {
        let buffer = SharedBuffer::new();
        let mut log = EventLog::new(buffer.clone());
        let map = coverage::CoverageMap::with_len(8);
        let diff = fuzzer::DiffReport::default();
        log.test_folded(&TestFolded {
            test_number: 7,
            test_id: TestId(42),
            arm: 3,
            local_new: 5,
            global_new: 2,
            covered: 77,
            reward: 2.75,
            detected: false,
            coverage: &map,
            diff: &diff,
        });
        assert_eq!(
            buffer.contents(),
            "{\"event\":\"test_folded\",\"test_number\":7,\"test_id\":42,\"arm\":3,\
             \"local_new\":5,\"global_new\":2,\"covered\":77,\"reward\":2.75,\
             \"detected\":false}\n"
        );
    }

    #[test]
    fn write_errors_raise_the_health_flag_and_stop_the_stream() {
        let mut log = EventLog::new(Flaky { allow: 1 });
        let health = log.health();
        log.arm_selected(&ArmSelected { round: 0, arm: 0, batch_len: 1 });
        assert!(!health.failed(), "the first write succeeds");
        log.batch_folded(&BatchFolded { round: 0, arm: 0, tests: 1 });
        assert!(health.failed(), "the second write hits the error");
        // Subsequent events are dropped silently, no panic.
        log.arm_selected(&ArmSelected { round: 1, arm: 0, batch_len: 1 });
    }

    #[test]
    fn failing_shared_buffers_accept_the_limit_then_error() {
        let mut buffer = SharedBuffer::failing_after(10);
        assert_eq!(buffer.write(b"12345").unwrap(), 5, "under the limit: full write");
        assert_eq!(buffer.write(b"abcdefgh").unwrap(), 5, "straddling the limit: short write");
        let error = buffer.write(b"x").expect_err("the limit is reached");
        assert!(error.to_string().contains("after 10 bytes"), "{error}");
        assert_eq!(buffer.contents(), "12345abcde", "the accepted prefix is kept");
        let mut dead = SharedBuffer::failing_after(0);
        dead.write(b"x").expect_err("failing_after(0) rejects the first write");
    }

    #[test]
    fn short_writers_raise_the_health_flag_without_panicking() {
        // `write_all` retries a short write, so the straddling event sees
        // Ok(partial) then Err — the log must fold both into the same
        // raise-once, drop-the-rest behaviour a plain error gets.
        let buffer = SharedBuffer::failing_after(40);
        let mut log = EventLog::new(buffer.clone());
        let health = log.health();
        for round in 0..4u64 {
            log.arm_selected(&ArmSelected { round, arm: 0, batch_len: 1 });
        }
        log.campaign_finished(&CampaignFinished {
            tests_executed: 4,
            final_coverage: 1,
            total_resets: 0,
        });
        assert!(health.failed(), "the limit is hit mid-stream");
        assert_eq!(buffer.len(), 40, "exactly the limit's prefix was written");
        let contents = buffer.contents();
        assert!(
            !contents.contains("campaign_finished"),
            "events after the failure are dropped: {contents}"
        );
    }

    #[test]
    fn failing_event_logs_never_perturb_the_campaign() {
        use crate::{Campaign, CampaignSpec};
        use proc_sim::{cores::RocketCore, BugSet};
        use std::sync::Arc;

        let spec = CampaignSpec::builder().max_tests(30).rng_seed(4).build().unwrap();
        let plain = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .execute();
        let buffer = SharedBuffer::failing_after(100);
        let log = EventLog::new(buffer.clone());
        let health = log.health();
        let observed = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
            .unwrap()
            .with_observer(Box::new(log))
            .execute();
        assert_eq!(plain, observed, "a failing sink cannot change the campaign");
        assert!(health.failed(), "100 bytes cannot hold a 30-test stream");
        assert!(buffer.len() <= 100);
    }

    #[test]
    fn broadcasts_fan_out_replay_and_close() {
        let broadcast = EventBroadcast::new();
        let mut log = EventLog::new(broadcast.clone());
        log.arm_selected(&ArmSelected { round: 0, arm: 1, batch_len: 2 });
        // An early subscriber sees the published prefix without blocking.
        let first = broadcast.wait_from(0).expect("bytes are available");
        assert!(first.starts_with(b"{\"event\":\"arm_selected\""));
        log.batch_folded(&BatchFolded { round: 0, arm: 1, tests: 2 });
        broadcast.close();
        assert!(broadcast.is_closed());
        // A late subscriber replays the identical full stream, then drains.
        let mut replay = Vec::new();
        let mut offset = 0;
        while let Some(bytes) = broadcast.wait_from(offset) {
            offset += bytes.len();
            replay.extend_from_slice(&bytes);
        }
        assert_eq!(replay, broadcast.snapshot());
        assert_eq!(replay.iter().filter(|b| **b == b'\n').count(), 2, "two complete lines");
    }

    #[test]
    fn blocked_broadcast_readers_wake_on_publish_and_on_close() {
        let broadcast = EventBroadcast::new();
        let reader = {
            let broadcast = broadcast.clone();
            std::thread::spawn(move || {
                let mut offset = 0;
                let mut collected = Vec::new();
                while let Some(bytes) = broadcast.wait_from(offset) {
                    offset += bytes.len();
                    collected.extend_from_slice(&bytes);
                }
                collected
            })
        };
        let mut writer = broadcast.clone();
        writer.write_all(b"line one\n").unwrap();
        writer.write_all(b"line two\n").unwrap();
        broadcast.close();
        let collected = reader.join().expect("reader thread");
        assert_eq!(collected, b"line one\nline two\n");
    }
}
