//! MABFuzz configuration.

use fuzzer::CampaignConfig;
use mab::BanditKind;
use serde::{Deserialize, Serialize};

/// Configuration of a MABFuzz campaign.
///
/// The defaults are the values reported in §IV-A of the paper: 10 arms,
/// `α = 0.25` (a globally new point is worth 3× an arm-locally new point),
/// reset threshold `γ = 3`, ε-greedy exploration `ε = 0.1` and EXP3 learning
/// rate `η = 0.1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MabFuzzConfig {
    /// Shared campaign parameters (test budget, mutation counts, …). The
    /// `num_seeds` field doubles as the number of arms.
    pub campaign: CampaignConfig,
    /// Which modified MAB algorithm drives seed selection.
    pub algorithm: BanditKind,
    /// Weight of arm-locally new coverage in the reward (`α ∈ [0, 1]`).
    pub alpha: f64,
    /// Reset threshold: an arm whose last `γ` pulls produced no new arm-local
    /// coverage is considered depleted and replaced by a fresh seed.
    pub gamma: usize,
    /// Exploration probability for ε-greedy.
    pub epsilon: f64,
    /// Learning rate for EXP3.
    pub eta: f64,
}

impl MabFuzzConfig {
    /// Creates the paper-default configuration for the given algorithm.
    pub fn new(algorithm: BanditKind) -> MabFuzzConfig {
        MabFuzzConfig {
            campaign: CampaignConfig::default(),
            algorithm,
            alpha: 0.25,
            gamma: 3,
            epsilon: 0.1,
            eta: 0.1,
        }
    }

    /// Returns the number of arms (the campaign's `num_seeds`).
    pub fn arms(&self) -> usize {
        self.campaign.num_seeds
    }

    /// Sets the number of arms.
    pub fn with_arms(mut self, arms: usize) -> MabFuzzConfig {
        self.campaign.num_seeds = arms.max(1);
        self
    }

    /// Sets the reward weight α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn with_alpha(mut self, alpha: f64) -> MabFuzzConfig {
        assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0, 1]");
        self.alpha = alpha;
        self
    }

    /// Sets the γ reset threshold.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is zero.
    pub fn with_gamma(mut self, gamma: usize) -> MabFuzzConfig {
        assert!(gamma > 0, "gamma must be at least 1");
        self.gamma = gamma;
        self
    }

    /// Sets the campaign test budget.
    pub fn with_max_tests(mut self, max_tests: u64) -> MabFuzzConfig {
        self.campaign.max_tests = max_tests;
        self
    }

    /// Builds the bandit policy described by this configuration.
    ///
    /// Routes through [`BanditKind::build_with`], so custom policies
    /// registered via [`mab::register_policy`] construct exactly like the
    /// built-ins (their factories receive this configuration's ε and η).
    pub fn build_bandit(&self) -> Box<dyn mab::Bandit> {
        self.algorithm.build_with(&mab::PolicyParams {
            kind: self.algorithm,
            arms: self.arms(),
            epsilon: self.epsilon,
            eta: self.eta,
        })
    }

    /// Returns the human-readable campaign label used in reports
    /// (e.g. `"MABFuzz: UCB"`; custom policies appear under their
    /// registered name).
    pub fn label(&self) -> String {
        format!("MABFuzz: {}", self.algorithm)
    }
}

impl Default for MabFuzzConfig {
    fn default() -> Self {
        MabFuzzConfig::new(BanditKind::Ucb1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = MabFuzzConfig::default();
        assert_eq!(config.arms(), 10);
        assert!((config.alpha - 0.25).abs() < 1e-12);
        assert_eq!(config.gamma, 3);
        assert!((config.eta - 0.1).abs() < 1e-12);
        assert!((config.epsilon - 0.1).abs() < 1e-12);
    }

    #[test]
    fn builders_adjust_fields() {
        let config = MabFuzzConfig::new(BanditKind::Exp3)
            .with_arms(4)
            .with_alpha(0.5)
            .with_gamma(7)
            .with_max_tests(123);
        assert_eq!(config.arms(), 4);
        assert_eq!(config.gamma, 7);
        assert_eq!(config.campaign.max_tests, 123);
        assert_eq!(config.label(), "MABFuzz: EXP3");
    }

    #[test]
    fn build_bandit_matches_the_algorithm() {
        for kind in BanditKind::ALL {
            let config = MabFuzzConfig::new(kind).with_arms(6);
            let bandit = config.build_bandit();
            assert_eq!(bandit.kind(), kind);
            assert_eq!(bandit.arms(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = MabFuzzConfig::default().with_alpha(1.5);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_panics() {
        let _ = MabFuzzConfig::default().with_gamma(0);
    }
}
