//! Deterministic JSON rendering of one campaign's outcome.
//!
//! [`campaign_json`] is **the** campaign report document of the workspace:
//! it is what `experiments run --spec file.json --json` prints (the bench
//! crate's `json::campaign` delegates here) and what the campaign service
//! serves from `GET /campaigns/{id}/report` — one renderer, so a report
//! fetched over the wire is byte-identical to the one the CLI would have
//! printed for the same spec, and the concurrency-equivalence suite can
//! `cmp` the two directly.
//!
//! Rendering is by hand with fixed field order and shortest-round-trip float
//! formatting (the `json_text` conventions shared with
//! the spec codec and the JSONL event stream): the document is a stable
//! machine-readable artefact, golden-pinned in
//! `tests/golden/spec_campaign_smoke.json`.

use crate::json_text::push_json_string;
use crate::orchestrator::MabFuzzOutcome;
use crate::spec::CampaignSpec;

/// Renders a JSON string literal (quoted, escaped) under the workspace's
/// shared escaping conventions — the one escaping routine behind the spec
/// codec, the event stream, the campaign report and the service protocol
/// bodies, exported so no consumer needs a drift-prone copy.
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    push_json_string(&mut out, text);
    out
}

/// Renders the outcome of one spec-driven campaign: label, policy, the spec
/// that produced it, coverage curve, detections and per-arm summary — one
/// deterministic JSON document.
pub fn campaign_json(spec: &CampaignSpec, outcome: &MabFuzzOutcome) -> String {
    let stats = &outcome.stats;
    let series: Vec<String> = stats
        .series()
        .points()
        .iter()
        .map(|p| format!("[{},{}]", p.tests, p.covered))
        .collect();
    let detections: Vec<String> = stats
        .detections()
        .iter()
        .map(|d| {
            format!(
                "{{\"test_number\":{},\"test_id\":{},\"summary\":{}}}",
                d.test_number,
                d.test_id.0,
                json_string(&d.summary)
            )
        })
        .collect();
    let arms: Vec<String> = outcome
        .arms
        .iter()
        .map(|arm| {
            format!(
                "{{\"index\":{},\"pulls\":{},\"resets\":{},\"final_local_coverage\":{}}}",
                arm.index, arm.pulls, arm.resets, arm.final_local_coverage
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"campaign\",\"label\":{},\"policy\":{},\"spec\":{},\
         \"tests_executed\":{},\"final_coverage\":{},\"mismatching_tests\":{},\
         \"first_detection\":{},\"total_resets\":{},\"series\":[{}],\
         \"detections\":[{}],\"arms\":[{}]}}",
        json_string(stats.label()),
        json_string(spec.policy.name()),
        spec.to_json(),
        stats.tests_executed(),
        stats.final_coverage(),
        stats.mismatching_tests(),
        stats.first_detection().map_or_else(|| "null".to_owned(), |t| t.to_string()),
        outcome.total_resets,
        series.join(","),
        detections.join(","),
        arms.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;
    use proc_sim::{cores::RocketCore, BugSet};
    use std::sync::Arc;

    #[test]
    fn campaign_reports_render_deterministically() {
        let spec = CampaignSpec::builder()
            .max_tests(20)
            .sample_interval(5)
            .rng_seed(3)
            .build()
            .unwrap();
        let run = || {
            Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
                .unwrap()
                .execute()
        };
        let a = campaign_json(&spec, &run());
        let b = campaign_json(&spec, &run());
        assert_eq!(a, b, "identical campaigns render identical documents");
        assert!(a.starts_with("{\"experiment\":\"campaign\",\"label\":"), "{a}");
        assert!(a.contains("\"tests_executed\":20"), "{a}");
        assert!(a.contains(&format!("\"spec\":{}", spec.to_json())), "{a}");
    }

    #[test]
    fn strings_follow_the_shared_escaping_conventions() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }
}
