//! Deterministic JSON rendering of one campaign's outcome.
//!
//! [`campaign_json`] is **the** campaign report document of the workspace:
//! it is what `experiments run --spec file.json --json` prints (the bench
//! crate's `json::campaign` delegates here) and what the campaign service
//! serves from `GET /campaigns/{id}/report` — one renderer, so a report
//! fetched over the wire is byte-identical to the one the CLI would have
//! printed for the same spec, and the concurrency-equivalence suite can
//! `cmp` the two directly.
//!
//! Rendering is by hand with fixed field order and shortest-round-trip float
//! formatting (the `json_text` conventions shared with
//! the spec codec and the JSONL event stream): the document is a stable
//! machine-readable artefact, golden-pinned in
//! `tests/golden/spec_campaign_smoke.json`.

use coverage::CoverageSeries;

use crate::json_text::push_json_string;
use crate::json_value;
use crate::orchestrator::MabFuzzOutcome;
use crate::spec::CampaignSpec;

/// Renders a JSON string literal (quoted, escaped) under the workspace's
/// shared escaping conventions — the one escaping routine behind the spec
/// codec, the event stream, the campaign report and the service protocol
/// bodies, exported so no consumer needs a drift-prone copy.
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    push_json_string(&mut out, text);
    out
}

/// Renders the outcome of one spec-driven campaign: label, policy, the spec
/// that produced it, coverage curve, detections and per-arm summary — one
/// deterministic JSON document.
pub fn campaign_json(spec: &CampaignSpec, outcome: &MabFuzzOutcome) -> String {
    let stats = &outcome.stats;
    let series: Vec<String> = stats
        .series()
        .points()
        .iter()
        .map(|p| format!("[{},{}]", p.tests, p.covered))
        .collect();
    let detections: Vec<String> = stats
        .detections()
        .iter()
        .map(|d| {
            format!(
                "{{\"test_number\":{},\"test_id\":{},\"summary\":{}}}",
                d.test_number,
                d.test_id.0,
                json_string(&d.summary)
            )
        })
        .collect();
    let arms: Vec<String> = outcome
        .arms
        .iter()
        .map(|arm| {
            format!(
                "{{\"index\":{},\"pulls\":{},\"resets\":{},\"final_local_coverage\":{}}}",
                arm.index, arm.pulls, arm.resets, arm.final_local_coverage
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"campaign\",\"label\":{},\"policy\":{},\"spec\":{},\
         \"tests_executed\":{},\"final_coverage\":{},\"mismatching_tests\":{},\
         \"first_detection\":{},\"total_resets\":{},\"series\":[{}],\
         \"detections\":[{}],\"arms\":[{}]}}",
        json_string(stats.label()),
        json_string(spec.policy.name()),
        spec.to_json(),
        stats.tests_executed(),
        stats.final_coverage(),
        stats.mismatching_tests(),
        stats.first_detection().map_or_else(|| "null".to_owned(), |t| t.to_string()),
        outcome.total_resets,
        series.join(","),
        detections.join(","),
        arms.join(",")
    )
}

/// The reduction-facing numbers of one campaign, extracted either from a
/// live [`MabFuzzOutcome`] or from a rendered [`campaign_json`] document.
///
/// This is the contract that lets a *remote* campaign feed the same
/// experiment reductions as a local one: every quantity the paper's
/// artefacts reduce over — first detection, the sampled coverage series,
/// final coverage, reset counts — appears in the report document as an
/// exact integer, so parsing the report back
/// ([`from_report_json`](CampaignSummary::from_report_json)) reproduces
/// [`from_outcome`](CampaignSummary::from_outcome) bit for bit. The
/// dispatch coordinator relies on this equivalence to merge remote results
/// into artefacts byte-identical to a local run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// The campaign's report label (`"MABFuzz: UCB"`, `"TheHuzz"`, …).
    pub label: String,
    /// Tests the campaign actually executed.
    pub tests_executed: u64,
    /// Final cumulative coverage.
    pub final_coverage: usize,
    /// Tests whose DUT/golden architectural states mismatched.
    pub mismatching_tests: u64,
    /// Test number of the first mismatch, if any.
    pub first_detection: Option<u64>,
    /// Total arm resets (zero for baseline campaigns).
    pub total_resets: u64,
    /// The sampled cumulative coverage curve.
    pub series: CoverageSeries,
}

impl CampaignSummary {
    /// Extracts the summary from a locally executed campaign.
    pub fn from_outcome(outcome: &MabFuzzOutcome) -> CampaignSummary {
        let stats = &outcome.stats;
        CampaignSummary {
            label: stats.label().to_owned(),
            tests_executed: stats.tests_executed(),
            final_coverage: stats.final_coverage(),
            mismatching_tests: stats.mismatching_tests(),
            first_detection: stats.first_detection(),
            total_resets: outcome.total_resets,
            series: stats.series().clone(),
        }
    }

    /// Parses the summary back out of a [`campaign_json`] document, e.g. one
    /// fetched from a remote worker's `/campaigns/{id}/report`.
    ///
    /// # Errors
    ///
    /// A description of the first schema violation (missing field, wrong
    /// type, out-of-order series) — remote documents are untrusted input.
    pub fn from_report_json(report: &str) -> Result<CampaignSummary, String> {
        let value = json_value::parse(report)?;
        let str_field = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .ok_or_else(|| format!("report lacks `{name}`"))?
                .as_str(name)
                .map(str::to_owned)
                .map_err(|error| error.to_string())
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .ok_or_else(|| format!("report lacks `{name}`"))?
                .as_u64(name)
                .map_err(|error| error.to_string())
        };
        let label = str_field("label")?;
        let first_detection = match value.get("first_detection") {
            None => return Err("report lacks `first_detection`".to_owned()),
            Some(field) if field.is_null() => None,
            Some(field) => {
                Some(field.as_u64("first_detection").map_err(|error| error.to_string())?)
            }
        };
        let mut series = CoverageSeries::new(label.clone());
        let points = value
            .get("series")
            .ok_or("report lacks `series`")?
            .as_array("series")
            .map_err(|error| error.to_string())?;
        let mut last_tests = None;
        for point in points {
            let pair = point.as_array("series point").map_err(|error| error.to_string())?;
            let [tests, covered] = pair else {
                return Err(format!("series point has {} elements, expected 2", pair.len()));
            };
            let tests = tests.as_u64("series tests").map_err(|error| error.to_string())?;
            let covered =
                covered.as_usize("series covered").map_err(|error| error.to_string())?;
            // `CoverageSeries::record` panics on out-of-order samples; remote
            // input must fail with an error instead.
            if last_tests.is_some_and(|last| tests < last) {
                return Err(format!("series runs backwards at tests={tests}"));
            }
            last_tests = Some(tests);
            series.record(tests, covered);
        }
        Ok(CampaignSummary {
            label,
            tests_executed: u64_field("tests_executed")?,
            final_coverage: u64_field("final_coverage")? as usize,
            mismatching_tests: u64_field("mismatching_tests")?,
            first_detection,
            total_resets: u64_field("total_resets")?,
            series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;
    use proc_sim::{cores::RocketCore, BugSet};
    use std::sync::Arc;

    #[test]
    fn campaign_reports_render_deterministically() {
        let spec = CampaignSpec::builder()
            .max_tests(20)
            .sample_interval(5)
            .rng_seed(3)
            .build()
            .unwrap();
        let run = || {
            Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
                .unwrap()
                .execute()
        };
        let a = campaign_json(&spec, &run());
        let b = campaign_json(&spec, &run());
        assert_eq!(a, b, "identical campaigns render identical documents");
        assert!(a.starts_with("{\"experiment\":\"campaign\",\"label\":"), "{a}");
        assert!(a.contains("\"tests_executed\":20"), "{a}");
        assert!(a.contains(&format!("\"spec\":{}", spec.to_json())), "{a}");
    }

    #[test]
    fn strings_follow_the_shared_escaping_conventions() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn summary_from_report_equals_summary_from_outcome() {
        // The dispatch coordinator's core assumption: parsing a rendered
        // report reproduces the local summary exactly, so remote execution
        // feeds the experiment reductions the same bits a local run would.
        let spec = CampaignSpec::builder()
            .max_tests(40)
            .sample_interval(7)
            .rng_seed(11)
            .build()
            .unwrap();
        let outcome = Campaign::from_spec_on(
            Arc::new(RocketCore::new(BugSet::native_to("rocket"))),
            &spec,
        )
            .unwrap()
            .execute();
        let direct = CampaignSummary::from_outcome(&outcome);
        let parsed = CampaignSummary::from_report_json(&campaign_json(&spec, &outcome))
            .expect("a rendered report parses");
        assert_eq!(parsed, direct);
        assert_eq!(parsed.series.label(), outcome.stats.label());
    }

    #[test]
    fn summary_rejects_malformed_reports() {
        assert!(CampaignSummary::from_report_json("not json").is_err());
        assert!(
            CampaignSummary::from_report_json("{\"error\":\"boom\"}")
                .unwrap_err()
                .contains("lacks"),
            "failure documents are not summaries"
        );
        let backwards = "{\"label\":\"x\",\"first_detection\":null,\
                         \"series\":[[10,1],[5,2]],\"tests_executed\":1,\
                         \"final_coverage\":1,\"mismatching_tests\":0,\"total_resets\":0}";
        assert!(CampaignSummary::from_report_json(backwards)
            .unwrap_err()
            .contains("backwards"));
    }
}
