//! MABFuzz: multi-armed bandit algorithms for fuzzing processors.
//!
//! This crate is the reproduction of the paper's core contribution — a
//! dynamic, adaptive seed-selection layer that can be bolted onto any
//! coverage-feedback hardware fuzzer. It reuses the fuzzing substrate from
//! the [`fuzzer`] crate (seed generation, mutation, differential testing,
//! campaign statistics) and the generic bandit algorithms from [`mab`], and
//! adds the pieces that are specific to the paper:
//!
//! * [`Arm`] — a seed, its mutation-derived test pool and its arm-local
//!   cumulative coverage;
//! * [`RewardParams`] — the reward
//!   `R_t(a) = α·|cov_L| + (1 − α)·|cov_G|` of §III-B;
//! * [`SaturationMonitor`] — the γ-window monitor of §III-C that detects
//!   depleted arms;
//! * [`MabFuzzer`] — the orchestrator of Fig. 2: select an arm with the
//!   modified MAB algorithm, simulate a batch of its tests (serially or
//!   across the shard workers of a [`ShardPlan`] — campaign reports are
//!   byte-identical either way, see the determinism contract in
//!   [`fuzzer::shard`]), mutate, reward, and reset saturated arms.
//!
//! Around that core, the campaign-facing API is declarative:
//!
//! * [`CampaignSpec`] — one validated, JSON-serializable description of a
//!   whole campaign (policy, α/γ/ε/η, budget, generator, RNG seed, shard
//!   plan, optionally the processor), with a fluent builder;
//! * [`Campaign`] — the session type: `Campaign::from_spec(&spec)?.execute()`
//!   runs anything from the TheHuzz baseline to a custom bandit registered
//!   at runtime through [`mab::register_policy`];
//! * [`CampaignObserver`] — streaming per-round/per-test events (arm
//!   selected, test folded, detection, arm reset, coverage milestone) for
//!   monitoring a campaign while it runs; the built-in statistics are
//!   expressed against the same events, and **both** scheduling worlds —
//!   MABFuzz campaigns and the TheHuzz baseline — emit the full per-test
//!   stream in deterministic fold order;
//! * [`EventLog`] / [`ProgressMonitor`] — the first production consumers of
//!   that seam: a buffered JSONL event sink whose stream is byte-identical
//!   across shard counts (golden-pinned in CI), and a live tests/sec +
//!   coverage + per-arm progress reporter (both surfaced as
//!   `experiments run --events out.jsonl --progress`);
//! * [`EventBroadcast`] / [`CancelToken`] — the service-layer seams: a
//!   replay-from-start fan-out sink for concurrent event subscribers, and
//!   cooperative cancellation that stops a campaign at a deterministic fold
//!   boundary (its event stream stays a strict prefix of the full run's).
//!   The `mabfuzz-service` crate serves both over HTTP
//!   (`experiments serve`), with final reports rendered by
//!   [`report::campaign_json`] — the same document `experiments run --json`
//!   prints.
//!
//! # Quick start
//!
//! ```
//! use mab::BanditKind;
//! use mabfuzz::{BugSpec, Campaign, CampaignSpec};
//! use proc_sim::ProcessorKind;
//!
//! let spec = CampaignSpec::builder()
//!     .algorithm(BanditKind::Ucb1)
//!     .max_tests(25)
//!     .processor(ProcessorKind::Rocket, BugSpec::None)
//!     .rng_seed(7)
//!     .build()
//!     .unwrap();
//! let outcome = Campaign::from_spec(&spec).unwrap().execute();
//! assert_eq!(outcome.stats.tests_executed(), 25);
//!
//! // The spec is one serializable object; this exact campaign replays from
//! // its JSON (also: `experiments run --spec file.json`).
//! assert_eq!(CampaignSpec::from_json(&spec.to_json()).unwrap(), spec);
//! ```
//!
//! The imperative constructors (`MabFuzzer::new(...).run()`) remain as thin
//! compatibility wrappers over [`Campaign`] and keep working unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arm;
pub mod campaign;
pub mod cancel;
pub mod config;
pub mod event_log;
pub mod json_value;
mod json_text;
pub mod monitor;
pub mod observer;
pub mod orchestrator;
pub mod progress;
pub mod report;
pub mod reward;
pub mod spec;

pub use arm::Arm;
pub use campaign::Campaign;
pub use cancel::CancelToken;
pub use config::MabFuzzConfig;
pub use event_log::{EventBroadcast, EventLog, EventLogHealth, SharedBuffer};
pub use fuzzer::{CoverageSignal, ShardPlan, ShardPool};
pub use monitor::SaturationMonitor;
pub use observer::{
    ArmReset, ArmSelected, BatchFolded, CampaignFinished, CampaignObserver, CoverageMilestone,
    DetectionObserved, TestFolded,
};
pub use fuzzer::shard::derive_stream_seed;
pub use progress::ProgressMonitor;
pub use orchestrator::{ArmSummary, MabFuzzOutcome, MabFuzzer};
pub use report::CampaignSummary;
pub use reward::RewardParams;
pub use spec::{
    BugSpec, CampaignSpec, CampaignSpecBuilder, PolicySpec, ProcessorSpec, SpecError,
};
