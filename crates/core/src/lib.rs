//! MABFuzz: multi-armed bandit algorithms for fuzzing processors.
//!
//! This crate is the reproduction of the paper's core contribution — a
//! dynamic, adaptive seed-selection layer that can be bolted onto any
//! coverage-feedback hardware fuzzer. It reuses the fuzzing substrate from
//! the [`fuzzer`] crate (seed generation, mutation, differential testing,
//! campaign statistics) and the generic bandit algorithms from [`mab`], and
//! adds the pieces that are specific to the paper:
//!
//! * [`Arm`] — a seed, its mutation-derived test pool and its arm-local
//!   cumulative coverage;
//! * [`RewardParams`] — the reward
//!   `R_t(a) = α·|cov_L| + (1 − α)·|cov_G|` of §III-B;
//! * [`SaturationMonitor`] — the γ-window monitor of §III-C that detects
//!   depleted arms;
//! * [`MabFuzzer`] — the orchestrator of Fig. 2: select an arm with the
//!   modified MAB algorithm, simulate a batch of its tests (serially or
//!   across the shard workers of a [`ShardPlan`] — campaign reports are
//!   byte-identical either way, see the determinism contract in
//!   [`fuzzer::shard`]), mutate, reward, and reset saturated arms.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use mab::BanditKind;
//! use mabfuzz::{MabFuzzConfig, MabFuzzer};
//! use proc_sim::{cores::RocketCore, BugSet};
//!
//! let processor = Arc::new(RocketCore::new(BugSet::none()));
//! let mut config = MabFuzzConfig::new(BanditKind::Ucb1);
//! config.campaign.max_tests = 25;
//! let outcome = MabFuzzer::new(processor, config, 7).run();
//! assert_eq!(outcome.stats.tests_executed(), 25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arm;
pub mod config;
pub mod monitor;
pub mod orchestrator;
pub mod reward;

pub use arm::Arm;
pub use config::MabFuzzConfig;
pub use fuzzer::{ShardPlan, ShardPool};
pub use monitor::SaturationMonitor;
pub use orchestrator::{ArmSummary, MabFuzzOutcome, MabFuzzer};
pub use reward::RewardParams;
