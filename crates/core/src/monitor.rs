//! The γ-window saturation monitor (§III-C of the paper).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Detects arms whose recent pulls have stopped producing new coverage.
///
/// For every arm the monitor remembers the arm-local new-coverage counts of
/// its most recent `γ` pulls. An arm is *saturated* once it has accumulated a
/// full window of `γ` pulls in which **none** produced new coverage — the
/// signal the orchestrator uses to replace the arm's seed and reset the
/// bandit's statistics for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaturationMonitor {
    gamma: usize,
    windows: Vec<VecDeque<usize>>,
}

impl SaturationMonitor {
    /// Creates a monitor for `arms` arms with window size `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` or `gamma` is zero.
    pub fn new(arms: usize, gamma: usize) -> SaturationMonitor {
        assert!(arms > 0, "the monitor needs at least one arm");
        assert!(gamma > 0, "gamma must be at least 1");
        // Cap the eager allocation: a huge gamma (used by the "never reset"
        // ablation) must not try to reserve a huge buffer up front.
        SaturationMonitor { gamma, windows: vec![VecDeque::with_capacity(gamma.min(64)); arms] }
    }

    /// Returns the window size γ.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Returns the number of arms monitored.
    pub fn arms(&self) -> usize {
        self.windows.len()
    }

    /// Records the arm-local new-coverage count of the latest pull of `arm`
    /// and returns `true` when the arm is now saturated.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn record(&mut self, arm: usize, local_new_coverage: usize) -> bool {
        let window = &mut self.windows[arm];
        if window.len() == self.gamma {
            window.pop_front();
        }
        window.push_back(local_new_coverage);
        self.is_saturated(arm)
    }

    /// Returns `true` when `arm` has a full γ-window with no coverage gains.
    pub fn is_saturated(&self, arm: usize) -> bool {
        let window = &self.windows[arm];
        window.len() == self.gamma && window.iter().all(|gain| *gain == 0)
    }

    /// Clears the window of `arm` (called when the arm is reset).
    pub fn reset_arm(&mut self, arm: usize) {
        self.windows[arm].clear();
    }

    /// Returns the recorded gains of the most recent pulls of `arm`
    /// (oldest first).
    pub fn window(&self, arm: usize) -> Vec<usize> {
        self.windows[arm].iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn saturation_requires_a_full_window_of_zero_gains() {
        let mut monitor = SaturationMonitor::new(2, 3);
        assert!(!monitor.record(0, 0));
        assert!(!monitor.record(0, 0));
        assert!(monitor.record(0, 0), "three consecutive zero-gain pulls saturate");
        assert!(!monitor.is_saturated(1), "other arms are unaffected");
    }

    #[test]
    fn a_single_gain_inside_the_window_prevents_saturation() {
        let mut monitor = SaturationMonitor::new(1, 3);
        monitor.record(0, 0);
        monitor.record(0, 5);
        monitor.record(0, 0);
        assert!(!monitor.is_saturated(0));
        // The gain slides out of the window after two more empty pulls.
        monitor.record(0, 0);
        assert!(monitor.record(0, 0));
    }

    #[test]
    fn reset_clears_the_window() {
        let mut monitor = SaturationMonitor::new(1, 2);
        monitor.record(0, 0);
        monitor.record(0, 0);
        assert!(monitor.is_saturated(0));
        monitor.reset_arm(0);
        assert!(!monitor.is_saturated(0));
        assert!(monitor.window(0).is_empty());
        assert_eq!(monitor.gamma(), 2);
        assert_eq!(monitor.arms(), 1);
    }

    #[test]
    fn window_keeps_only_the_most_recent_gamma_entries() {
        let mut monitor = SaturationMonitor::new(1, 3);
        for gain in [1, 2, 3, 4, 5] {
            monitor.record(0, gain);
        }
        assert_eq!(monitor.window(0), vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn zero_gamma_panics() {
        let _ = SaturationMonitor::new(1, 0);
    }

    #[test]
    fn gamma_boundary_saturates_exactly_at_the_gamma_th_pull() {
        // Off-by-one guard on the window boundary: γ−1 zero-gain pulls must
        // not saturate, the γ-th must, and the monitor must stay saturated
        // on further zero-gain pulls (no modular wrap-around resetting it).
        for gamma in 1usize..=5 {
            let mut monitor = SaturationMonitor::new(1, gamma);
            for pull in 1..gamma {
                assert!(
                    !monitor.record(0, 0),
                    "gamma={gamma}: pull {pull} of {gamma} must not saturate yet"
                );
            }
            assert!(monitor.record(0, 0), "gamma={gamma}: the {gamma}-th zero-gain pull saturates");
            assert!(monitor.record(0, 0), "gamma={gamma}: saturation is sticky under zero gains");
            assert_eq!(monitor.window(0).len(), gamma, "the window never exceeds gamma");
        }
    }

    #[test]
    fn gamma_one_saturates_on_any_zero_gain_pull() {
        let mut monitor = SaturationMonitor::new(1, 1);
        assert!(monitor.record(0, 0), "gamma=1: a single empty pull saturates");
        assert!(!monitor.record(0, 3), "a gain un-saturates immediately");
        assert!(monitor.record(0, 0), "and the next empty pull saturates again");
    }

    #[test]
    fn reset_arm_empties_only_that_arms_window() {
        let mut monitor = SaturationMonitor::new(3, 2);
        monitor.record(0, 0);
        monitor.record(0, 4);
        monitor.record(1, 0);
        monitor.record(1, 0);
        monitor.record(2, 7);
        assert!(monitor.is_saturated(1));

        monitor.reset_arm(1);
        assert_eq!(monitor.window(1), Vec::<usize>::new(), "the reset arm's window is empty");
        assert!(!monitor.is_saturated(1), "an empty window is never saturated");
        assert_eq!(monitor.window(0), vec![0, 4], "other arms keep their windows");
        assert_eq!(monitor.window(2), vec![7]);

        // After the reset, the arm needs a *full fresh* γ-window of zero
        // gains again — history from before the reset must not count.
        assert!(!monitor.record(1, 0), "one post-reset zero gain is not enough");
        assert!(monitor.record(1, 0), "a fresh full window saturates again");
    }

    #[test]
    fn window_contents_follow_record_order_after_reset() {
        let mut monitor = SaturationMonitor::new(1, 3);
        for gain in [1, 0, 2] {
            monitor.record(0, gain);
        }
        assert_eq!(monitor.window(0), vec![1, 0, 2], "oldest first");
        monitor.reset_arm(0);
        for gain in [5, 6] {
            monitor.record(0, gain);
        }
        assert_eq!(
            monitor.window(0),
            vec![5, 6],
            "post-reset windows contain only post-reset gains"
        );
    }

    proptest! {
        /// The monitor is saturated exactly when the last γ recorded gains are
        /// all zero and at least γ pulls have happened.
        #[test]
        fn saturation_matches_the_definition(
            gains in proptest::collection::vec(0usize..3, 1..40),
            gamma in 1usize..6,
        ) {
            let mut monitor = SaturationMonitor::new(1, gamma);
            for gain in &gains {
                monitor.record(0, *gain);
            }
            let expected = gains.len() >= gamma
                && gains[gains.len() - gamma..].iter().all(|g| *g == 0);
            prop_assert_eq!(monitor.is_saturated(0), expected);
        }
    }
}
