//! Live campaign progress reporting — the second production consumer of the
//! [`CampaignObserver`] seam.
//!
//! A [`ProgressMonitor`] watches the event stream and periodically prints a
//! one-line human-readable status: tests executed, throughput (tests/sec),
//! cumulative coverage percentage, per-arm pull counts, and detection/reset
//! tallies. It is what `experiments run --progress` attaches.
//!
//! Progress lines go to stderr by default (or any caller-supplied writer) so
//! they never mix with the deterministic artefacts on stdout: a campaign's
//! JSON report and JSONL event stream stay byte-identical whether or not a
//! monitor is attached — the monitor's own output is the only
//! non-deterministic thing about it (it measures wall-clock throughput).
//! Write errors are ignored: progress is best-effort by design.

use std::io::{self, Write};
// detlint: allow-file(wall-clock) -- the progress monitor writes live
// tests/sec lines to stderr only; the stdout artefacts never see a reading.
use std::time::Instant;

use crate::observer::{
    ArmReset, CampaignFinished, CampaignObserver, CoverageMilestone, DetectionObserved, TestFolded,
};

/// Streams periodic progress lines for one campaign.
pub struct ProgressMonitor {
    writer: Box<dyn Write + Send>,
    space_len: usize,
    /// Report every `interval` folded tests (≥ 1).
    interval: u64,
    started: Option<Instant>,
    tests: u64,
    covered: usize,
    /// Pull counts per arm index, grown on demand (the monitor does not need
    /// to know the arm count up front).
    arm_pulls: Vec<u64>,
    detections: u64,
    resets: u64,
}

impl ProgressMonitor {
    /// The default reporting interval, in folded tests.
    pub const DEFAULT_INTERVAL: u64 = 1000;

    /// A monitor over a coverage space of `space_len` points (see
    /// [`Campaign::coverage_space_len`](crate::Campaign::coverage_space_len)),
    /// reporting to stderr every
    /// [`DEFAULT_INTERVAL`](ProgressMonitor::DEFAULT_INTERVAL) tests.
    pub fn new(space_len: usize) -> ProgressMonitor {
        ProgressMonitor::to_writer(space_len, Box::new(io::stderr()))
    }

    /// A monitor reporting to an arbitrary writer.
    pub fn to_writer(space_len: usize, writer: Box<dyn Write + Send>) -> ProgressMonitor {
        ProgressMonitor {
            writer,
            space_len,
            interval: ProgressMonitor::DEFAULT_INTERVAL,
            started: None,
            tests: 0,
            covered: 0,
            arm_pulls: Vec::new(),
            detections: 0,
            resets: 0,
        }
    }

    /// Sets the reporting interval in folded tests (clamped to at least 1).
    pub fn with_interval(mut self, interval: u64) -> ProgressMonitor {
        self.interval = interval.max(1);
        self
    }

    /// Wall-clock seconds since the first observed event.
    fn elapsed_secs(&self) -> f64 {
        self.started.map_or(0.0, |start| start.elapsed().as_secs_f64())
    }

    /// Tests per second since the first observed event.
    fn rate(&self) -> f64 {
        let elapsed = self.elapsed_secs();
        if elapsed > 0.0 {
            self.tests as f64 / elapsed
        } else {
            0.0
        }
    }

    /// Coverage as a percentage of the space (0 when the space is empty).
    fn coverage_percent(&self) -> f64 {
        if self.space_len == 0 {
            0.0
        } else {
            self.covered as f64 * 100.0 / self.space_len as f64
        }
    }

    fn write_status(&mut self, tag: &str) {
        let rate = self.rate();
        let percent = self.coverage_percent();
        let mut arms = String::new();
        for (index, pulls) in self.arm_pulls.iter().enumerate() {
            if index > 0 {
                arms.push(',');
            }
            arms.push_str(&pulls.to_string());
        }
        let _ = writeln!(
            self.writer,
            "[{tag}] {} tests | {rate:.0} tests/sec | coverage {percent:.1}% ({}/{}) | \
             arms [{arms}] | detections {} | resets {}",
            self.tests, self.covered, self.space_len, self.detections, self.resets
        );
    }
}

impl CampaignObserver for ProgressMonitor {
    fn test_folded(&mut self, event: &TestFolded<'_>) {
        self.started.get_or_insert_with(Instant::now);
        self.tests = event.test_number;
        self.covered = event.covered;
        if event.arm >= self.arm_pulls.len() {
            self.arm_pulls.resize(event.arm + 1, 0);
        }
        self.arm_pulls[event.arm] += 1;
        if event.detected {
            self.detections += 1;
        }
        if event.test_number.is_multiple_of(self.interval) {
            self.write_status("progress");
        }
    }

    fn detection(&mut self, event: &DetectionObserved<'_>) {
        let _ = writeln!(
            self.writer,
            "[detect] test {} (arm {}): {}",
            event.test_number,
            event.arm,
            event.summary()
        );
    }

    fn arm_reset(&mut self, event: &ArmReset) {
        self.resets = event.total_resets;
        let _ = writeln!(
            self.writer,
            "[reset] arm {} saturated at test {} (total resets {})",
            event.arm, event.test_number, event.total_resets
        );
    }

    fn coverage_milestone(&mut self, event: &CoverageMilestone) {
        let _ = writeln!(
            self.writer,
            "[milestone] {}0% of the coverage space at test {} ({}/{})",
            event.decile, event.test_number, event.covered, event.space_len
        );
    }

    fn campaign_finished(&mut self, event: &CampaignFinished) {
        self.tests = event.tests_executed;
        self.covered = event.final_coverage;
        self.resets = event.total_resets;
        let elapsed = self.elapsed_secs();
        self.write_status("done");
        let _ = writeln!(self.writer, "[done] finished in {elapsed:.2}s");
        let _ = self.writer.flush();
    }
}

impl std::fmt::Debug for ProgressMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressMonitor")
            .field("space_len", &self.space_len)
            .field("interval", &self.interval)
            .field("tests", &self.tests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_log::SharedBuffer;
    use coverage::CoverageMap;
    use fuzzer::{DiffReport, TestId};

    #[test]
    fn progress_lines_appear_at_the_interval_and_at_finish() {
        let buffer = SharedBuffer::new();
        let mut monitor =
            ProgressMonitor::to_writer(100, Box::new(buffer.clone())).with_interval(2);
        let map = CoverageMap::with_len(8);
        let diff = DiffReport::default();
        for test_number in 1..=5u64 {
            monitor.test_folded(&TestFolded {
                test_number,
                test_id: TestId(test_number),
                arm: (test_number % 2) as usize,
                local_new: 1,
                global_new: 1,
                covered: 10 * test_number as usize,
                reward: 1.0,
                detected: false,
                coverage: &map,
                diff: &diff,
            });
        }
        monitor.campaign_finished(&CampaignFinished {
            tests_executed: 5,
            final_coverage: 50,
            total_resets: 0,
        });
        let out = buffer.contents();
        let progress_lines = out.lines().filter(|l| l.starts_with("[progress]")).count();
        assert_eq!(progress_lines, 2, "tests 2 and 4 report at interval 2: {out}");
        assert!(out.contains("coverage 50.0% (50/100)"), "final status reports coverage: {out}");
        assert!(out.contains("arms [2,3]") || out.contains("arms [3,2]"), "{out}");
        assert!(out.lines().any(|l| l.starts_with("[done]")), "{out}");
    }

    #[test]
    fn milestones_resets_and_detections_flag_lines() {
        let buffer = SharedBuffer::new();
        let mut monitor = ProgressMonitor::to_writer(100, Box::new(buffer.clone()));
        monitor.coverage_milestone(&CoverageMilestone {
            decile: 3,
            covered: 30,
            space_len: 100,
            test_number: 12,
        });
        monitor.arm_reset(&ArmReset { arm: 2, test_number: 15, total_resets: 1 });
        let diff = DiffReport::default();
        monitor.detection(&DetectionObserved {
            test_number: 16,
            test_id: TestId(16),
            arm: 0,
            diff: &diff,
        });
        let out = buffer.contents();
        assert!(out.contains("[milestone] 30% of the coverage space at test 12"), "{out}");
        assert!(out.contains("[reset] arm 2 saturated at test 15"), "{out}");
        assert!(out.contains("[detect] test 16 (arm 0)"), "{out}");
    }

    #[test]
    fn failing_writers_never_panic_the_monitor() {
        // Progress is best-effort by contract: a writer that dies mid-stream
        // (here after 64 bytes, via the fault-injecting SharedBuffer) must
        // not panic or change any observable behaviour of the monitor.
        let buffer = SharedBuffer::failing_after(64);
        let mut monitor =
            ProgressMonitor::to_writer(100, Box::new(buffer.clone())).with_interval(1);
        let map = CoverageMap::with_len(8);
        let diff = DiffReport::default();
        for test_number in 1..=20u64 {
            monitor.test_folded(&TestFolded {
                test_number,
                test_id: TestId(test_number),
                arm: 0,
                local_new: 1,
                global_new: 1,
                covered: test_number as usize,
                reward: 1.0,
                detected: test_number == 7,
                coverage: &map,
                diff: &diff,
            });
            monitor.coverage_milestone(&CoverageMilestone {
                decile: 1,
                covered: test_number as usize,
                space_len: 100,
                test_number,
            });
        }
        monitor.arm_reset(&ArmReset { arm: 0, test_number: 20, total_resets: 1 });
        monitor.campaign_finished(&CampaignFinished {
            tests_executed: 20,
            final_coverage: 20,
            total_resets: 1,
        });
        assert!(buffer.len() <= 64, "nothing past the fault is written");
        assert!(!buffer.contents().is_empty(), "the pre-fault prefix went through");
    }

    #[test]
    fn empty_coverage_space_reports_zero_percent() {
        let buffer = SharedBuffer::new();
        let mut monitor = ProgressMonitor::to_writer(0, Box::new(buffer.clone()));
        monitor.campaign_finished(&CampaignFinished {
            tests_executed: 0,
            final_coverage: 0,
            total_resets: 0,
        });
        assert!(buffer.contents().contains("coverage 0.0% (0/0)"));
    }
}
