//! A minimal strict JSON reader shared by the campaign-spec codec and the
//! service layer.
//!
//! Just enough JSON for campaign-spec documents and service-protocol bodies:
//! objects, arrays, strings, numbers, booleans, null; no trailing commas, no
//! comments, duplicate object keys rejected. Numbers keep their raw token so
//! 64-bit integers round-trip without a detour through `f64`.
//!
//! The typed accessors ([`Value::as_str`], [`Value::as_u64`], …) report
//! schema violations as [`SpecError::Json`] with the offending field named,
//! which is how the strict spec codec builds its loud error messages; any
//! other consumer (the campaign service parses its protocol bodies through
//! this module) gets the same precise diagnostics for free.

use crate::spec::SpecError;

/// Maximum nesting depth the reader accepts. The parser is recursive
/// descent, so depth is stack: without a bound, a small hostile document of
/// `[[[[…` overflows the thread stack and aborts the process (the campaign
/// service parses attacker-controlled bodies on ordinary connection
/// threads). 128 levels is far beyond any spec or protocol document.
pub const MAX_DEPTH: usize = 128;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token and converted on access.
    Number(String),
    /// A string (escapes already decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the entries of an object (`field` names the value in errors).
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the value is not an object.
    pub fn as_object(&self, field: &str) -> Result<&[(String, Value)], SpecError> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(type_error(field, "an object", other)),
        }
    }

    /// Returns the entries of an array.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the value is not an array.
    pub fn as_array(&self, field: &str) -> Result<&[Value], SpecError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(type_error(field, "an array", other)),
        }
    }

    /// Returns a string value.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the value is not a string.
    pub fn as_str(&self, field: &str) -> Result<&str, SpecError> {
        match self {
            Value::String(text) => Ok(text),
            other => Err(type_error(field, "a string", other)),
        }
    }

    /// Returns a boolean value.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the value is not a boolean.
    pub fn as_bool(&self, field: &str) -> Result<bool, SpecError> {
        match self {
            Value::Bool(value) => Ok(*value),
            other => Err(type_error(field, "a boolean", other)),
        }
    }

    /// Returns a number as `f64`.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the value is not a number.
    pub fn as_f64(&self, field: &str) -> Result<f64, SpecError> {
        match self {
            Value::Number(raw) => raw
                .parse()
                .map_err(|_| SpecError::Json(format!("{field}: invalid number `{raw}`"))),
            other => Err(type_error(field, "a number", other)),
        }
    }

    /// Returns a non-negative 64-bit integer.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the value is not an integer in `u64` range.
    pub fn as_u64(&self, field: &str) -> Result<u64, SpecError> {
        match self {
            Value::Number(raw) => raw.parse().map_err(|_| {
                SpecError::Json(format!("{field}: expected a non-negative integer, got `{raw}`"))
            }),
            other => Err(type_error(field, "an integer", other)),
        }
    }

    /// Returns a non-negative integer that fits `usize`.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the value is not an integer in `usize` range.
    pub fn as_usize(&self, field: &str) -> Result<usize, SpecError> {
        self.as_u64(field).and_then(|value| {
            usize::try_from(value)
                .map_err(|_| SpecError::Json(format!("{field}: {value} does not fit usize")))
        })
    }

    /// Returns a non-negative integer that fits `u32`.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the value is not an integer in `u32` range.
    pub fn as_u32(&self, field: &str) -> Result<u32, SpecError> {
        self.as_u64(field).and_then(|value| {
            u32::try_from(value)
                .map_err(|_| SpecError::Json(format!("{field}: {value} does not fit u32")))
        })
    }

    /// Looks up an object entry by key (`None` when absent or when the value
    /// is not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(name, _)| name == key).map(|(_, value)| value)
            }
            _ => None,
        }
    }
}

fn type_error(field: &str, expected: &str, got: &Value) -> SpecError {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    };
    SpecError::Json(format!("{field}: expected {expected}, got {kind}"))
}

/// Parses one JSON document (the whole input must be consumed).
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(format!("invalid number `{raw}` at byte {start}"));
    }
    Ok(Value::Number(raw.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..=0xDBFF).contains(&code) {
                            // RFC 8259: non-BMP characters arrive as a
                            // surrogate pair of \u escapes.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err(format!(
                                    "lone high surrogate \\u{code:04x} (expected a \
                                     \\u low surrogate next)"
                                ));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(format!(
                                    "invalid low surrogate \\u{low:04x} after \\u{code:04x}"
                                ));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or(format!("invalid \\u escape {scalar:#x}"))?,
                        );
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // boundary arithmetic is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Reads the four hex digits of a `\u` escape starting at `start`.
fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
    let hex = bytes.get(start..start + 4).ok_or("truncated \\u escape".to_owned())?;
    let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
    u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut entries: Vec<(String, Value)> = Vec::new();
    skip_whitespace(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Value::Object(entries));
    }
    loop {
        skip_whitespace(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b'"')) {
            return Err(format!("expected a string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        if entries.iter().any(|(existing, _)| *existing == key) {
            return Err(format!("duplicate key `{key}`"));
        }
        skip_whitespace(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b':')) {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        entries.push((key, value));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_parse_and_type_check() {
        let value = parse(
            "{\"a\":1,\"b\":\"two\",\"c\":[true,null],\"d\":{\"e\":2.5}}",
        )
        .unwrap();
        assert_eq!(value.get("a").unwrap().as_u64("a").unwrap(), 1);
        assert_eq!(value.get("b").unwrap().as_str("b").unwrap(), "two");
        let items = value.get("c").unwrap().as_array("c").unwrap();
        assert!(items[0].as_bool("c[0]").unwrap());
        assert!(items[1].is_null());
        assert_eq!(value.get("d").unwrap().get("e").unwrap().as_f64("e").unwrap(), 2.5);
        assert!(value.get("missing").is_none());
    }

    #[test]
    fn hostile_nesting_is_rejected_not_overflowed() {
        // Depth at the limit parses; one past it is an error, never a
        // stack overflow (the service feeds this parser network bodies).
        let nest = |depth: usize| {
            format!("{}1{}", "[".repeat(depth), "]".repeat(depth))
        };
        assert!(parse(&nest(MAX_DEPTH)).is_ok());
        let error = parse(&nest(MAX_DEPTH + 1)).unwrap_err();
        assert!(error.contains("nesting deeper"), "{error}");
        let error = parse(&"[".repeat(1 << 20)).unwrap_err();
        assert!(error.contains("nesting deeper"), "a megabyte of `[` is rejected cheaply");
    }

    #[test]
    fn type_errors_name_the_field() {
        let value = parse("{\"n\":1}").unwrap();
        let error = value.get("n").unwrap().as_str("the_field").unwrap_err();
        assert!(error.to_string().contains("the_field"), "{error}");
        assert!(error.to_string().contains("expected a string, got a number"), "{error}");
    }
}
