//! The MABFuzz reward function (§III-B of the paper).

use serde::{Deserialize, Serialize};

/// Parameters of the coverage reward
/// `R_t(a) = α·|cov_L(a)| + (1 − α)·|cov_G(a)|`.
///
/// `cov_L` is the set of points the pulled arm covered for the first time
/// *for itself*; `cov_G ⊆ cov_L` is the subset nobody had covered before.
/// With the paper's `α = 0.25`, a globally new point contributes
/// `α + (1 − α) = 1.0` while a locally-new-but-globally-known point
/// contributes only `α = 0.25` — i.e. globally novel coverage is worth 3×
/// more in addition to the base credit (the paper phrases the same ratio as
/// "3× importance").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardParams {
    /// Weight of arm-local novelty.
    pub alpha: f64,
}

impl RewardParams {
    /// Creates reward parameters.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` lies outside `[0, 1]`.
    pub fn new(alpha: f64) -> RewardParams {
        assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0, 1]");
        RewardParams { alpha }
    }

    /// Computes the raw (unnormalised) reward from the number of arm-locally
    /// new points and globally new points covered by the pulled test.
    ///
    /// # Panics
    ///
    /// Panics if `global_new > local_new` — by construction `cov_G` is a
    /// subset of `cov_L`, so a larger value indicates a bookkeeping bug in the
    /// caller.
    pub fn reward(&self, local_new: usize, global_new: usize) -> f64 {
        assert!(
            global_new <= local_new,
            "globally new points ({global_new}) cannot exceed locally new points ({local_new})"
        );
        self.alpha * local_new as f64 + (1.0 - self.alpha) * global_new as f64
    }

    /// Computes the reward normalised by the total number of coverage points
    /// `|C|`, as required by the modified EXP3 (Algorithm 2, line 6).
    pub fn normalized_reward(&self, local_new: usize, global_new: usize, total_points: usize) -> f64 {
        if total_points == 0 {
            return 0.0;
        }
        (self.reward(local_new, global_new) / total_points as f64).clamp(0.0, 1.0)
    }

    /// Computes the reward in the shape `kind` expects: EXP3 receives the
    /// `[0, 1]`-normalised reward (divided by `total_points`), every other
    /// policy the raw weighted count.
    ///
    /// This is the single reward formula of the campaign fold — serial and
    /// sharded rounds call it per test in `test_index` order, so the bandit
    /// observes identical rewards in both modes.
    pub fn policy_reward(
        &self,
        kind: mab::BanditKind,
        local_new: usize,
        global_new: usize,
        total_points: usize,
    ) -> f64 {
        match kind {
            mab::BanditKind::Exp3 => self.normalized_reward(local_new, global_new, total_points),
            _ => self.reward(local_new, global_new),
        }
    }
}

impl Default for RewardParams {
    /// The paper's default, `α = 0.25`.
    fn default() -> Self {
        RewardParams::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_weighting() {
        let params = RewardParams::default();
        // A globally new point is worth 3× more than a locally new one *on
        // top of* the base local credit: 10 local-only points vs 10 global
        // points.
        let local_only = params.reward(10, 0);
        let global = params.reward(10, 10);
        assert!((local_only - 2.5).abs() < 1e-12);
        assert!((global - 10.0).abs() < 1e-12);
        assert!((global / local_only - 4.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_extremes() {
        assert_eq!(RewardParams::new(1.0).reward(7, 3), 7.0);
        assert_eq!(RewardParams::new(0.0).reward(7, 3), 3.0);
    }

    #[test]
    fn zero_coverage_gives_zero_reward() {
        assert_eq!(RewardParams::default().reward(0, 0), 0.0);
        assert_eq!(RewardParams::default().normalized_reward(0, 0, 100), 0.0);
    }

    #[test]
    fn normalisation_divides_by_the_space_size() {
        let params = RewardParams::new(0.25);
        let normalized = params.normalized_reward(8, 4, 100);
        assert!((normalized - (0.25 * 8.0 + 0.75 * 4.0) / 100.0).abs() < 1e-12);
        assert_eq!(params.normalized_reward(5, 5, 0), 0.0, "empty spaces yield zero");
        assert!(params.normalized_reward(1_000_000, 1_000_000, 10) <= 1.0, "clamped into [0, 1]");
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn inconsistent_counts_panic() {
        let _ = RewardParams::default().reward(2, 5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = RewardParams::new(-0.1);
    }

    proptest! {
        /// The reward is monotone in both of its arguments and bounded by the
        /// locally-new count.
        #[test]
        fn reward_is_monotone_and_bounded(
            alpha in 0.0f64..=1.0,
            local in 0usize..1000,
            global_fraction in 0.0f64..=1.0,
        ) {
            let params = RewardParams::new(alpha);
            let global = (local as f64 * global_fraction) as usize;
            let reward = params.reward(local, global);
            prop_assert!(reward >= 0.0);
            prop_assert!(reward <= local as f64 + 1e-9);
            if local > 0 {
                prop_assert!(params.reward(local, local) >= reward - 1e-9);
                prop_assert!(reward >= params.reward(local, 0) - 1e-9);
            }
            let normalized = params.normalized_reward(local, global, 2000);
            prop_assert!((0.0..=1.0).contains(&normalized));
        }
    }
}
