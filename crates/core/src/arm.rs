//! Arms: the seed families the bandit chooses between.

use coverage::CoverageMap;
use fuzzer::{TestCase, TestPool};
use serde::{Deserialize, Serialize};

/// One bandit arm: a seed, the pool of tests derived from it by mutation, and
/// the arm-local cumulative coverage used for the `cov_L` reward term.
#[derive(Debug, Clone)]
pub struct Arm {
    index: usize,
    seed: TestCase,
    pool: TestPool,
    local_coverage: CoverageMap,
    pulls_since_reset: u64,
    total_pulls: u64,
    resets: u64,
}

/// Summary statistics of an arm, exposed for reporting and ablations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmStats {
    /// The arm's index.
    pub index: usize,
    /// Pulls since the last reset.
    pub pulls_since_reset: u64,
    /// Total pulls across all seeds this arm has held.
    pub total_pulls: u64,
    /// How many times the arm has been reset (replaced by a fresh seed).
    pub resets: u64,
    /// Number of coverage points the current seed family has reached.
    pub local_coverage: usize,
    /// Pending tests in the arm's pool.
    pub pending_tests: usize,
}

impl Arm {
    /// Creates an arm from its initial seed; the seed is the first (and so
    /// far only) entry of the arm's test pool.
    pub fn new(index: usize, seed: TestCase, coverage_space_len: usize) -> Arm {
        let mut pool = TestPool::new();
        pool.push(seed.clone());
        Arm {
            index,
            seed,
            pool,
            local_coverage: CoverageMap::with_len(coverage_space_len),
            pulls_since_reset: 0,
            total_pulls: 0,
            resets: 0,
        }
    }

    /// Returns the arm's index (the bandit's arm id).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Returns the arm's current seed.
    pub fn seed(&self) -> &TestCase {
        &self.seed
    }

    /// Returns the arm's pending test pool.
    pub fn pool(&self) -> &TestPool {
        &self.pool
    }

    /// Returns a mutable reference to the pool (the orchestrator pushes
    /// mutants into it).
    pub fn pool_mut(&mut self) -> &mut TestPool {
        &mut self.pool
    }

    /// Pops the next test to simulate. Returns `None` when the pool is empty;
    /// the orchestrator then refills it by mutating the seed.
    pub fn next_test(&mut self) -> Option<TestCase> {
        let test = self.pool.pop();
        if test.is_some() {
            self.pulls_since_reset += 1;
            self.total_pulls += 1;
        }
        test
    }

    /// Merges a test's coverage map into the arm-local cumulative coverage
    /// and returns how many points were new *for this arm*.
    ///
    /// Uses the associative [`CoverageMap::merge_counting`]; the campaign
    /// fold calls it in `test_index` order so the per-test novelty counts
    /// (the `cov_L` reward term) are shard-count independent.
    ///
    /// # Panics
    ///
    /// Panics if the coverage map belongs to a different space.
    pub fn absorb_coverage(&mut self, test_coverage: &CoverageMap) -> usize {
        self.local_coverage.merge_counting(test_coverage)
    }

    /// Returns the arm-local cumulative coverage.
    pub fn local_coverage(&self) -> &CoverageMap {
        &self.local_coverage
    }

    /// Replaces the arm's seed with a fresh one, clearing the pool, the local
    /// coverage and the per-seed pull counter (the paper's arm reset).
    pub fn reset(&mut self, fresh_seed: TestCase) {
        self.seed = fresh_seed.clone();
        self.pool.clear();
        self.pool.push(fresh_seed);
        self.local_coverage.clear();
        self.pulls_since_reset = 0;
        self.resets += 1;
    }

    /// Returns how many times this arm has been reset.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Returns the pulls since the last reset.
    pub fn pulls_since_reset(&self) -> u64 {
        self.pulls_since_reset
    }

    /// Returns the total pulls across the arm's lifetime.
    pub fn total_pulls(&self) -> u64 {
        self.total_pulls
    }

    /// Returns the arm's summary statistics.
    pub fn stats(&self) -> ArmStats {
        ArmStats {
            index: self.index,
            pulls_since_reset: self.pulls_since_reset,
            total_pulls: self.total_pulls,
            resets: self.resets,
            local_coverage: self.local_coverage.count(),
            pending_tests: self.pool.len(),
        }
    }
}

impl std::fmt::Display for Arm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "arm {} (seed {}, {} pending tests, {} local points, {} resets)",
            self.index,
            self.seed.id,
            self.pool.len(),
            self.local_coverage.count(),
            self.resets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage::CoverPointId;
    use fuzzer::TestId;
    use riscv::{Instr, Program};

    fn seed(id: u64) -> TestCase {
        TestCase::seed(TestId(id), Program::from_instrs(vec![Instr::nop()]))
    }

    fn coverage(len: usize, ids: &[u32]) -> CoverageMap {
        let mut map = CoverageMap::with_len(len);
        for &i in ids {
            map.cover(CoverPointId(i));
        }
        map
    }

    #[test]
    fn new_arm_holds_its_seed_in_the_pool() {
        let mut arm = Arm::new(3, seed(1), 64);
        assert_eq!(arm.index(), 3);
        assert_eq!(arm.pool().len(), 1);
        let test = arm.next_test().expect("seed is pending");
        assert_eq!(test.id, TestId(1));
        assert_eq!(arm.pulls_since_reset(), 1);
        assert!(arm.next_test().is_none());
    }

    #[test]
    fn absorb_coverage_tracks_arm_local_novelty() {
        let mut arm = Arm::new(0, seed(1), 64);
        assert_eq!(arm.absorb_coverage(&coverage(64, &[1, 2, 3])), 3);
        assert_eq!(arm.absorb_coverage(&coverage(64, &[2, 3, 4])), 1);
        assert_eq!(arm.local_coverage().count(), 4);
    }

    #[test]
    fn reset_replaces_the_seed_and_clears_state() {
        let mut arm = Arm::new(0, seed(1), 32);
        arm.next_test();
        arm.absorb_coverage(&coverage(32, &[5]));
        arm.pool_mut().push(seed(7));
        arm.reset(seed(9));
        assert_eq!(arm.seed().id, TestId(9));
        assert_eq!(arm.pool().len(), 1, "pool holds only the fresh seed");
        assert_eq!(arm.local_coverage().count(), 0);
        assert_eq!(arm.pulls_since_reset(), 0);
        assert_eq!(arm.total_pulls(), 1, "lifetime pulls survive resets");
        assert_eq!(arm.resets(), 1);
    }

    #[test]
    fn stats_snapshot_reflects_the_arm() {
        let mut arm = Arm::new(2, seed(4), 16);
        arm.next_test();
        arm.absorb_coverage(&coverage(16, &[0, 1]));
        let stats = arm.stats();
        assert_eq!(stats.index, 2);
        assert_eq!(stats.total_pulls, 1);
        assert_eq!(stats.local_coverage, 2);
        assert_eq!(stats.pending_tests, 0);
        assert!(arm.to_string().contains("arm 2"));
    }
}
