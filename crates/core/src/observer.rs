//! Streaming campaign observation.
//!
//! A MABFuzz campaign is a stream of decisions and measurements: the bandit
//! selects an arm, a batch of that arm's tests is simulated, each outcome is
//! folded into the campaign in `test_index` order, saturated arms are reset.
//! [`CampaignObserver`] exposes that stream as typed events so tooling —
//! live dashboards, log shippers, custom reward researchers, the future
//! service layer — can watch a campaign *while it runs* instead of waiting
//! for the final [`MabFuzzOutcome`](crate::MabFuzzOutcome).
//!
//! The built-in statistics collection is itself expressed against the same
//! vocabulary: [`CampaignStats`] implements [`CampaignObserver`], and the
//! campaign fold's own bookkeeping performs exactly what that implementation
//! performs. (The fold keeps a direct handle to its stats because the
//! per-test reward depends on the global-novelty count the stats fold
//! returns; attached observers receive the finished event *after* that
//! reduction, with the novelty counts already filled in.)
//!
//! Observers must not — and cannot, the events are immutable borrows —
//! influence the campaign: attaching any number of observers leaves every
//! campaign report byte-identical.
//!
//! # Event-ordering contract
//!
//! Events fire on the campaign thread, in the exact order the deterministic
//! fold processes them:
//!
//! 1. per round: [`ArmSelected`], then for each test of the batch in
//!    ascending `test_index` order a [`TestFolded`] — followed immediately
//!    by [`DetectionObserved`] when that test mismatched, the
//!    [`CoverageMilestone`]s it crossed, and [`ArmReset`] when its fold
//!    saturated the arm — then one [`BatchFolded`] after the round's rewards
//!    were flushed;
//! 2. one final [`CampaignFinished`] after the statistics are finalised.
//!
//! Because the fold itself is shard-independent (rule 3 of the determinism
//! contract in `fuzzer::shard`: outcomes always reduce in `test_index`
//! order), **the event stream is byte-for-byte identical for every shard
//! count** at a fixed batch size — an `EventLog` written under `--shards 4`
//! compares equal to one written under `--shards 1`.
//!
//! # Baseline campaigns
//!
//! Baseline ([`PolicySpec::Baseline`](crate::spec::PolicySpec)) campaigns
//! stream the same per-test protocol through the instrumented TheHuzz FIFO
//! loop (`fuzzer::thehuzz::TheHuzzFuzzer::run_with`): [`TestFolded`],
//! [`DetectionObserved`] and [`CoverageMilestone`] fire per executed test in
//! FIFO order, and [`CampaignFinished`] closes the stream. The baseline has
//! no bandit rounds, so [`ArmSelected`], [`BatchFolded`] and [`ArmReset`]
//! never fire, and its [`TestFolded`] events use the conventions documented
//! on the fields: `arm` is always 0, `local_new == global_new` (one global
//! pool), and `reward` is 0.0 (no bandit is rewarded).
//!
//! # Example
//!
//! ```
//! use std::sync::{Arc, Mutex};
//! use mabfuzz::{CampaignObserver, CampaignSpec, Campaign, TestFolded};
//! use proc_sim::{cores::RocketCore, BugSet};
//!
//! /// Counts detections as they stream by.
//! #[derive(Default)]
//! struct DetectionCounter(Arc<Mutex<u64>>);
//! impl CampaignObserver for DetectionCounter {
//!     fn test_folded(&mut self, event: &TestFolded<'_>) {
//!         if event.detected {
//!             *self.0.lock().unwrap() += 1;
//!         }
//!     }
//! }
//!
//! let spec = CampaignSpec::builder().max_tests(20).build().unwrap();
//! let seen = Arc::new(Mutex::new(0));
//! let outcome = Campaign::from_spec_on(Arc::new(RocketCore::new(BugSet::none())), &spec)
//!     .unwrap()
//!     .with_observer(Box::new(DetectionCounter(Arc::clone(&seen))))
//!     .execute();
//! assert_eq!(*seen.lock().unwrap(), outcome.stats.mismatching_tests());
//! ```

use coverage::CoverageMap;
use fuzzer::{CampaignStats, DiffReport, TestId};

/// The bandit selected the arm a round's batch will pull (Fig. 2 step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmSelected {
    /// 0-based bandit round number.
    pub round: u64,
    /// The selected arm.
    pub arm: usize,
    /// Number of tests the round will simulate for the arm.
    pub batch_len: usize,
}

/// One simulated test was folded into the campaign state, in `test_index`
/// order.
#[derive(Debug)]
pub struct TestFolded<'a> {
    /// 1-based number of the test within the campaign.
    pub test_number: u64,
    /// Id of the test case.
    pub test_id: TestId,
    /// The arm the test was pulled from. Baseline campaigns have no arms and
    /// always report 0.
    pub arm: usize,
    /// Coverage points new to the arm (the `|cov_L|` reward term). Baseline
    /// campaigns have one global pool, so this equals `global_new` — the
    /// novelty count that gates mutation in the FIFO loop.
    pub local_new: usize,
    /// Coverage points new to the whole campaign (the `|cov_G|` term).
    pub global_new: usize,
    /// Cumulative campaign coverage after this test.
    pub covered: usize,
    /// The reward handed to the bandit for this pull.
    ///
    /// Exceptions: when a detection-mode campaign stops on this test, the
    /// campaign halts before a reward is computed or handed to the bandit,
    /// and this field is `0.0` (`detected` is `true` in that case); baseline
    /// campaigns have no bandit to reward and always report `0.0`.
    pub reward: f64,
    /// Whether the test exposed an architectural mismatch.
    pub detected: bool,
    /// The test's coverage bitmap.
    pub coverage: &'a CoverageMap,
    /// The differential-testing report.
    pub diff: &'a DiffReport,
}

/// A round's batch finished folding: every outcome has been reduced and the
/// queued rewards were handed to the bandit via `update_batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchFolded {
    /// 0-based bandit round number.
    pub round: u64,
    /// The arm the batch pulled.
    pub arm: usize,
    /// Number of tests folded (may be short of the plan's batch size at the
    /// end of the budget or after a stopping detection).
    pub tests: usize,
}

/// A test exposed an architectural mismatch (a potential vulnerability).
#[derive(Debug)]
pub struct DetectionObserved<'a> {
    /// 1-based number of the detecting test.
    pub test_number: u64,
    /// Id of the detecting test case.
    pub test_id: TestId,
    /// The arm that produced the test.
    pub arm: usize,
    /// The full differential report of the mismatching test.
    pub diff: &'a DiffReport,
}

impl DetectionObserved<'_> {
    /// The one-line summary of the first mismatch — the same convention
    /// `CampaignStats` records in its `Detection` entries, shared by every
    /// consumer (`EventLog`'s golden-pinned stream, `ProgressMonitor`'s flag
    /// lines) so the rendered summaries cannot drift apart. Empty for a
    /// clean report, which a detection event never carries in practice.
    pub fn summary(&self) -> String {
        self.diff.first().map_or_else(String::new, |mismatch| mismatch.to_string())
    }
}

/// The γ-window monitor declared an arm saturated and the campaign reset it
/// (fresh seed, cleared pool, re-initialised bandit statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmReset {
    /// The reset arm.
    pub arm: usize,
    /// 1-based number of the test whose fold triggered the saturation.
    pub test_number: u64,
    /// Total resets across the campaign so far, including this one.
    pub total_resets: u64,
}

/// Cumulative coverage crossed a decile of the coverage space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageMilestone {
    /// The decile crossed, `1..=10` (i.e. `decile * 10` percent of the
    /// space).
    pub decile: u32,
    /// Cumulative covered points at the crossing.
    pub covered: usize,
    /// Size of the coverage space.
    pub space_len: usize,
    /// 1-based number of the test that crossed the threshold.
    pub test_number: u64,
}

/// The campaign finished (budget exhausted or stopped by a detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignFinished {
    /// Total tests executed.
    pub tests_executed: u64,
    /// Final cumulative coverage.
    pub final_coverage: usize,
    /// Total arm resets.
    pub total_resets: u64,
}

/// A streaming observer of one campaign's event stream.
///
/// Every method has a no-op default, so an observer implements only the
/// events it cares about. Events arrive on the campaign thread, in the exact
/// deterministic order the fold processes them (see the determinism contract
/// in `fuzzer::shard`); an observer therefore sees the same stream whether
/// the campaign runs serially or across shard workers.
///
/// Observers are `Send` so a campaign carrying them can still be dispatched
/// to a worker thread by the experiment grid.
pub trait CampaignObserver: Send {
    /// The bandit selected the round's arm.
    fn arm_selected(&mut self, event: &ArmSelected) {
        let _ = event;
    }

    /// One test was folded into the campaign state.
    fn test_folded(&mut self, event: &TestFolded<'_>) {
        let _ = event;
    }

    /// A round's batch finished folding.
    fn batch_folded(&mut self, event: &BatchFolded) {
        let _ = event;
    }

    /// A test exposed an architectural mismatch.
    fn detection(&mut self, event: &DetectionObserved<'_>) {
        let _ = event;
    }

    /// A saturated arm was reset.
    fn arm_reset(&mut self, event: &ArmReset) {
        let _ = event;
    }

    /// Cumulative coverage crossed a decile of the space.
    fn coverage_milestone(&mut self, event: &CoverageMilestone) {
        let _ = event;
    }

    /// The campaign finished.
    fn campaign_finished(&mut self, event: &CampaignFinished) {
        let _ = event;
    }
}

/// Tracks which coverage deciles a campaign has crossed so each
/// [`CoverageMilestone`] fires exactly once, shared by the MABFuzz fold and
/// the baseline event path — one implementation, so the two streams cannot
/// drift.
#[derive(Debug)]
pub(crate) struct DecileTracker {
    space_len: usize,
    last_decile: u32,
}

impl DecileTracker {
    /// A fresh tracker over a coverage space of `space_len` points.
    pub(crate) fn new(space_len: usize) -> DecileTracker {
        DecileTracker { space_len, last_decile: 0 }
    }

    /// Returns the deciles newly crossed when cumulative coverage reaches
    /// `covered`, advancing the tracker (an empty range when none were).
    pub(crate) fn crossed(&mut self, covered: usize) -> std::ops::RangeInclusive<u32> {
        let decile =
            (covered * 10).checked_div(self.space_len).map_or(0, |d| d.min(10) as u32);
        let crossed = (self.last_decile + 1)..=decile;
        self.last_decile = self.last_decile.max(decile);
        crossed
    }
}

/// The built-in statistics collection, re-expressed as an observer: a
/// [`CampaignStats`] fed the event stream accumulates exactly what the
/// campaign's own stats accumulate (the fold's direct bookkeeping *is* this
/// implementation — `record_test_count` per folded test, `finish` at the
/// end).
///
/// Attach a fresh `CampaignStats` (created with the campaign's label, space
/// length and sample interval) to maintain an independent, concurrently
/// readable shadow copy of the statistics, e.g. behind an `Arc<Mutex<_>>`
/// for a monitoring endpoint.
impl CampaignObserver for CampaignStats {
    fn test_folded(&mut self, event: &TestFolded<'_>) {
        self.record_test_count(event.test_id, event.coverage, event.diff);
    }

    fn campaign_finished(&mut self, _event: &CampaignFinished) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_methods_are_no_ops() {
        struct Silent;
        impl CampaignObserver for Silent {}
        let mut observer = Silent;
        observer.arm_selected(&ArmSelected { round: 0, arm: 0, batch_len: 1 });
        observer.batch_folded(&BatchFolded { round: 0, arm: 0, tests: 1 });
        observer.arm_reset(&ArmReset { arm: 0, test_number: 1, total_resets: 1 });
        observer.coverage_milestone(&CoverageMilestone {
            decile: 1,
            covered: 10,
            space_len: 100,
            test_number: 1,
        });
        observer.campaign_finished(&CampaignFinished {
            tests_executed: 1,
            final_coverage: 10,
            total_resets: 0,
        });
    }

    #[test]
    fn decile_tracker_reports_each_crossing_once() {
        let mut tracker = DecileTracker::new(100);
        assert_eq!(tracker.crossed(5).count(), 0, "below the first decile");
        assert_eq!(tracker.crossed(10).collect::<Vec<_>>(), vec![1]);
        assert_eq!(tracker.crossed(12).count(), 0, "decile 1 already reported");
        assert_eq!(tracker.crossed(47).collect::<Vec<_>>(), vec![2, 3, 4], "jumps report each");
        assert_eq!(tracker.crossed(100).collect::<Vec<_>>(), vec![5, 6, 7, 8, 9, 10]);
        assert_eq!(tracker.crossed(100).count(), 0, "saturated");
        let mut empty_space = DecileTracker::new(0);
        assert_eq!(empty_space.crossed(0).count(), 0, "an empty space has no deciles");
    }

    #[test]
    fn campaign_stats_replays_the_event_stream() {
        let mut map = CoverageMap::with_len(64);
        map.cover(coverage::CoverPointId(3));
        map.cover(coverage::CoverPointId(9));
        let diff = DiffReport::default();
        let mut stats = CampaignStats::new("shadow", 64, 1);
        stats.test_folded(&TestFolded {
            test_number: 1,
            test_id: TestId(0),
            arm: 0,
            local_new: 2,
            global_new: 2,
            covered: 2,
            reward: 2.0,
            detected: false,
            coverage: &map,
            diff: &diff,
        });
        stats.campaign_finished(&CampaignFinished {
            tests_executed: 1,
            final_coverage: 2,
            total_resets: 0,
        });
        assert_eq!(stats.tests_executed(), 1);
        assert_eq!(stats.final_coverage(), 2);
    }
}
