//! Property suites for the campaign-spec JSON codec.
//!
//! Two guarantees the service layer leans on, since `POST /campaigns` feeds
//! attacker-controlled bytes straight into the strict codec:
//!
//! 1. **Total round-trip**: every *valid* spec — any policy, any parameter
//!    combination the builder accepts — encodes to JSON that decodes back to
//!    an equal spec, and re-encodes to the identical bytes.
//! 2. **No panics on hostile input**: arbitrarily mutated and truncated
//!    documents are either parsed (into a spec that then round-trips) or
//!    rejected with a `SpecError` — never a panic in the parser, the schema
//!    walker or validation.

use mab::BanditKind;
use mabfuzz::{BugSpec, CampaignSpec, CampaignSpecBuilder, PolicySpec};
use proc_sim::{ProcessorKind, Vulnerability};
use proptest::prelude::*;

/// Builds a valid spec from the property's raw draws.
#[allow(clippy::too_many_arguments)]
fn arbitrary_valid_spec(
    policy_index: usize,
    alpha_percent: usize,
    gamma: usize,
    epsilon_percent: usize,
    eta_thousandths: usize,
    rng_seed: u64,
    shards: usize,
    batch_size: usize,
    arms: usize,
    max_tests: u64,
    max_steps: usize,
    sample_interval: u64,
    mutations: usize,
    processor_index: usize,
    stop: bool,
) -> CampaignSpec {
    let builder = CampaignSpec::builder();
    let builder = match policy_index % 4 {
        0 => builder.baseline(),
        1 => builder.algorithm(BanditKind::Ucb1),
        2 => builder.algorithm(BanditKind::EpsilonGreedy),
        _ => builder.algorithm(BanditKind::Exp3),
    };
    let builder: CampaignSpecBuilder = match processor_index % 4 {
        0 => builder,
        1 => builder.processor(ProcessorKind::Rocket, BugSpec::Native),
        2 => builder.processor(ProcessorKind::Cva6, BugSpec::Only(Vulnerability::V5MissingAccessFault)),
        _ => builder.processor(ProcessorKind::Boom, BugSpec::None),
    };
    builder
        .alpha(alpha_percent as f64 / 100.0)
        .gamma(gamma)
        .epsilon(epsilon_percent as f64 / 100.0)
        .eta(eta_thousandths as f64 / 1000.0)
        .rng_seed(rng_seed)
        .shards(shards)
        .batch_size(batch_size)
        .arms(arms)
        .max_tests(max_tests)
        .max_steps_per_test(max_steps)
        .sample_interval(sample_interval)
        .mutations_per_interesting_test(mutations)
        .stop_on_first_detection(stop)
        .build()
        .expect("every draw stays inside the validated ranges")
}

proptest! {
    /// Arbitrary valid specs survive encode → decode → encode unchanged.
    #[test]
    fn valid_specs_round_trip_through_json(
        policy_index in 0usize..4,
        alpha_percent in 0usize..=100,
        gamma in 1usize..12,
        epsilon_percent in 0usize..=100,
        eta_thousandths in 1usize..=2500,
        rng_seed in 0u64..=u64::MAX,
        shards in 1usize..6,
        batch_size in 1usize..10,
        arms in 1usize..14,
        max_tests in 1u64..100_000,
        max_steps in 1usize..1000,
        sample_interval in 1u64..100,
        mutations in 0usize..8,
        processor_index in 0usize..4,
        stop_flag in 0usize..2,
    ) {
        let spec = arbitrary_valid_spec(
            policy_index, alpha_percent, gamma, epsilon_percent, eta_thousandths,
            rng_seed, shards, batch_size, arms, max_tests, max_steps,
            sample_interval, mutations, processor_index, stop_flag == 1,
        );
        let json = spec.to_json();
        let restored = CampaignSpec::from_json(&json).expect("a valid spec's JSON parses");
        prop_assert_eq!(&restored, &spec, "decode(encode(spec)) == spec");
        prop_assert_eq!(restored.to_json(), json, "rendering is deterministic");
        // The policy spelling in the document resolves back to the policy.
        prop_assert_eq!(PolicySpec::parse(spec.policy.name()).unwrap(), spec.policy);
    }

    /// Mutated documents — a character replaced, inserted or deleted —
    /// never panic the strict codec; when they still parse, the result is a
    /// valid spec that round-trips.
    #[test]
    fn mutated_spec_documents_never_panic(
        policy_index in 0usize..4,
        processor_index in 0usize..4,
        rng_seed in 0u64..=u64::MAX,
        mutation_kind in 0usize..3,
        position_permille in 0usize..1000,
        replacement in 0usize..96,
    ) {
        let spec = arbitrary_valid_spec(
            policy_index, 25, 3, 10, 100, rng_seed, 1, 1, 4, 100, 200, 5, 2,
            processor_index, false,
        );
        let document: Vec<char> = spec.to_json().chars().collect();
        let position = position_permille * document.len() / 1000;
        // Printable-ASCII replacement alphabet: covers structural bytes
        // (quotes, braces, commas, digits) and plain letters.
        let replacement = (b' ' + replacement as u8) as char;
        let mut mutated: Vec<char> = document.clone();
        match mutation_kind {
            0 => mutated[position.min(document.len() - 1)] = replacement,
            1 => mutated.insert(position, replacement),
            _ => {
                mutated.remove(position.min(document.len() - 1));
            }
        }
        let mutated: String = mutated.into_iter().collect();
        if let Ok(parsed) = CampaignSpec::from_json(&mutated) {
            // Still-valid documents (e.g. a digit flipped inside a number)
            // must keep the codec total.
            let rendered = parsed.to_json();
            prop_assert_eq!(CampaignSpec::from_json(&rendered).unwrap(), parsed);
        }
    }

    /// Truncated documents — any prefix of a valid document — never panic,
    /// and only the full document parses.
    #[test]
    fn truncated_spec_documents_never_panic(
        policy_index in 0usize..4,
        processor_index in 0usize..4,
        rng_seed in 0u64..=u64::MAX,
        keep_permille in 0usize..1000,
    ) {
        let spec = arbitrary_valid_spec(
            policy_index, 25, 3, 10, 100, rng_seed, 2, 4, 4, 100, 200, 5, 2,
            processor_index, true,
        );
        let document: Vec<char> = spec.to_json().chars().collect();
        let keep = keep_permille * document.len() / 1000;
        let prefix: String = document[..keep].iter().collect();
        prop_assert!(
            CampaignSpec::from_json(&prefix).is_err(),
            "a strict codec rejects every proper prefix (kept {keep} of {} chars)",
            document.len()
        );
    }
}

/// Deep recursion must not blow the parser's stack: the reader enforces
/// `json_value::MAX_DEPTH`, so a hostile `[[[[…` document — the service
/// parses attacker-controlled bodies on ordinary connection threads — is
/// rejected with an error long before the recursion could overflow.
#[test]
fn deeply_nested_documents_fail_without_crashing() {
    let document = "[".repeat(1 << 20);
    let error = CampaignSpec::from_json(&document).expect_err("hostile nesting rejected");
    assert!(error.to_string().contains("nesting deeper"), "{error}");
}
