//! Decode-stage model with per-opcode and cross-product coverage points.

// detlint: allow-file(default-hasher) -- the op/class maps are built once
// from fixed registration order and then only probed by key per committed
// instruction; nothing iterates them, so point ids and coverage bytes are
// hash-order independent.
use std::collections::HashMap;

use coverage::{CoverPointId, CoverageMap, CoverageSpace};
use riscv::{Instr, Op, OpClass};

/// Decode-unit model.
///
/// Coverage points:
/// * per-operation decode (`|Op| × 2`: this op decoded / another op of the
///   same class decoded),
/// * per-class crosses with operand shapes (`rd == x0`, `rs1 == rs2`,
///   negative immediate), which need specific operand patterns to reach,
/// * illegal-instruction path (split by major-opcode bucket, so different
///   kinds of garbage words reach different points),
/// * compressed-instruction and privilege-violation sites that the modelled
///   ISA can never reach — deliberately unreachable points that keep total
///   coverage below 100 % like on the real designs.
#[derive(Debug, Clone)]
pub struct DecoderModel {
    op_seen: HashMap<Op, CoverPointId>,
    op_other: HashMap<Op, CoverPointId>,
    class_rd_zero: HashMap<OpClass, (CoverPointId, CoverPointId)>,
    class_same_src: HashMap<OpClass, (CoverPointId, CoverPointId)>,
    class_neg_imm: HashMap<OpClass, (CoverPointId, CoverPointId)>,
    illegal_buckets: Vec<CoverPointId>,
    legal_id: CoverPointId,
    #[allow(dead_code)]
    unreachable_ids: Vec<CoverPointId>,
    depth_ids: Vec<CoverPointId>,
    decoded_count: usize,
}

impl DecoderModel {
    /// Creates a decoder model and registers its coverage points.
    ///
    /// `depth_sites` controls how many "consecutive-decode depth" points are
    /// registered; larger values add points only long runs of instructions can
    /// reach, which is one of the knobs the cores use to differentiate how
    /// hard full coverage is.
    pub fn new(space: &mut CoverageSpace, depth_sites: usize) -> DecoderModel {
        let module = "decoder";
        let mut op_seen = HashMap::new();
        let mut op_other = HashMap::new();
        for op in Op::ALL {
            let (seen, other) = space.register_site(module, format!("op_{}", op.mnemonic()));
            op_seen.insert(op, seen);
            op_other.insert(op, other);
        }
        let mut class_rd_zero = HashMap::new();
        let mut class_same_src = HashMap::new();
        let mut class_neg_imm = HashMap::new();
        for class in OpClass::ALL {
            class_rd_zero.insert(class, space.register_site(module, format!("{class}_rd_is_x0")));
            class_same_src.insert(class, space.register_site(module, format!("{class}_rs1_eq_rs2")));
            class_neg_imm.insert(class, space.register_site(module, format!("{class}_imm_negative")));
        }
        let mut illegal_buckets = Vec::new();
        for bucket in 0..8 {
            illegal_buckets.push(space.register_branch(module, format!("illegal_major{bucket}"), true));
        }
        let legal_id = space.register_branch(module, "illegal_any", false);
        // Deliberately unreachable sites (compressed ISA, supervisor/user
        // privilege checks) mirroring logic the real decoders contain but the
        // fuzzer's bare-metal machine-mode programs cannot reach.
        let mut unreachable_ids = Vec::new();
        for site in ["rvc_quadrant0", "rvc_quadrant1", "rvc_quadrant2", "smode_csr", "umode_csr", "vector_cfg"] {
            let (t, _) = space.register_site(module, site);
            unreachable_ids.push(t);
        }
        let mut depth_ids = Vec::new();
        for i in 0..depth_sites {
            depth_ids.push(space.register_branch(module, format!("decode_depth_{}", 8 * (i + 1)), true));
        }
        DecoderModel {
            op_seen,
            op_other,
            class_rd_zero,
            class_same_src,
            class_neg_imm,
            illegal_buckets,
            legal_id,
            unreachable_ids,
            depth_ids,
            decoded_count: 0,
        }
    }

    /// Clears the per-test decode counter.
    pub fn reset(&mut self) {
        self.decoded_count = 0;
    }

    /// Records the decode of a legal instruction.
    pub fn on_decode(&mut self, instr: &Instr, map: &mut CoverageMap) {
        map.cover(self.legal_id);
        map.cover(self.op_seen[&instr.op]);
        // The "other direction" of each op's site is reachable by decoding a
        // different op of the same class, mirroring the else-branches of a
        // per-class decode tree.
        for op in Op::of_class(instr.op.class()) {
            if op != instr.op {
                map.cover(self.op_other[&op]);
            }
        }
        let class = instr.op.class();
        let (zero_t, zero_f) = self.class_rd_zero[&class];
        map.cover(if instr.rd.is_zero() { zero_t } else { zero_f });
        let (same_t, same_f) = self.class_same_src[&class];
        map.cover(if instr.rs1 == instr.rs2 { same_t } else { same_f });
        let (neg_t, neg_f) = self.class_neg_imm[&class];
        map.cover(if instr.imm < 0 { neg_t } else { neg_f });

        self.decoded_count += 1;
        let depth_bucket = self.decoded_count / 8;
        if depth_bucket >= 1 && depth_bucket <= self.depth_ids.len() {
            map.cover(self.depth_ids[depth_bucket - 1]);
        }
    }

    /// Records the decode of an illegal instruction word.
    pub fn on_illegal(&mut self, word: u32, map: &mut CoverageMap) {
        let bucket = (word & 0x7f) as usize % self.illegal_buckets.len();
        map.cover(self.illegal_buckets[bucket]);
    }

    /// Returns how many legal instructions have been decoded in this test.
    pub fn decoded_count(&self) -> usize {
        self.decoded_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::Gpr;

    fn setup(depth: usize) -> (CoverageSpace, DecoderModel) {
        let mut space = CoverageSpace::new("test");
        let decoder = DecoderModel::new(&mut space, depth);
        (space, decoder)
    }

    #[test]
    fn registers_per_op_and_cross_points() {
        let (space, _decoder) = setup(4);
        // 74 ops × 2 + 10 classes × 3 crosses × 2 + 8 illegal + 1 legal
        // + 6 unreachable × 2 + 4 depth.
        assert_eq!(space.len(), 74 * 2 + 10 * 6 + 8 + 1 + 12 + 4);
    }

    #[test]
    fn decoding_an_op_covers_its_point_and_class_crosses() {
        let (space, mut decoder) = setup(0);
        let mut map = CoverageMap::for_space(&space);
        let instr = Instr::rtype(Op::Add, Gpr::Zero, Gpr::A0, Gpr::A0);
        decoder.on_decode(&instr, &mut map);
        assert!(map.is_covered(space.lookup("decoder", "op_add", true).unwrap()));
        assert!(map.is_covered(space.lookup("decoder", "op_sub", false).unwrap()));
        assert!(!map.is_covered(space.lookup("decoder", "op_sub", true).unwrap()));
        assert!(map.is_covered(space.lookup("decoder", "arith_rd_is_x0", true).unwrap()));
        assert!(map.is_covered(space.lookup("decoder", "arith_rs1_eq_rs2", true).unwrap()));
        assert!(map.is_covered(space.lookup("decoder", "arith_imm_negative", false).unwrap()));
        assert_eq!(decoder.decoded_count(), 1);
    }

    #[test]
    fn illegal_words_map_to_major_opcode_buckets() {
        let (space, mut decoder) = setup(0);
        let mut map = CoverageMap::for_space(&space);
        decoder.on_illegal(0xffff_ffff, &mut map);
        decoder.on_illegal(0x0000_0000, &mut map);
        let covered: Vec<_> = (0..8)
            .filter(|b| {
                map.is_covered(space.lookup("decoder", &format!("illegal_major{b}"), true).unwrap())
            })
            .collect();
        assert_eq!(covered.len(), 2);
    }

    #[test]
    fn depth_points_need_long_instruction_runs() {
        let (space, mut decoder) = setup(3);
        let mut map = CoverageMap::for_space(&space);
        let instr = Instr::nop();
        for _ in 0..7 {
            decoder.on_decode(&instr, &mut map);
        }
        assert!(!map.is_covered(space.lookup("decoder", "decode_depth_8", true).unwrap()));
        decoder.on_decode(&instr, &mut map);
        assert!(map.is_covered(space.lookup("decoder", "decode_depth_8", true).unwrap()));
        assert!(!map.is_covered(space.lookup("decoder", "decode_depth_16", true).unwrap()));
        decoder.reset();
        assert_eq!(decoder.decoded_count(), 0);
    }

    #[test]
    fn unreachable_sites_exist_but_are_never_covered() {
        let (space, mut decoder) = setup(0);
        let mut map = CoverageMap::for_space(&space);
        for op in Op::ALL {
            let instr = Instr { op, rd: Gpr::A0, rs1: Gpr::A1, rs2: Gpr::A2, imm: -4 }.normalize();
            decoder.on_decode(&instr, &mut map);
        }
        assert!(!map.is_covered(space.lookup("decoder", "rvc_quadrant0", true).unwrap()));
        assert!(!map.is_covered(space.lookup("decoder", "smode_csr", true).unwrap()));
    }
}
