//! CSR-file model: per-CSR access coverage and exception-path coverage.

// detlint: allow-file(default-hasher) -- the CSR id maps are built once
// from fixed registration order and then only probed by address; nothing
// iterates them, so coverage bytes are hash-order independent.
use std::collections::HashMap;

use coverage::{CoverPointId, CoverageMap, CoverageSpace};
use riscv::CsrAddr;

/// CSR-file model.
///
/// Coverage points:
/// * per implemented CSR: read and write sites,
/// * unimplemented-CSR access, bucketed by address nibble (16 points),
/// * read-only-CSR write attempts,
/// * trap-CSR update events (exception taken, trap-vector redirect taken or
///   not),
/// * `mret` executed.
#[derive(Debug, Clone)]
pub struct CsrFileModel {
    read_ids: HashMap<u16, CoverPointId>,
    write_ids: HashMap<u16, CoverPointId>,
    unimpl_buckets: Vec<CoverPointId>,
    read_only_write: CoverPointId,
    exception_taken: (CoverPointId, CoverPointId),
    redirect_taken: (CoverPointId, CoverPointId),
    mret_seen: CoverPointId,
}

impl CsrFileModel {
    /// Creates a CSR-file model and registers its coverage points.
    pub fn new(space: &mut CoverageSpace) -> CsrFileModel {
        let module = "csrfile";
        let mut read_ids = HashMap::new();
        let mut write_ids = HashMap::new();
        for csr in CsrAddr::IMPLEMENTED {
            let name = csr.name().expect("implemented CSRs are named");
            read_ids.insert(csr.value(), space.register_branch(module, format!("read_{name}"), true));
            write_ids.insert(csr.value(), space.register_branch(module, format!("write_{name}"), true));
        }
        let unimpl_buckets = (0..16)
            .map(|i| space.register_branch(module, format!("unimplemented_nibble{i:x}"), true))
            .collect();
        let read_only_write = space.register_branch(module, "read_only_write_attempt", true);
        let exception_taken = space.register_site(module, "exception_taken");
        let redirect_taken = space.register_site(module, "trap_redirect_taken");
        let mret_seen = space.register_branch(module, "mret_executed", true);
        CsrFileModel {
            read_ids,
            write_ids,
            unimpl_buckets,
            read_only_write,
            exception_taken,
            redirect_taken,
            mret_seen,
        }
    }

    /// No per-test state; present for interface symmetry.
    pub fn reset(&mut self) {}

    /// Records an access to a CSR address. `writes` indicates whether the
    /// instruction writes the CSR (after the `csrrs/csrrc x0` special cases).
    pub fn on_access(&self, csr: CsrAddr, writes: bool, map: &mut CoverageMap) {
        if csr.is_implemented() {
            map.cover(self.read_ids[&csr.value()]);
            if writes {
                if csr.is_read_only() {
                    map.cover(self.read_only_write);
                } else {
                    map.cover(self.write_ids[&csr.value()]);
                }
            }
        } else {
            let bucket = (csr.value() >> 8) as usize & 0xf;
            map.cover(self.unimpl_buckets[bucket]);
        }
    }

    /// Records whether an instruction raised an exception, and whether the
    /// trap was redirected to a configured vector.
    pub fn on_exception(&self, redirected: bool, map: &mut CoverageMap) {
        let (taken, _) = self.exception_taken;
        map.cover(taken);
        let (redir_t, redir_f) = self.redirect_taken;
        map.cover(if redirected { redir_t } else { redir_f });
    }

    /// Records an instruction that committed without an exception.
    pub fn on_no_exception(&self, map: &mut CoverageMap) {
        let (_, not_taken) = self.exception_taken;
        map.cover(not_taken);
    }

    /// Records an `mret`.
    pub fn on_mret(&self, map: &mut CoverageMap) {
        map.cover(self.mret_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CoverageSpace, CsrFileModel) {
        let mut space = CoverageSpace::new("test");
        let csrfile = CsrFileModel::new(&mut space);
        (space, csrfile)
    }

    #[test]
    fn registers_expected_number_of_points() {
        let (space, _csr) = setup();
        // 17 CSRs × 2 + 16 unimplemented buckets + 1 read-only + 2 + 2 + 1.
        assert_eq!(space.len(), 17 * 2 + 16 + 1 + 2 + 2 + 1);
    }

    #[test]
    fn implemented_accesses_cover_read_and_write() {
        let (space, csrfile) = setup();
        let mut map = CoverageMap::for_space(&space);
        csrfile.on_access(CsrAddr::MSCRATCH, true, &mut map);
        csrfile.on_access(CsrAddr::MEPC, false, &mut map);
        assert!(map.is_covered(space.lookup("csrfile", "read_mscratch", true).unwrap()));
        assert!(map.is_covered(space.lookup("csrfile", "write_mscratch", true).unwrap()));
        assert!(map.is_covered(space.lookup("csrfile", "read_mepc", true).unwrap()));
        assert!(!map.is_covered(space.lookup("csrfile", "write_mepc", true).unwrap()));
    }

    #[test]
    fn read_only_writes_cover_the_violation_point() {
        let (space, csrfile) = setup();
        let mut map = CoverageMap::for_space(&space);
        csrfile.on_access(CsrAddr::MHARTID, true, &mut map);
        assert!(map.is_covered(space.lookup("csrfile", "read_only_write_attempt", true).unwrap()));
        assert!(!map.is_covered(space.lookup("csrfile", "write_mhartid", true).unwrap()));
    }

    #[test]
    fn unimplemented_accesses_bucket_by_address() {
        let (space, csrfile) = setup();
        let mut map = CoverageMap::for_space(&space);
        csrfile.on_access(CsrAddr::new(0x5c0), false, &mut map);
        csrfile.on_access(CsrAddr::new(0x7a0), false, &mut map);
        assert!(map.is_covered(space.lookup("csrfile", "unimplemented_nibble5", true).unwrap()));
        assert!(map.is_covered(space.lookup("csrfile", "unimplemented_nibble7", true).unwrap()));
        assert!(!map.is_covered(space.lookup("csrfile", "unimplemented_nibble1", true).unwrap()));
    }

    #[test]
    fn exception_and_mret_events() {
        let (space, csrfile) = setup();
        let mut map = CoverageMap::for_space(&space);
        csrfile.on_no_exception(&mut map);
        csrfile.on_exception(false, &mut map);
        csrfile.on_exception(true, &mut map);
        csrfile.on_mret(&mut map);
        assert!(map.is_covered(space.lookup("csrfile", "exception_taken", true).unwrap()));
        assert!(map.is_covered(space.lookup("csrfile", "exception_taken", false).unwrap()));
        assert!(map.is_covered(space.lookup("csrfile", "trap_redirect_taken", true).unwrap()));
        assert!(map.is_covered(space.lookup("csrfile", "trap_redirect_taken", false).unwrap()));
        assert!(map.is_covered(space.lookup("csrfile", "mret_executed", true).unwrap()));
    }
}
