//! Load/store-unit model: data cache, store buffer and access-shape coverage.

use std::collections::VecDeque;

use coverage::{CoverPointId, CoverageMap, CoverageSpace};

use super::cache::CacheModel;

/// The result of a load as seen by the LSU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LsuOutcome {
    /// The load was forwarded from the store buffer.
    pub forwarded: bool,
    /// A stale value is available for this address: a recent store's
    /// *pre-store* memory value whose cache line has since been evicted.
    ///
    /// This is the raw material for the V4 cache-coherency vulnerability; a
    /// bug-free core ignores it, the buggy CVA6 model returns it instead of
    /// the up-to-date value.
    pub stale_value: Option<u64>,
}

#[derive(Debug, Clone)]
struct StoreRecord {
    addr: u64,
    width: u64,
    old_value: u64,
    line: u64,
    line_evicted: bool,
}

/// Load/store unit with a write-through data cache and a small store buffer.
///
/// Coverage points:
/// * access width × direction (8 single-direction points),
/// * data-region vs. text-region loads,
/// * store-buffer forwarding hit/miss and buffer-full events,
/// * per-width misaligned-access fault sites,
/// * load/store access-fault sites,
/// * all the per-set points of the underlying [`CacheModel`].
#[derive(Debug, Clone)]
pub struct LsuModel {
    dcache: CacheModel,
    store_buffer: VecDeque<StoreRecord>,
    capacity: usize,
    width_load_ids: Vec<CoverPointId>,
    width_store_ids: Vec<CoverPointId>,
    region_data: (CoverPointId, CoverPointId),
    forward_hit: (CoverPointId, CoverPointId),
    buffer_full: CoverPointId,
    misaligned_ids: Vec<CoverPointId>,
    load_fault: CoverPointId,
    store_fault: CoverPointId,
    stale_window: CoverPointId,
}

impl LsuModel {
    /// Creates an LSU with a data cache of `sets × ways` lines of 64 bytes and
    /// a store buffer of `store_buffer_capacity` entries.
    pub fn new(
        space: &mut CoverageSpace,
        sets: usize,
        ways: usize,
        store_buffer_capacity: usize,
    ) -> LsuModel {
        let module = "lsu";
        let dcache = CacheModel::new(space, "dcache", sets, ways, 64);
        let widths = [1u64, 2, 4, 8];
        let width_load_ids = widths
            .iter()
            .map(|w| space.register_branch(module, format!("load_width{w}"), true))
            .collect();
        let width_store_ids = widths
            .iter()
            .map(|w| space.register_branch(module, format!("store_width{w}"), true))
            .collect();
        let region_data = space.register_site(module, "access_in_data_region");
        let forward_hit = space.register_site(module, "store_buffer_forward");
        let buffer_full = space.register_branch(module, "store_buffer_full", true);
        let misaligned_ids = widths
            .iter()
            .map(|w| space.register_branch(module, format!("misaligned_width{w}"), true))
            .collect();
        let load_fault = space.register_branch(module, "load_access_fault", true);
        let store_fault = space.register_branch(module, "store_access_fault", true);
        let stale_window = space.register_branch(module, "stale_line_window", true);
        LsuModel {
            dcache,
            store_buffer: VecDeque::new(),
            capacity: store_buffer_capacity.max(1),
            width_load_ids,
            width_store_ids,
            region_data,
            forward_hit,
            buffer_full,
            misaligned_ids,
            load_fault,
            store_fault,
            stale_window,
        }
    }

    /// Clears the cache and store buffer (the full-reinit differential
    /// oracle).
    pub fn reset(&mut self) {
        self.dcache.reset();
        self.store_buffer.clear();
    }

    /// Like [`reset`](LsuModel::reset), but only the dcache sets touched
    /// since the last reset are cleared. The store buffer is a short
    /// `VecDeque` whose `clear` is already O(len ≤ capacity).
    pub fn reset_dirty(&mut self) {
        self.dcache.reset_dirty();
        self.store_buffer.clear();
    }

    /// Records a successful load and returns forwarding/staleness information.
    pub fn on_load(&mut self, addr: u64, width: u64, in_data_region: bool, map: &mut CoverageMap) -> LsuOutcome {
        map.cover(self.width_load_ids[width_index(width)]);
        let (data_t, data_f) = self.region_data;
        map.cover(if in_data_region { data_t } else { data_f });

        let cache_outcome = self.dcache.access(addr, false, map);
        if let Some(evicted) = cache_outcome.evicted {
            self.mark_evicted(evicted);
        }

        let record = self
            .store_buffer
            .iter()
            .rev()
            .find(|r| overlaps(r.addr, r.width, addr, width));
        let (forward_t, forward_f) = self.forward_hit;
        let mut outcome = LsuOutcome::default();
        match record {
            Some(r) => {
                map.cover(forward_t);
                outcome.forwarded = true;
                if r.line_evicted && r.addr == addr && r.width == width {
                    map.cover(self.stale_window);
                    outcome.stale_value = Some(r.old_value);
                }
            }
            None => map.cover(forward_f),
        }
        outcome
    }

    /// Records a successful store. `old_value` is the memory content the store
    /// overwrites (captured by the core driver before committing the store).
    pub fn on_store(&mut self, addr: u64, width: u64, old_value: u64, map: &mut CoverageMap) {
        map.cover(self.width_store_ids[width_index(width)]);
        let (data_t, _) = self.region_data;
        map.cover(data_t);
        let cache_outcome = self.dcache.access(addr, true, map);
        if let Some(evicted) = cache_outcome.evicted {
            self.mark_evicted(evicted);
        }
        if self.store_buffer.len() >= self.capacity {
            map.cover(self.buffer_full);
            self.store_buffer.pop_front();
        }
        self.store_buffer.push_back(StoreRecord {
            addr,
            width,
            old_value,
            line: self.dcache.line_of(addr),
            line_evicted: false,
        });
    }

    /// Records a misaligned access attempt.
    pub fn on_misaligned(&mut self, width: u64, map: &mut CoverageMap) {
        map.cover(self.misaligned_ids[width_index(width)]);
    }

    /// Records an access fault (load or store to an unmapped region).
    pub fn on_access_fault(&mut self, is_store: bool, map: &mut CoverageMap) {
        map.cover(if is_store { self.store_fault } else { self.load_fault });
    }

    /// Returns the number of pending store-buffer entries.
    pub fn store_buffer_len(&self) -> usize {
        self.store_buffer.len()
    }

    fn mark_evicted(&mut self, line: u64) {
        for record in &mut self.store_buffer {
            if record.line == line {
                record.line_evicted = true;
            }
        }
    }
}

fn width_index(width: u64) -> usize {
    match width {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => 3,
    }
}

fn overlaps(a_addr: u64, a_width: u64, b_addr: u64, b_width: u64) -> bool {
    a_addr < b_addr + b_width && b_addr < a_addr + a_width
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CoverageSpace, LsuModel) {
        let mut space = CoverageSpace::new("test");
        // A deliberately tiny direct-mapped cache so evictions are easy to force.
        let lsu = LsuModel::new(&mut space, 2, 1, 4);
        (space, lsu)
    }

    const BASE: u64 = 0x8001_0000;

    #[test]
    fn loads_and_stores_cover_width_and_region_points() {
        let (space, mut lsu) = setup();
        let mut map = CoverageMap::for_space(&space);
        lsu.on_store(BASE, 8, 0, &mut map);
        lsu.on_load(BASE, 8, true, &mut map);
        lsu.on_load(0x8000_0000, 4, false, &mut map);
        assert!(map.is_covered(space.lookup("lsu", "load_width8", true).unwrap()));
        assert!(map.is_covered(space.lookup("lsu", "store_width8", true).unwrap()));
        assert!(map.is_covered(space.lookup("lsu", "access_in_data_region", true).unwrap()));
        assert!(map.is_covered(space.lookup("lsu", "access_in_data_region", false).unwrap()));
    }

    #[test]
    fn store_buffer_forwards_to_overlapping_loads() {
        let (space, mut lsu) = setup();
        let mut map = CoverageMap::for_space(&space);
        lsu.on_store(BASE, 8, 0xaaaa, &mut map);
        let hit = lsu.on_load(BASE + 4, 4, true, &mut map);
        assert!(hit.forwarded);
        let miss = lsu.on_load(BASE + 64, 8, true, &mut map);
        assert!(!miss.forwarded);
        assert!(map.is_covered(space.lookup("lsu", "store_buffer_forward", true).unwrap()));
        assert!(map.is_covered(space.lookup("lsu", "store_buffer_forward", false).unwrap()));
    }

    #[test]
    fn stale_value_appears_only_after_line_eviction() {
        let (space, mut lsu) = setup();
        let mut map = CoverageMap::for_space(&space);
        lsu.on_store(BASE, 8, 0xdead, &mut map);
        // Same line still resident: no staleness.
        assert_eq!(lsu.on_load(BASE, 8, true, &mut map).stale_value, None);
        // Evict the line: the cache has 2 sets × 1 way with 64-byte lines, so
        // an access 128 bytes away maps to the same set and evicts it.
        lsu.on_load(BASE + 128, 8, true, &mut map);
        let outcome = lsu.on_load(BASE, 8, true, &mut map);
        assert_eq!(outcome.stale_value, Some(0xdead));
        assert!(map.is_covered(space.lookup("lsu", "stale_line_window", true).unwrap()));
    }

    #[test]
    fn store_buffer_capacity_is_bounded() {
        let (space, mut lsu) = setup();
        let mut map = CoverageMap::for_space(&space);
        for i in 0..6u64 {
            lsu.on_store(BASE + i * 8, 8, i, &mut map);
        }
        assert_eq!(lsu.store_buffer_len(), 4);
        assert!(map.is_covered(space.lookup("lsu", "store_buffer_full", true).unwrap()));
    }

    #[test]
    fn fault_and_misaligned_sites() {
        let (space, mut lsu) = setup();
        let mut map = CoverageMap::for_space(&space);
        lsu.on_misaligned(4, &mut map);
        lsu.on_access_fault(false, &mut map);
        lsu.on_access_fault(true, &mut map);
        assert!(map.is_covered(space.lookup("lsu", "misaligned_width4", true).unwrap()));
        assert!(map.is_covered(space.lookup("lsu", "load_access_fault", true).unwrap()));
        assert!(map.is_covered(space.lookup("lsu", "store_access_fault", true).unwrap()));
    }

    #[test]
    fn dirty_reset_clears_buffer_and_cache() {
        let (space, mut lsu) = setup();
        let mut map = CoverageMap::for_space(&space);
        lsu.on_store(BASE, 8, 1, &mut map);
        lsu.reset_dirty();
        assert_eq!(lsu.store_buffer_len(), 0);
        let outcome = lsu.on_load(BASE, 8, true, &mut map);
        assert!(!outcome.forwarded, "store buffer cleared");
        // The re-access after the reset is a cold miss again, so the dcache
        // line really was invalidated, not just deprioritised.
        assert!(lsu.dcache.contains(BASE));
    }

    #[test]
    fn reset_clears_buffer_and_cache() {
        let (space, mut lsu) = setup();
        let mut map = CoverageMap::for_space(&space);
        lsu.on_store(BASE, 8, 1, &mut map);
        lsu.reset();
        assert_eq!(lsu.store_buffer_len(), 0);
        assert!(!lsu.on_load(BASE, 8, true, &mut map).forwarded);
    }
}
