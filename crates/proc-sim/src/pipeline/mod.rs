//! Shared micro-architectural pipeline components.
//!
//! Every component follows the same two-phase pattern:
//!
//! 1. **Construction** — `new(&mut CoverageSpace, …)` registers the
//!    component's coverage points and remembers their ids. Construction
//!    happens once per processor instance, so the coverage space and point
//!    ids are stable across tests.
//! 2. **Simulation** — the component keeps per-run state (tag arrays,
//!    predictor tables, queues). The core driver calls `reset()` at the start
//!    of every test and the event methods while instructions commit; event
//!    methods receive the test's [`CoverageMap`](coverage::CoverageMap) and
//!    mark the points they exercise.
//!
//! Components deliberately model *behavioural skeletons*, not cycle-accurate
//! hardware: what matters for the fuzzing experiments is that the coverage
//! points they expose are (a) numerous, (b) unevenly reachable and
//! (c) dependent on the instruction mix of the test program, which is what
//! makes seed selection worth optimising.

pub mod cache;
pub mod csrfile;
pub mod decoder;
pub mod execute;
pub mod frontend;
pub mod lsu;
pub mod rob;
pub mod scoreboard;

pub use cache::{CacheModel, CacheOutcome};
pub use csrfile::CsrFileModel;
pub use decoder::DecoderModel;
pub use execute::ExecuteModel;
pub use frontend::FrontendModel;
pub use lsu::{LsuModel, LsuOutcome};
pub use rob::RobModel;
pub use scoreboard::ScoreboardModel;

/// Buckets a numeric value into one of `buckets` coverage bins using
/// power-of-two-ish thresholds (0, 1, 2, 4, 8, …).
///
/// Several components expose "occupancy" or "latency" coverage as bucketed
/// sites; sharing the bucketing keeps their reachability comparable.
pub fn bucket(value: usize, buckets: usize) -> usize {
    if buckets == 0 {
        return 0;
    }
    let mut threshold = 1usize;
    for bucket_index in 0..buckets {
        if value < threshold {
            return bucket_index;
        }
        threshold *= 2;
    }
    buckets - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_uses_power_of_two_thresholds() {
        assert_eq!(bucket(0, 6), 0);
        assert_eq!(bucket(1, 6), 1);
        assert_eq!(bucket(2, 6), 2);
        assert_eq!(bucket(3, 6), 2);
        assert_eq!(bucket(4, 6), 3);
        assert_eq!(bucket(8, 6), 4);
        assert_eq!(bucket(1_000_000, 6), 5);
        assert_eq!(bucket(5, 0), 0);
    }
}
