//! Re-order buffer and rename model (BOOM-style out-of-order back-end).

use coverage::{CoverPointId, CoverageMap, CoverageSpace};
use riscv::{Instr, OpClass};

use super::bucket;

/// Re-order buffer, rename and issue model for the superscalar core.
///
/// The model approximates an out-of-order window: instructions enter the ROB
/// at dispatch and leave `latency(class)` instructions later, so occupancy
/// reflects the latency mix of the recent instruction stream.
///
/// Coverage points:
/// * per-ROB-entry allocation (`rob_entries`, only reachable when the window
///   actually fills that far),
/// * occupancy buckets,
/// * free-physical-register pressure buckets,
/// * issue-lane utilisation (`lanes × classes`),
/// * flush events (branch redirect / exception) crossed with occupancy,
/// * load-store-queue occupancy buckets.
#[derive(Debug, Clone)]
pub struct RobModel {
    rob_entries: usize,
    lanes: usize,
    entry_ids: Vec<CoverPointId>,
    occupancy_ids: Vec<CoverPointId>,
    free_reg_ids: Vec<CoverPointId>,
    lane_class_ids: Vec<CoverPointId>,
    flush_occupancy_ids: Vec<CoverPointId>,
    lsq_ids: Vec<CoverPointId>,
    // Runtime.
    in_flight: Vec<usize>,
    lsq_len: usize,
    dispatched: u64,
}

const LANE_CLASSES: [OpClass; 6] = [
    OpClass::Arith,
    OpClass::Mul,
    OpClass::Div,
    OpClass::Load,
    OpClass::Store,
    OpClass::Branch,
];

impl RobModel {
    /// Creates a ROB model with `rob_entries` entries and `lanes` issue lanes.
    pub fn new(space: &mut CoverageSpace, rob_entries: usize, lanes: usize) -> RobModel {
        assert!(rob_entries > 0 && lanes > 0, "rob must have entries and lanes");
        let module = "rob";
        let entry_ids = (0..rob_entries)
            .map(|i| space.register_branch(module, format!("entry{i}_allocated"), true))
            .collect();
        let occupancy_ids = (0..8)
            .map(|i| space.register_branch(module, format!("occupancy_bucket{i}"), true))
            .collect();
        let free_reg_ids = (0..6)
            .map(|i| space.register_branch(module, format!("free_regs_bucket{i}"), true))
            .collect();
        let mut lane_class_ids = Vec::new();
        for lane in 0..lanes {
            for class in LANE_CLASSES {
                lane_class_ids.push(space.register_branch(module, format!("lane{lane}_issue_{class}"), true));
            }
        }
        let flush_occupancy_ids = (0..8)
            .map(|i| space.register_branch(module, format!("flush_at_occupancy_bucket{i}"), true))
            .collect();
        let lsq_ids = (0..6)
            .map(|i| space.register_branch(module, format!("lsq_bucket{i}"), true))
            .collect();
        RobModel {
            rob_entries,
            lanes,
            entry_ids,
            occupancy_ids,
            free_reg_ids,
            lane_class_ids,
            flush_occupancy_ids,
            lsq_ids,
            in_flight: Vec::new(),
            lsq_len: 0,
            dispatched: 0,
        }
    }

    /// Clears the window state.
    pub fn reset(&mut self) {
        self.in_flight.clear();
        self.lsq_len = 0;
        self.dispatched = 0;
    }

    /// Records the dispatch of an instruction into the out-of-order window.
    pub fn on_dispatch(&mut self, instr: &Instr, map: &mut CoverageMap) {
        self.dispatched += 1;
        // Age the window: decrement remaining latencies and retire finished entries.
        for remaining in &mut self.in_flight {
            *remaining = remaining.saturating_sub(1);
        }
        self.in_flight.retain(|r| *r > 0);

        let class = instr.op.class();
        let latency = match class {
            OpClass::Div => 16,
            OpClass::Mul => 4,
            OpClass::Load => 6,
            OpClass::Store => 3,
            OpClass::Csr | OpClass::System | OpClass::Fence => 8,
            _ => 2,
        };
        if self.in_flight.len() < self.rob_entries {
            let slot = self.in_flight.len();
            map.cover(self.entry_ids[slot]);
            self.in_flight.push(latency);
        }
        let occupancy = self.in_flight.len();
        map.cover(self.occupancy_ids[bucket(occupancy, self.occupancy_ids.len())]);
        // Physical-register pressure mirrors occupancy (one allocation per
        // in-flight destination).
        let free_regs = self.rob_entries.saturating_sub(occupancy);
        map.cover(self.free_reg_ids[bucket(free_regs, self.free_reg_ids.len())]);

        // Issue-lane utilisation: the lane is picked round-robin per dispatch,
        // which approximates a banked issue queue.
        if let Some(class_index) = LANE_CLASSES.iter().position(|c| *c == class) {
            let lane = (self.dispatched as usize) % self.lanes;
            map.cover(self.lane_class_ids[lane * LANE_CLASSES.len() + class_index]);
        }

        if matches!(class, OpClass::Load | OpClass::Store) {
            self.lsq_len = (self.lsq_len + 1).min(63);
            map.cover(self.lsq_ids[bucket(self.lsq_len, self.lsq_ids.len())]);
        } else if self.lsq_len > 0 {
            self.lsq_len -= 1;
        }
    }

    /// Records a pipeline flush (taken branch redirect or exception) and the
    /// occupancy at which it happened.
    pub fn on_flush(&mut self, map: &mut CoverageMap) {
        let occupancy = self.in_flight.len();
        map.cover(self.flush_occupancy_ids[bucket(occupancy, self.flush_occupancy_ids.len())]);
        self.in_flight.clear();
    }

    /// Returns the current window occupancy.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len()
    }

    /// Returns the number of issue lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::{Gpr, Op};

    fn setup(entries: usize, lanes: usize) -> (CoverageSpace, RobModel) {
        let mut space = CoverageSpace::new("test");
        let rob = RobModel::new(&mut space, entries, lanes);
        (space, rob)
    }

    #[test]
    fn registers_expected_number_of_points() {
        let (space, _rob) = setup(32, 2);
        // 32 entries + 8 occupancy + 6 free regs + 2×6 lanes + 8 flush + 6 lsq.
        assert_eq!(space.len(), 32 + 8 + 6 + 12 + 8 + 6);
    }

    #[test]
    fn occupancy_grows_with_long_latency_instructions() {
        let (space, mut rob) = setup(16, 2);
        let mut map = CoverageMap::for_space(&space);
        let div = Instr::rtype(Op::Div, Gpr::A0, Gpr::A1, Gpr::A2);
        for _ in 0..8 {
            rob.on_dispatch(&div, &mut map);
        }
        assert!(rob.occupancy() >= 4, "divides should pile up in the window");
        assert!(map.is_covered(space.lookup("rob", "entry4_allocated", true).unwrap()));
        // Short-latency streams keep the window small.
        let (space2, mut rob2) = setup(16, 2);
        let mut map2 = CoverageMap::for_space(&space2);
        let addi = Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 1);
        for _ in 0..8 {
            rob2.on_dispatch(&addi, &mut map2);
        }
        assert!(rob2.occupancy() <= 2);
        assert!(!map2.is_covered(space2.lookup("rob", "entry8_allocated", true).unwrap()));
    }

    #[test]
    fn flush_records_occupancy_and_empties_the_window() {
        let (space, mut rob) = setup(8, 1);
        let mut map = CoverageMap::for_space(&space);
        let load = Instr::itype(Op::Ld, Gpr::A0, Gpr::Gp, 0);
        rob.on_dispatch(&load, &mut map);
        rob.on_dispatch(&load, &mut map);
        rob.on_flush(&mut map);
        assert_eq!(rob.occupancy(), 0);
        assert!(map.is_covered(space.lookup("rob", "flush_at_occupancy_bucket2", true).unwrap()));
    }

    #[test]
    fn issue_lanes_round_robin_across_classes() {
        let (space, mut rob) = setup(8, 2);
        let mut map = CoverageMap::for_space(&space);
        let mul = Instr::rtype(Op::Mul, Gpr::A0, Gpr::A1, Gpr::A2);
        rob.on_dispatch(&mul, &mut map);
        rob.on_dispatch(&mul, &mut map);
        assert!(map.is_covered(space.lookup("rob", "lane0_issue_mul", true).unwrap()));
        assert!(map.is_covered(space.lookup("rob", "lane1_issue_mul", true).unwrap()));
        assert_eq!(rob.lanes(), 2);
    }

    #[test]
    fn lsq_buckets_track_memory_pressure() {
        let (space, mut rob) = setup(8, 1);
        let mut map = CoverageMap::for_space(&space);
        let store = Instr::store(Op::Sd, Gpr::A0, Gpr::Gp, 0);
        for _ in 0..4 {
            rob.on_dispatch(&store, &mut map);
        }
        assert!(map.is_covered(space.lookup("rob", "lsq_bucket3", true).unwrap()));
        rob.reset();
        assert_eq!(rob.occupancy(), 0);
    }
}
