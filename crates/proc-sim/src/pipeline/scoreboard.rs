//! In-order scoreboard model (Rocket and CVA6 back-ends).

use coverage::{CoverPointId, CoverageMap, CoverageSpace};
use riscv::{Gpr, Instr, OpClass};

use super::bucket;

/// Scoreboard / hazard-tracking model for in-order issue cores.
///
/// The model tracks, per destination register, how many instructions ago it
/// was last written, and derives hazard coverage from the distance between a
/// producer and its consumers — the same information a real scoreboard uses
/// to decide stalls and forwarding paths.
///
/// Coverage points:
/// * per-register RAW-hazard observed (`32`),
/// * RAW distance buckets (producer→consumer distance 1, 2, 4, 8, …),
/// * WAW-hazard distance buckets,
/// * per-functional-unit busy crosses (consumer class × producer class),
/// * long-latency (div/load) shadow stalls.
#[derive(Debug, Clone)]
pub struct ScoreboardModel {
    raw_per_reg: Vec<CoverPointId>,
    raw_distance: Vec<CoverPointId>,
    waw_distance: Vec<CoverPointId>,
    unit_cross: Vec<CoverPointId>,
    long_latency_shadow: (CoverPointId, CoverPointId),
    distance_buckets: usize,
    // Runtime: for each register, (sequence number, class) of the last writer.
    last_writer: Vec<Option<(u64, OpClass)>>,
    seq: u64,
    // Dirty-reset flag (see `isa_sim::snapshot`): `last_writer` is only
    // written in `on_issue` (non-zero destinations); unset means it is still
    // all-`None`. `seq` is O(1) and resets unconditionally.
    dirty: bool,
}

const UNIT_CLASSES: [OpClass; 5] =
    [OpClass::Arith, OpClass::Mul, OpClass::Div, OpClass::Load, OpClass::Csr];

impl ScoreboardModel {
    /// Creates a scoreboard model and registers its coverage points.
    pub fn new(space: &mut CoverageSpace, distance_buckets: usize) -> ScoreboardModel {
        let module = "scoreboard";
        let raw_per_reg = (0..32)
            .map(|i| space.register_branch(module, format!("raw_on_x{i}"), true))
            .collect();
        let raw_distance = (0..distance_buckets)
            .map(|i| space.register_branch(module, format!("raw_distance_bucket{i}"), true))
            .collect();
        let waw_distance = (0..distance_buckets)
            .map(|i| space.register_branch(module, format!("waw_distance_bucket{i}"), true))
            .collect();
        let mut unit_cross = Vec::new();
        for producer in UNIT_CLASSES {
            for consumer in UNIT_CLASSES {
                unit_cross.push(space.register_branch(
                    module,
                    format!("forward_{producer}_to_{consumer}"),
                    true,
                ));
            }
        }
        let long_latency_shadow = space.register_site(module, "long_latency_shadow");
        ScoreboardModel {
            raw_per_reg,
            raw_distance,
            waw_distance,
            unit_cross,
            long_latency_shadow,
            distance_buckets,
            last_writer: vec![None; 32],
            seq: 0,
            dirty: false,
        }
    }

    /// Clears hazard-tracking state (the full-reinit differential oracle).
    pub fn reset(&mut self) {
        self.last_writer.fill(None);
        self.seq = 0;
        self.dirty = false;
    }

    /// Like [`reset`](ScoreboardModel::reset), but clears the writer table
    /// only when something was written to it since the last reset.
    pub fn reset_dirty(&mut self) {
        if self.dirty {
            self.last_writer.fill(None);
            self.dirty = false;
        }
        self.seq = 0;
    }

    /// Records the issue of an instruction, deriving hazard coverage from its
    /// source and destination registers.
    pub fn on_issue(&mut self, instr: &Instr, map: &mut CoverageMap) {
        self.seq += 1;
        let class = instr.op.class();

        for src in instr.sources() {
            if src.is_zero() {
                continue;
            }
            if let Some((writer_seq, writer_class)) = self.last_writer[src.index() as usize] {
                let distance = (self.seq - writer_seq) as usize;
                map.cover(self.raw_per_reg[src.index() as usize]);
                map.cover(self.raw_distance[bucket(distance, self.distance_buckets)]);
                if let Some(cross) = self.cross_index(writer_class, class) {
                    map.cover(self.unit_cross[cross]);
                }
                let (shadow_t, shadow_f) = self.long_latency_shadow;
                let long_latency = matches!(writer_class, OpClass::Div | OpClass::Load) && distance <= 2;
                map.cover(if long_latency { shadow_t } else { shadow_f });
            }
        }

        if let Some(dest) = instr.dest() {
            if !dest.is_zero() {
                if let Some((writer_seq, _)) = self.last_writer[dest.index() as usize] {
                    let distance = (self.seq - writer_seq) as usize;
                    map.cover(self.waw_distance[bucket(distance, self.distance_buckets)]);
                }
                self.last_writer[dest.index() as usize] = Some((self.seq, class));
                self.dirty = true;
            }
        }
    }

    fn cross_index(&self, producer: OpClass, consumer: OpClass) -> Option<usize> {
        let p = UNIT_CLASSES.iter().position(|c| *c == producer)?;
        let c = UNIT_CLASSES.iter().position(|c| *c == consumer)?;
        Some(p * UNIT_CLASSES.len() + c)
    }

    /// Returns the register numbers that currently have an in-flight writer
    /// (used by tests).
    pub fn busy_registers(&self) -> Vec<Gpr> {
        self.last_writer
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|_| Gpr::from_index(i as u8)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::{Gpr, Op};

    fn setup() -> (CoverageSpace, ScoreboardModel) {
        let mut space = CoverageSpace::new("test");
        let scoreboard = ScoreboardModel::new(&mut space, 6);
        (space, scoreboard)
    }

    #[test]
    fn registers_expected_number_of_points() {
        let (space, _sb) = setup();
        // 32 RAW + 6 RAW distance + 6 WAW distance + 25 unit crosses + 2 shadow.
        assert_eq!(space.len(), 32 + 6 + 6 + 25 + 2);
    }

    #[test]
    fn back_to_back_dependency_covers_raw_points() {
        let (space, mut sb) = setup();
        let mut map = CoverageMap::for_space(&space);
        sb.on_issue(&Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 1), &mut map);
        sb.on_issue(&Instr::rtype(Op::Add, Gpr::A1, Gpr::A0, Gpr::Zero), &mut map);
        assert!(map.is_covered(space.lookup("scoreboard", "raw_on_x10", true).unwrap()));
        assert!(map.is_covered(space.lookup("scoreboard", "raw_distance_bucket1", true).unwrap()));
        assert!(map.is_covered(space.lookup("scoreboard", "forward_arith_to_arith", true).unwrap()));
    }

    #[test]
    fn long_latency_shadow_requires_close_consumer_of_div_or_load() {
        let (space, mut sb) = setup();
        let mut map = CoverageMap::for_space(&space);
        sb.on_issue(&Instr::rtype(Op::Div, Gpr::A0, Gpr::A1, Gpr::A2), &mut map);
        sb.on_issue(&Instr::rtype(Op::Add, Gpr::A3, Gpr::A0, Gpr::Zero), &mut map);
        assert!(map.is_covered(space.lookup("scoreboard", "long_latency_shadow", true).unwrap()));
        // A far-away consumer covers the other direction.
        let (space2, mut sb2) = setup();
        let mut map2 = CoverageMap::for_space(&space2);
        sb2.on_issue(&Instr::rtype(Op::Div, Gpr::A0, Gpr::A1, Gpr::A2), &mut map2);
        for i in 0..5 {
            sb2.on_issue(&Instr::itype(Op::Addi, Gpr::T0, Gpr::Zero, i), &mut map2);
        }
        sb2.on_issue(&Instr::rtype(Op::Add, Gpr::A3, Gpr::A0, Gpr::Zero), &mut map2);
        assert!(map2.is_covered(space2.lookup("scoreboard", "long_latency_shadow", false).unwrap()));
    }

    #[test]
    fn waw_hazards_are_bucketed_by_distance() {
        let (space, mut sb) = setup();
        let mut map = CoverageMap::for_space(&space);
        sb.on_issue(&Instr::itype(Op::Addi, Gpr::S0, Gpr::Zero, 1), &mut map);
        sb.on_issue(&Instr::itype(Op::Addi, Gpr::S0, Gpr::Zero, 2), &mut map);
        assert!(map.is_covered(space.lookup("scoreboard", "waw_distance_bucket1", true).unwrap()));
    }

    #[test]
    fn dirty_reset_is_equivalent_to_full_reset() {
        let (space, mut sb) = setup();
        let mut map = CoverageMap::for_space(&space);
        sb.on_issue(&Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 1), &mut map);
        assert!(sb.dirty);
        sb.reset_dirty();
        assert!(sb.busy_registers().is_empty());
        assert_eq!(sb.seq, 0);
        assert!(!sb.dirty);
        // Issuing only x0-destination instructions leaves the table clean, so
        // the next dirty reset skips the fill entirely.
        sb.on_issue(&Instr::itype(Op::Addi, Gpr::Zero, Gpr::Zero, 1), &mut map);
        assert!(!sb.dirty);
        sb.reset_dirty();
        assert!(sb.busy_registers().is_empty());
    }

    #[test]
    fn x0_never_tracks_hazards() {
        let (space, mut sb) = setup();
        let mut map = CoverageMap::for_space(&space);
        sb.on_issue(&Instr::itype(Op::Addi, Gpr::Zero, Gpr::Zero, 1), &mut map);
        sb.on_issue(&Instr::rtype(Op::Add, Gpr::A0, Gpr::Zero, Gpr::Zero), &mut map);
        assert!(!map.is_covered(space.lookup("scoreboard", "raw_on_x0", true).unwrap()));
        assert!(sb.busy_registers().contains(&Gpr::A0));
        sb.reset();
        assert!(sb.busy_registers().is_empty());
    }
}
