//! Execute-stage model: ALU, multiplier/divider and branch-unit coverage.

// detlint: allow-file(default-hasher) -- the per-class id maps are built
// once from fixed registration order and then only probed by key; nothing
// iterates them, so coverage bytes are hash-order independent.
use std::collections::HashMap;

use coverage::{CoverPointId, CoverageMap, CoverageSpace};
use riscv::{Instr, Op, OpClass};

/// Execute-unit model.
///
/// Coverage points:
/// * per-class result properties (zero / negative / all-ones results),
/// * adder carry/overflow events,
/// * shifter amount buckets (0, 1–7, 8–31, 32–63),
/// * multiplier operand sign crosses and high-half-non-zero events,
/// * divider special cases (divide-by-zero, signed overflow, exact division),
/// * branch-comparator equal/less cross outcomes.
#[derive(Debug, Clone)]
pub struct ExecuteModel {
    result_zero: HashMap<OpClass, (CoverPointId, CoverPointId)>,
    result_negative: HashMap<OpClass, (CoverPointId, CoverPointId)>,
    adder_overflow: (CoverPointId, CoverPointId),
    shift_buckets: Vec<CoverPointId>,
    mul_sign_cross: Vec<CoverPointId>,
    mul_high_nonzero: (CoverPointId, CoverPointId),
    div_by_zero: (CoverPointId, CoverPointId),
    div_overflow: (CoverPointId, CoverPointId),
    div_exact: (CoverPointId, CoverPointId),
    cmp_equal: (CoverPointId, CoverPointId),
    cmp_signed_less: (CoverPointId, CoverPointId),
}

impl ExecuteModel {
    /// Creates an execute model and registers its coverage points.
    pub fn new(space: &mut CoverageSpace) -> ExecuteModel {
        let module = "execute";
        let mut result_zero = HashMap::new();
        let mut result_negative = HashMap::new();
        for class in OpClass::ALL {
            result_zero.insert(class, space.register_site(module, format!("{class}_result_zero")));
            result_negative.insert(class, space.register_site(module, format!("{class}_result_negative")));
        }
        let adder_overflow = space.register_site(module, "adder_overflow");
        let shift_buckets = (0..4)
            .map(|i| space.register_branch(module, format!("shift_amount_bucket{i}"), true))
            .collect();
        let mul_sign_cross = (0..4)
            .map(|i| space.register_branch(module, format!("mul_sign_cross{i}"), true))
            .collect();
        let mul_high_nonzero = space.register_site(module, "mul_high_nonzero");
        let div_by_zero = space.register_site(module, "div_by_zero");
        let div_overflow = space.register_site(module, "div_overflow");
        let div_exact = space.register_site(module, "div_exact");
        let cmp_equal = space.register_site(module, "cmp_equal");
        let cmp_signed_less = space.register_site(module, "cmp_signed_less");
        ExecuteModel {
            result_zero,
            result_negative,
            adder_overflow,
            shift_buckets,
            mul_sign_cross,
            mul_high_nonzero,
            div_by_zero,
            div_overflow,
            div_exact,
            cmp_equal,
            cmp_signed_less,
        }
    }

    /// No per-test state; present for interface symmetry with the other
    /// components.
    pub fn reset(&mut self) {}

    /// Records the execution of an instruction given its source operand
    /// values and its result (the destination write-back value, if any).
    pub fn on_execute(
        &self,
        instr: &Instr,
        rs1: u64,
        rs2: u64,
        result: Option<u64>,
        map: &mut CoverageMap,
    ) {
        let class = instr.op.class();
        if let Some(value) = result {
            let (zero_t, zero_f) = self.result_zero[&class];
            map.cover(if value == 0 { zero_t } else { zero_f });
            let (neg_t, neg_f) = self.result_negative[&class];
            map.cover(if (value as i64) < 0 { neg_t } else { neg_f });
        }

        match instr.op {
            Op::Add | Op::Addi | Op::Addw | Op::Addiw | Op::Sub | Op::Subw => {
                let b = if matches!(instr.op, Op::Addi | Op::Addiw) { instr.imm as u64 } else { rs2 };
                let (sum, carry) = rs1.overflowing_add(b);
                let overflow = carry || ((rs1 as i64).checked_add(b as i64)).is_none();
                let _ = sum;
                let (t, f) = self.adder_overflow;
                map.cover(if overflow { t } else { f });
            }
            Op::Sll | Op::Srl | Op::Sra | Op::Slli | Op::Srli | Op::Srai | Op::Sllw | Op::Srlw
            | Op::Sraw | Op::Slliw | Op::Srliw | Op::Sraiw => {
                let amount = if matches!(instr.op.format(), riscv::op::Format::IShift) {
                    instr.imm as u64
                } else {
                    rs2 & 0x3f
                };
                let bucket = match amount {
                    0 => 0,
                    1..=7 => 1,
                    8..=31 => 2,
                    _ => 3,
                };
                map.cover(self.shift_buckets[bucket]);
            }
            Op::Mul | Op::Mulh | Op::Mulhsu | Op::Mulhu | Op::Mulw => {
                let cross = (usize::from((rs1 as i64) < 0) << 1) | usize::from((rs2 as i64) < 0);
                map.cover(self.mul_sign_cross[cross]);
                let wide = (rs1 as u128).wrapping_mul(rs2 as u128);
                let (t, f) = self.mul_high_nonzero;
                map.cover(if (wide >> 64) != 0 { t } else { f });
            }
            Op::Div | Op::Divu | Op::Rem | Op::Remu | Op::Divw | Op::Divuw | Op::Remw | Op::Remuw => {
                let (zero_t, zero_f) = self.div_by_zero;
                map.cover(if rs2 == 0 { zero_t } else { zero_f });
                let (ovf_t, ovf_f) = self.div_overflow;
                let overflow = rs1 == i64::MIN as u64 && rs2 as i64 == -1;
                map.cover(if overflow { ovf_t } else { ovf_f });
                if rs2 != 0 {
                    let (exact_t, exact_f) = self.div_exact;
                    map.cover(if rs1.is_multiple_of(rs2) { exact_t } else { exact_f });
                }
            }
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu | Op::Slt | Op::Sltu
            | Op::Slti | Op::Sltiu => {
                let b = if matches!(instr.op, Op::Slti | Op::Sltiu) { instr.imm as u64 } else { rs2 };
                let (eq_t, eq_f) = self.cmp_equal;
                map.cover(if rs1 == b { eq_t } else { eq_f });
                let (lt_t, lt_f) = self.cmp_signed_less;
                map.cover(if (rs1 as i64) < (b as i64) { lt_t } else { lt_f });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::Gpr;

    fn setup() -> (CoverageSpace, ExecuteModel) {
        let mut space = CoverageSpace::new("test");
        let exec = ExecuteModel::new(&mut space);
        (space, exec)
    }

    #[test]
    fn registers_expected_number_of_points() {
        let (space, _exec) = setup();
        // 10 classes × 2 sites × 2 + overflow 2 + 4 shift + 4 mul cross
        // + mul high 2 + div 3×2 + cmp 2×2.
        assert_eq!(space.len(), 40 + 2 + 4 + 4 + 2 + 6 + 4);
    }

    #[test]
    fn zero_and_negative_results_cover_their_points() {
        let (space, exec) = setup();
        let mut map = CoverageMap::for_space(&space);
        let sub = Instr::rtype(Op::Sub, Gpr::A0, Gpr::A1, Gpr::A1);
        exec.on_execute(&sub, 5, 5, Some(0), &mut map);
        assert!(map.is_covered(space.lookup("execute", "arith_result_zero", true).unwrap()));
        exec.on_execute(&sub, 0, 5, Some((-5i64) as u64), &mut map);
        assert!(map.is_covered(space.lookup("execute", "arith_result_negative", true).unwrap()));
    }

    #[test]
    fn divider_special_cases() {
        let (space, exec) = setup();
        let mut map = CoverageMap::for_space(&space);
        let div = Instr::rtype(Op::Div, Gpr::A0, Gpr::A1, Gpr::A2);
        exec.on_execute(&div, 10, 0, Some(u64::MAX), &mut map);
        assert!(map.is_covered(space.lookup("execute", "div_by_zero", true).unwrap()));
        exec.on_execute(&div, i64::MIN as u64, (-1i64) as u64, Some(i64::MIN as u64), &mut map);
        assert!(map.is_covered(space.lookup("execute", "div_overflow", true).unwrap()));
        exec.on_execute(&div, 12, 4, Some(3), &mut map);
        assert!(map.is_covered(space.lookup("execute", "div_exact", true).unwrap()));
    }

    #[test]
    fn shift_amounts_are_bucketed() {
        let (space, exec) = setup();
        let mut map = CoverageMap::for_space(&space);
        let slli = Instr::itype(Op::Slli, Gpr::A0, Gpr::A1, 40);
        exec.on_execute(&slli, 1, 0, Some(1 << 40), &mut map);
        assert!(map.is_covered(space.lookup("execute", "shift_amount_bucket3", true).unwrap()));
        let small = Instr::itype(Op::Slli, Gpr::A0, Gpr::A1, 1);
        exec.on_execute(&small, 1, 0, Some(2), &mut map);
        assert!(map.is_covered(space.lookup("execute", "shift_amount_bucket1", true).unwrap()));
    }

    #[test]
    fn multiplier_sign_cross_and_high_half() {
        let (space, exec) = setup();
        let mut map = CoverageMap::for_space(&space);
        let mul = Instr::rtype(Op::Mulhu, Gpr::A0, Gpr::A1, Gpr::A2);
        exec.on_execute(&mul, u64::MAX, u64::MAX, Some(u64::MAX - 1), &mut map);
        // Both operands negative as i64 → cross index 3; high half non-zero.
        assert!(map.is_covered(space.lookup("execute", "mul_sign_cross3", true).unwrap()));
        assert!(map.is_covered(space.lookup("execute", "mul_high_nonzero", true).unwrap()));
        exec.on_execute(&mul, 2, 3, Some(0), &mut map);
        assert!(map.is_covered(space.lookup("execute", "mul_sign_cross0", true).unwrap()));
        assert!(map.is_covered(space.lookup("execute", "mul_high_nonzero", false).unwrap()));
    }

    #[test]
    fn comparator_cross_outcomes() {
        let (space, exec) = setup();
        let mut map = CoverageMap::for_space(&space);
        let blt = Instr::branch(Op::Blt, Gpr::A0, Gpr::A1, 8);
        exec.on_execute(&blt, 1, 1, None, &mut map);
        assert!(map.is_covered(space.lookup("execute", "cmp_equal", true).unwrap()));
        exec.on_execute(&blt, (-3i64) as u64, 7, None, &mut map);
        assert!(map.is_covered(space.lookup("execute", "cmp_signed_less", true).unwrap()));
    }
}
