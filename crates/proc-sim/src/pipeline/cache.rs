//! Set-associative cache model with per-set coverage points.

use coverage::{CoverPointId, CoverageMap, CoverageSpace};

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The line-aligned address evicted to make room, when a fill replaced a
    /// valid line.
    pub evicted: Option<u64>,
    /// The set index the access mapped to.
    pub set: usize,
}

/// A simple LRU set-associative cache used for both instruction and data
/// caches.
///
/// Coverage points (registered per instance):
/// * per-set hit and miss (`sets × 2`),
/// * per-set eviction of a valid (conflict) line (`sets`),
/// * dirty writeback vs. clean eviction (`2`),
/// * cold miss vs. conflict miss (`2`).
#[derive(Debug, Clone)]
pub struct CacheModel {
    name: String,
    sets: usize,
    ways: usize,
    line_bits: u32,
    // Coverage ids.
    hit_ids: Vec<CoverPointId>,
    miss_ids: Vec<CoverPointId>,
    evict_ids: Vec<CoverPointId>,
    dirty_writeback_id: CoverPointId,
    clean_evict_id: CoverPointId,
    cold_miss_id: CoverPointId,
    conflict_miss_id: CoverPointId,
    // Runtime state: tags[set][way] plus LRU order and dirty bits.
    tags: Vec<Vec<Option<u64>>>,
    lru: Vec<Vec<u8>>,
    dirty: Vec<Vec<bool>>,
    // Dirty-reset tracking (see `isa_sim::snapshot`): the sets touched since
    // the last reset, in first-touch order, with a per-set dedup flag. Every
    // state mutation goes through `access` (which marks its set before
    // mutating), so an unmarked set is pristine.
    touched_sets: Vec<usize>,
    set_touched: Vec<bool>,
}

impl CacheModel {
    /// Creates a cache model and registers its coverage points.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(
        space: &mut CoverageSpace,
        name: impl Into<String>,
        sets: usize,
        ways: usize,
        line_bytes: usize,
    ) -> CacheModel {
        assert!(sets > 0 && ways > 0, "cache must have at least one set and one way");
        assert!(line_bytes.is_power_of_two(), "cache line size must be a power of two");
        let name = name.into();
        let mut hit_ids = Vec::with_capacity(sets);
        let mut miss_ids = Vec::with_capacity(sets);
        let mut evict_ids = Vec::with_capacity(sets);
        for set in 0..sets {
            hit_ids.push(space.register_branch(&name, format!("set{set}_hit"), true));
            miss_ids.push(space.register_branch(&name, format!("set{set}_hit"), false));
            evict_ids.push(space.register_branch(&name, format!("set{set}_evict"), true));
        }
        let dirty_writeback_id = space.register_branch(&name, "evict_dirty", true);
        let clean_evict_id = space.register_branch(&name, "evict_dirty", false);
        let cold_miss_id = space.register_branch(&name, "miss_cold", true);
        let conflict_miss_id = space.register_branch(&name, "miss_cold", false);
        CacheModel {
            sets,
            ways,
            line_bits: line_bytes.trailing_zeros(),
            hit_ids,
            miss_ids,
            evict_ids,
            dirty_writeback_id,
            clean_evict_id,
            cold_miss_id,
            conflict_miss_id,
            tags: vec![vec![None; ways]; sets],
            lru: vec![(0..ways as u8).collect(); sets],
            dirty: vec![vec![false; ways]; sets],
            touched_sets: Vec::new(),
            set_touched: vec![false; sets],
            name,
        }
    }

    /// Returns the cache's module name in the coverage space.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Returns the associativity (ways per set).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Clears all runtime state (the full-reinit differential oracle).
    pub fn reset(&mut self) {
        for set in 0..self.sets {
            Self::reset_set(&mut self.tags[set], &mut self.lru[set], &mut self.dirty[set]);
            self.set_touched[set] = false;
        }
        self.touched_sets.clear();
    }

    /// Like [`reset`](CacheModel::reset), but clears only the sets touched
    /// since the last reset — O(touched sets) instead of O(sets).
    pub fn reset_dirty(&mut self) {
        while let Some(set) = self.touched_sets.pop() {
            Self::reset_set(&mut self.tags[set], &mut self.lru[set], &mut self.dirty[set]);
            self.set_touched[set] = false;
        }
    }

    fn reset_set(tags: &mut [Option<u64>], lru: &mut [u8], dirty: &mut [bool]) {
        tags.fill(None);
        dirty.fill(false);
        for (way, slot) in lru.iter_mut().enumerate() {
            *slot = way as u8;
        }
    }

    /// Returns the line-aligned address for `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_bits << self.line_bits
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_bits) as usize) % self.sets
    }

    /// Returns `true` when the line containing `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let line = self.line_of(addr);
        self.tags[set].contains(&Some(line))
    }

    /// Simulates an access, updating tag state and coverage.
    pub fn access(&mut self, addr: u64, is_write: bool, map: &mut CoverageMap) -> CacheOutcome {
        let set = self.set_of(addr);
        let line = self.line_of(addr);
        if !self.set_touched[set] {
            self.set_touched[set] = true;
            self.touched_sets.push(set);
        }
        if let Some(way) = self.tags[set].iter().position(|t| *t == Some(line)) {
            map.cover(self.hit_ids[set]);
            if is_write {
                self.dirty[set][way] = true;
            }
            self.touch(set, way);
            return CacheOutcome { hit: true, evicted: None, set };
        }

        map.cover(self.miss_ids[set]);
        // Choose a victim: an invalid way if there is one, otherwise LRU.
        let victim_way = self.tags[set]
            .iter()
            .position(|t| t.is_none())
            .unwrap_or_else(|| self.lru_victim(set));
        let evicted = self.tags[set][victim_way];
        match evicted {
            None => map.cover(self.cold_miss_id),
            Some(_) => {
                map.cover(self.conflict_miss_id);
                map.cover(self.evict_ids[set]);
                if self.dirty[set][victim_way] {
                    map.cover(self.dirty_writeback_id);
                } else {
                    map.cover(self.clean_evict_id);
                }
            }
        }
        self.tags[set][victim_way] = Some(line);
        self.dirty[set][victim_way] = is_write;
        self.touch(set, victim_way);
        CacheOutcome { hit: false, evicted, set }
    }

    fn lru_victim(&self, set: usize) -> usize {
        // The LRU vector stores ways from most- to least-recently used.
        *self.lru[set].last().expect("cache has at least one way") as usize
    }

    fn touch(&mut self, set: usize, way: usize) {
        let order = &mut self.lru[set];
        if let Some(pos) = order.iter().position(|w| *w as usize == way) {
            let w = order.remove(pos);
            order.insert(0, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(sets: usize, ways: usize) -> (CoverageSpace, CacheModel) {
        let mut space = CoverageSpace::new("test");
        let cache = CacheModel::new(&mut space, "dcache", sets, ways, 64);
        (space, cache)
    }

    #[test]
    fn registers_expected_number_of_points() {
        let (space, _cache) = setup(8, 2);
        // 8 sets × (hit, miss, evict) + dirty/clean + cold/conflict.
        assert_eq!(space.len(), 8 * 3 + 4);
    }

    #[test]
    fn repeated_access_hits_after_cold_miss() {
        let (space, mut cache) = setup(4, 2);
        let mut map = CoverageMap::for_space(&space);
        let first = cache.access(0x8000_0000, false, &mut map);
        assert!(!first.hit);
        let second = cache.access(0x8000_0008, false, &mut map);
        assert!(second.hit, "same line should hit");
        assert!(cache.contains(0x8000_0000));
    }

    #[test]
    fn conflict_evicts_lru_line_and_reports_it() {
        let (space, mut cache) = setup(1, 2);
        let mut map = CoverageMap::for_space(&space);
        cache.access(0x0000, false, &mut map);
        cache.access(0x1000, false, &mut map);
        // Touch the first line so the second becomes LRU.
        cache.access(0x0000, false, &mut map);
        let outcome = cache.access(0x2000, false, &mut map);
        assert!(!outcome.hit);
        assert_eq!(outcome.evicted, Some(0x1000));
        assert!(cache.contains(0x0000));
        assert!(!cache.contains(0x1000));
    }

    #[test]
    fn dirty_lines_report_writeback_coverage() {
        let (space, mut cache) = setup(1, 1);
        let mut map = CoverageMap::for_space(&space);
        cache.access(0x0000, true, &mut map);
        cache.access(0x1000, false, &mut map); // evicts the dirty line
        let dirty_id = space.lookup("dcache", "evict_dirty", true).unwrap();
        assert!(map.is_covered(dirty_id));
    }

    #[test]
    fn reset_clears_contents() {
        let (space, mut cache) = setup(2, 2);
        let mut map = CoverageMap::for_space(&space);
        cache.access(0x8000_0000, false, &mut map);
        assert!(cache.contains(0x8000_0000));
        cache.reset();
        assert!(!cache.contains(0x8000_0000));
    }

    #[test]
    fn dirty_reset_is_equivalent_to_full_reset() {
        let (space, mut dirty_cache) = setup(4, 2);
        let mut full_cache = dirty_cache.clone();
        let mut map = CoverageMap::for_space(&space);
        // Touch a few sets (including a conflict eviction), then reset one
        // cache with each path: runtime state must end up identical.
        for addr in [0x0000u64, 0x0040, 0x1000, 0x2000, 0x0000] {
            dirty_cache.access(addr, addr == 0, &mut map);
            full_cache.access(addr, addr == 0, &mut map);
        }
        dirty_cache.reset_dirty();
        full_cache.reset();
        for addr in [0x0000u64, 0x0040, 0x1000, 0x2000] {
            assert!(!dirty_cache.contains(addr));
        }
        assert_eq!(dirty_cache.tags, full_cache.tags);
        assert_eq!(dirty_cache.lru, full_cache.lru);
        assert_eq!(dirty_cache.dirty, full_cache.dirty);
        assert!(dirty_cache.touched_sets.is_empty());
        assert!(dirty_cache.set_touched.iter().all(|t| !t));
        // An untouched cache dirty-resets for free and stays pristine.
        let (_, mut cold) = setup(4, 2);
        cold.reset_dirty();
        assert_eq!(cold.tags, full_cache.tags);
    }

    #[test]
    fn different_sets_cover_different_points() {
        let (space, mut cache) = setup(4, 1);
        let mut map = CoverageMap::for_space(&space);
        cache.access(0x0000, false, &mut map); // set 0
        cache.access(0x0040, false, &mut map); // set 1
        let s0 = space.lookup("dcache", "set0_hit", false).unwrap();
        let s1 = space.lookup("dcache", "set1_hit", false).unwrap();
        let s2 = space.lookup("dcache", "set2_hit", false).unwrap();
        assert!(map.is_covered(s0));
        assert!(map.is_covered(s1));
        assert!(!map.is_covered(s2));
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let mut space = CoverageSpace::new("test");
        let _ = CacheModel::new(&mut space, "bad", 0, 1, 64);
    }
}
