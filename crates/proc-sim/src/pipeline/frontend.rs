//! Frontend model: branch predictor (BHT + BTB) and fetch behaviour.

use coverage::{CoverPointId, CoverageMap, CoverageSpace};

/// Frontend model with a gshare-style branch-history table and a
/// branch-target buffer.
///
/// Coverage points:
/// * per-BHT-entry correct/incorrect prediction (`bht_entries × 2`),
/// * per-BTB-entry hit/miss (`btb_entries × 2`),
/// * taken/not-taken resolution of forward and backward branches (`4`),
/// * return-address-stack style call/return events (`4`),
/// * fetch of the first instruction of a cache line vs. within-line (`2`).
#[derive(Debug, Clone)]
pub struct FrontendModel {
    bht_entries: usize,
    btb_entries: usize,
    bht_correct: Vec<CoverPointId>,
    bht_incorrect: Vec<CoverPointId>,
    btb_hit: Vec<CoverPointId>,
    btb_miss: Vec<CoverPointId>,
    forward_taken: CoverPointId,
    forward_not_taken: CoverPointId,
    backward_taken: CoverPointId,
    backward_not_taken: CoverPointId,
    call_seen: CoverPointId,
    ret_seen: CoverPointId,
    ret_match: CoverPointId,
    ret_mismatch: CoverPointId,
    fetch_line_start: CoverPointId,
    fetch_line_middle: CoverPointId,
    // Runtime state.
    bht: Vec<u8>,
    btb: Vec<Option<(u64, u64)>>,
    history: u64,
    ras: Vec<u64>,
    // Dirty-reset flags (see `isa_sim::snapshot`): the BHT only changes in
    // `on_branch`, the BTB only gains entries in `on_jump`'s miss arm; an
    // unset flag means the table is still in its reset fill. `history` and
    // the RAS are O(1)/tiny and reset unconditionally.
    bht_dirty: bool,
    btb_dirty: bool,
}

impl FrontendModel {
    /// Creates a frontend model and registers its coverage points.
    ///
    /// # Panics
    ///
    /// Panics if either table size is zero.
    pub fn new(space: &mut CoverageSpace, bht_entries: usize, btb_entries: usize) -> FrontendModel {
        assert!(bht_entries > 0 && btb_entries > 0, "predictor tables must be non-empty");
        let module = "frontend";
        let mut bht_correct = Vec::with_capacity(bht_entries);
        let mut bht_incorrect = Vec::with_capacity(bht_entries);
        for i in 0..bht_entries {
            bht_correct.push(space.register_branch(module, format!("bht{i}_correct"), true));
            bht_incorrect.push(space.register_branch(module, format!("bht{i}_correct"), false));
        }
        let mut btb_hit = Vec::with_capacity(btb_entries);
        let mut btb_miss = Vec::with_capacity(btb_entries);
        for i in 0..btb_entries {
            btb_hit.push(space.register_branch(module, format!("btb{i}_hit"), true));
            btb_miss.push(space.register_branch(module, format!("btb{i}_hit"), false));
        }
        let (forward_taken, forward_not_taken) = space.register_site(module, "forward_branch_taken");
        let (backward_taken, backward_not_taken) = space.register_site(module, "backward_branch_taken");
        let (call_seen, _) = space.register_site(module, "call_seen");
        let (ret_seen, _) = space.register_site(module, "ret_seen");
        let (ret_match, ret_mismatch) = space.register_site(module, "ras_match");
        let (fetch_line_start, fetch_line_middle) = space.register_site(module, "fetch_line_start");
        FrontendModel {
            bht_entries,
            btb_entries,
            bht_correct,
            bht_incorrect,
            btb_hit,
            btb_miss,
            forward_taken,
            forward_not_taken,
            backward_taken,
            backward_not_taken,
            call_seen,
            ret_seen,
            ret_match,
            ret_mismatch,
            fetch_line_start,
            fetch_line_middle,
            bht: vec![1; bht_entries],
            btb: vec![None; btb_entries],
            history: 0,
            ras: Vec::new(),
            bht_dirty: false,
            btb_dirty: false,
        }
    }

    /// Clears all predictor state (the full-reinit differential oracle).
    pub fn reset(&mut self) {
        self.bht.fill(1);
        self.btb.fill(None);
        self.history = 0;
        self.ras.clear();
        self.bht_dirty = false;
        self.btb_dirty = false;
    }

    /// Like [`reset`](FrontendModel::reset), but refills the BHT/BTB tables
    /// only when they were actually written since the last reset.
    pub fn reset_dirty(&mut self) {
        if self.bht_dirty {
            self.bht.fill(1);
            self.bht_dirty = false;
        }
        if self.btb_dirty {
            self.btb.fill(None);
            self.btb_dirty = false;
        }
        self.history = 0;
        self.ras.clear();
    }

    /// Records an instruction fetch.
    pub fn on_fetch(&mut self, pc: u64, map: &mut CoverageMap) {
        if pc.is_multiple_of(64) {
            map.cover(self.fetch_line_start);
        } else {
            map.cover(self.fetch_line_middle);
        }
    }

    /// Records the resolution of a conditional branch and returns whether the
    /// predictor had predicted it correctly.
    pub fn on_branch(&mut self, pc: u64, taken: bool, offset: i64, map: &mut CoverageMap) -> bool {
        self.bht_dirty = true;
        let index = self.bht_index(pc);
        let counter = self.bht[index];
        let predicted_taken = counter >= 2;
        let correct = predicted_taken == taken;
        map.cover(if correct { self.bht_correct[index] } else { self.bht_incorrect[index] });
        // Direction cross coverage.
        let id = match (offset >= 0, taken) {
            (true, true) => self.forward_taken,
            (true, false) => self.forward_not_taken,
            (false, true) => self.backward_taken,
            (false, false) => self.backward_not_taken,
        };
        map.cover(id);
        // Update the 2-bit counter and global history.
        self.bht[index] = match (counter, taken) {
            (c, true) if c < 3 => c + 1,
            (c, false) if c > 0 => c - 1,
            (c, _) => c,
        };
        self.history = (self.history << 1) | u64::from(taken);
        correct
    }

    /// Records a jump (unconditional control transfer) and its BTB behaviour.
    pub fn on_jump(&mut self, pc: u64, target: u64, is_call: bool, is_ret: bool, map: &mut CoverageMap) {
        let index = (pc as usize >> 2) % self.btb_entries;
        match self.btb[index] {
            Some((tag, cached_target)) if tag == pc && cached_target == target => {
                map.cover(self.btb_hit[index]);
            }
            _ => {
                map.cover(self.btb_miss[index]);
                self.btb[index] = Some((pc, target));
                self.btb_dirty = true;
            }
        }
        if is_call {
            map.cover(self.call_seen);
            self.ras.push(pc.wrapping_add(4));
            if self.ras.len() > 8 {
                self.ras.remove(0);
            }
        }
        if is_ret {
            map.cover(self.ret_seen);
            let predicted = self.ras.pop();
            map.cover(if predicted == Some(target) { self.ret_match } else { self.ret_mismatch });
        }
    }

    fn bht_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) % self.bht_entries
    }

    /// Returns the number of BHT entries (used by tests and reporting).
    pub fn bht_entries(&self) -> usize {
        self.bht_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(bht: usize, btb: usize) -> (CoverageSpace, FrontendModel) {
        let mut space = CoverageSpace::new("test");
        let frontend = FrontendModel::new(&mut space, bht, btb);
        (space, frontend)
    }

    #[test]
    fn registers_expected_number_of_points() {
        let (space, _fe) = setup(16, 8);
        // 16×2 BHT + 8×2 BTB + 2 fwd + 2 bwd + 2 call + 2 ret + 2 ras + 2 fetch.
        assert_eq!(space.len(), 16 * 2 + 8 * 2 + 12);
    }

    #[test]
    fn branch_training_makes_predictions_correct() {
        let (space, mut fe) = setup(8, 4);
        let mut map = CoverageMap::for_space(&space);
        // A loop branch at a fixed pc, always taken: after training the
        // predictor should be correct.
        let mut correct_count = 0;
        for _ in 0..20 {
            if fe.on_branch(0x8000_0010, true, -16, &mut map) {
                correct_count += 1;
            }
        }
        // The first few resolutions mistrain while the global history warms
        // up; after that the gshare index is stable and the 2-bit counter
        // predicts taken.
        assert!(correct_count >= 14, "2-bit counters should learn an always-taken branch");
    }

    #[test]
    fn direction_cross_points_distinguish_forward_and_backward() {
        let (space, mut fe) = setup(4, 4);
        let mut map = CoverageMap::for_space(&space);
        fe.on_branch(0x8000_0000, true, 16, &mut map);
        fe.on_branch(0x8000_0004, false, -16, &mut map);
        assert!(map.is_covered(space.lookup("frontend", "forward_branch_taken", true).unwrap()));
        assert!(map.is_covered(space.lookup("frontend", "backward_branch_taken", false).unwrap()));
        assert!(!map.is_covered(space.lookup("frontend", "backward_branch_taken", true).unwrap()));
    }

    #[test]
    fn btb_hits_after_the_first_visit() {
        let (space, mut fe) = setup(4, 4);
        let mut map = CoverageMap::for_space(&space);
        fe.on_jump(0x8000_0020, 0x8000_0100, false, false, &mut map);
        fe.on_jump(0x8000_0020, 0x8000_0100, false, false, &mut map);
        let index = (0x8000_0020usize >> 2) % 4;
        assert!(map.is_covered(space.lookup("frontend", &format!("btb{index}_hit"), true).unwrap()));
        assert!(map.is_covered(space.lookup("frontend", &format!("btb{index}_hit"), false).unwrap()));
    }

    #[test]
    fn call_return_matching_uses_the_ras() {
        let (space, mut fe) = setup(4, 4);
        let mut map = CoverageMap::for_space(&space);
        // Call from 0x...0 (link = 0x...4), then return to the link address.
        fe.on_jump(0x8000_0000, 0x8000_0100, true, false, &mut map);
        fe.on_jump(0x8000_0104, 0x8000_0004, false, true, &mut map);
        assert!(map.is_covered(space.lookup("frontend", "ras_match", true).unwrap()));
        // A return to somewhere else mismatches.
        fe.on_jump(0x8000_0000, 0x8000_0100, true, false, &mut map);
        fe.on_jump(0x8000_0104, 0x8000_0abc, false, true, &mut map);
        assert!(map.is_covered(space.lookup("frontend", "ras_match", false).unwrap()));
    }

    #[test]
    fn fetch_distinguishes_line_boundaries() {
        let (space, mut fe) = setup(4, 4);
        let mut map = CoverageMap::for_space(&space);
        fe.on_fetch(0x8000_0000, &mut map);
        fe.on_fetch(0x8000_0004, &mut map);
        assert!(map.is_covered(space.lookup("frontend", "fetch_line_start", true).unwrap()));
        assert!(map.is_covered(space.lookup("frontend", "fetch_line_start", false).unwrap()));
    }

    #[test]
    fn dirty_reset_is_equivalent_to_full_reset() {
        let (space, mut fe) = setup(4, 4);
        let mut map = CoverageMap::for_space(&space);
        for _ in 0..5 {
            fe.on_branch(0x8000_0000, true, 8, &mut map);
        }
        fe.on_jump(0x8000_0010, 0x8000_0100, true, false, &mut map);
        fe.reset_dirty();
        assert_eq!(fe.bht, vec![1; 4]);
        assert!(fe.btb.iter().all(Option::is_none));
        assert_eq!(fe.history, 0);
        assert!(fe.ras.is_empty());
        assert!(!fe.bht_dirty && !fe.btb_dirty);
        // A BTB *hit* leaves the table as-is, so the dirty flag staying set
        // from the insert is what guarantees the entry still gets cleared.
        fe.on_jump(0x8000_0010, 0x8000_0100, false, false, &mut map);
        assert!(fe.btb_dirty);
        fe.on_jump(0x8000_0010, 0x8000_0100, false, false, &mut map);
        fe.reset_dirty();
        assert!(fe.btb.iter().all(Option::is_none));
    }

    #[test]
    fn reset_restores_initial_state() {
        let (space, mut fe) = setup(4, 4);
        let mut map = CoverageMap::for_space(&space);
        for _ in 0..5 {
            fe.on_branch(0x8000_0000, true, 8, &mut map);
        }
        fe.on_jump(0x8000_0010, 0x8000_0100, true, false, &mut map);
        fe.reset();
        assert_eq!(fe.bht, vec![1; 4]);
        assert!(fe.btb.iter().all(Option::is_none));
        assert!(fe.ras.is_empty());
        assert_eq!(fe.bht_entries(), 4);
    }
}
