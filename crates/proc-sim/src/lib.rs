//! Simulated RISC-V processor DUTs (designs under test).
//!
//! The MABFuzz paper fuzzes RTL simulations of three real cores — CVA6,
//! Rocket and BOOM — through Synopsys VCS. That substrate is not available
//! here, so this crate provides the closest synthetic equivalent that
//! exercises the same fuzzing interfaces:
//!
//! * an **architectural trace** per test (the same [`ExecTrace`]
//!   the golden model produces), consumed by the differential-testing engine;
//! * a **branch-coverage bitmap** per test over a per-design
//!   [`CoverageSpace`], consumed by the fuzzers'
//!   feedback loops.
//!
//! Each core is an instruction-level micro-architectural simulator: for every
//! committed instruction it updates models of the frontend (branch predictor,
//! instruction cache), decoder, execute units, load/store unit (data cache +
//! store buffer), CSR file and the core-specific back-end (scoreboard or
//! re-order buffer), and records which direction every modelled decision took.
//! The three cores instantiate the components with different parameters and
//! different extra cross-product coverage sites, giving them coverage spaces
//! of different sizes and reachability profiles:
//!
//! * [`cores::Cva6Core`] — application-class in-order issue / out-of-order
//!   writeback core with a scoreboard and an FPU-stub; the smallest space but
//!   with the largest share of deep, hard-to-reach points.
//! * [`cores::RocketCore`] — classic in-order five-stage pipeline.
//! * [`cores::BoomCore`] — superscalar out-of-order core with a re-order
//!   buffer; the largest space, most of it easy to reach.
//!
//! Seven vulnerabilities mirroring Table I of the paper are injected behind
//! [`Vulnerability`] flags; see [`bugs`] for the exact trigger and effect of
//! each.
//!
//! # Example
//!
//! ```
//! use proc_sim::{Processor, cores::RocketCore, bugs::BugSet};
//! use riscv::{Program, Instr, Gpr, Op};
//!
//! let core = RocketCore::new(BugSet::none());
//! let program = Program::from_instrs(vec![
//!     Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 3),
//!     Instr::nullary(Op::Ecall),
//! ]);
//! let result = core.run(&program, 100);
//! assert_eq!(result.trace.final_state().reg(Gpr::A0), 3);
//! assert!(result.coverage.count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bugs;
pub mod cores;
pub mod pipeline;

use std::any::Any;

use coverage::{CoverageMap, CoverageSpace};
use isa_sim::{DecodedProgram, ExecTrace, Memory, ResetPolicy, Snapshot};
use riscv::Program;

pub use bugs::{BugSet, Vulnerability};
pub use cores::{BoomCore, Cva6Core, ProcessorKind, RocketCore};

/// The result of simulating one test program on a processor model.
///
/// A `DutResult` doubles as a reusable output buffer: the scratch-based
/// [`Processor::run_into`] clears and refills the trace and coverage bitmap
/// in place, so steady-state fuzzing performs no per-test allocation here.
#[derive(Debug, Clone, Default)]
pub struct DutResult {
    /// The architectural commit trace, directly comparable against the golden
    /// model's trace.
    pub trace: ExecTrace,
    /// The branch-coverage bitmap for this test.
    pub coverage: CoverageMap,
}

/// Reusable per-campaign simulation state for [`Processor::run_into`].
///
/// Holds the memory image, the encoded-text buffer, a type-erased slot for
/// model-specific microarchitectural component state, the pristine-state
/// [`Snapshot`] and the [`ResetPolicy`] governing how all of it is brought
/// back between tests (snapshot/dirty restore by default; full reinit as the
/// differential oracle — see `isa_sim::snapshot`). A scratch belongs to
/// one processor instance at a time (models validate and rebuild the
/// component slot if handed a foreign scratch), and one scratch per harness
/// is enough — campaigns are single-threaded internally; parallelism happens
/// at campaign granularity.
#[derive(Default)]
pub struct SimScratch {
    mem: Memory,
    text: Vec<u8>,
    model_state: Option<Box<dyn Any + Send>>,
    snapshot: Snapshot,
    policy: ResetPolicy,
}

impl std::fmt::Debug for SimScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimScratch")
            .field("text_len", &self.text.len())
            .field("has_model_state", &self.model_state.is_some())
            .field("policy", &self.policy)
            .finish()
    }
}

impl SimScratch {
    /// Creates an empty scratch with the default
    /// [`ResetPolicy::SnapshotReset`] (safe on a fresh scratch: nothing is
    /// dirty yet).
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// Creates an empty scratch with an explicit reset policy
    /// ([`ResetPolicy::FullReinit`] selects the differential-oracle path).
    pub fn with_policy(policy: ResetPolicy) -> SimScratch {
        SimScratch { policy, ..SimScratch::default() }
    }

    /// Returns the reset policy this scratch recycles its state with. Read
    /// this *before* [`parts`](SimScratch::parts) — the policy is `Copy`, the
    /// parts borrow lasts the whole simulation.
    pub fn reset_policy(&self) -> ResetPolicy {
        self.policy
    }

    /// Splits the scratch into its memory image, text buffer, model-state
    /// slot and pristine-state snapshot (for `Processor` implementations).
    pub fn parts(
        &mut self,
    ) -> (&mut Memory, &mut Vec<u8>, &mut Option<Box<dyn Any + Send>>, &Snapshot) {
        (&mut self.mem, &mut self.text, &mut self.model_state, &self.snapshot)
    }
}

/// A processor design under test.
///
/// Implementations are immutable descriptions of a design (configuration,
/// coverage space, enabled bugs); every [`run`](Processor::run) starts from
/// the reset state, so a `Processor` can be shared across tests and threads.
pub trait Processor: Send + Sync {
    /// Returns the design's name (e.g. `"cva6"`).
    fn name(&self) -> &str;

    /// Returns the design's coverage-point registry.
    fn coverage_space(&self) -> &CoverageSpace;

    /// Returns the set of vulnerabilities injected into this instance.
    fn bugs(&self) -> &BugSet;

    /// Simulates `program` for at most `max_steps` committed instructions.
    fn run(&self, program: &Program, max_steps: usize) -> DutResult {
        let mut scratch = SimScratch::new();
        let mut out = DutResult::default();
        self.run_into(program, max_steps, &mut scratch, &mut out);
        out
    }

    /// Simulates `program` like [`run`](Processor::run), reusing the caller's
    /// scratch state and writing the result into `out` in place.
    ///
    /// This is the allocation-free fuzzing hot path: a harness keeps one
    /// [`SimScratch`] and one [`DutResult`] for the whole campaign and the
    /// model clears and refills them per test. The output is bit-identical to
    /// [`run`](Processor::run).
    fn run_into(
        &self,
        program: &Program,
        max_steps: usize,
        scratch: &mut SimScratch,
        out: &mut DutResult,
    );

    /// Simulates `program` like [`run_into`](Processor::run_into), fetching
    /// from a pre-decoded text image instead of decoding each word per step.
    ///
    /// `decoded` must be the image of `program`'s current text (a
    /// `DecodeCache` guarantees the pairing). Results are bit-identical to
    /// [`run_into`](Processor::run_into) — the built-in cores override this
    /// to skip per-step decoding, while the default implementation simply
    /// falls back to the interpreted path, so foreign `Processor`
    /// implementations stay correct without opting in.
    fn run_decoded_into(
        &self,
        program: &Program,
        decoded: &DecodedProgram,
        max_steps: usize,
        scratch: &mut SimScratch,
        out: &mut DutResult,
    ) {
        let _ = decoded;
        self.run_into(program, max_steps, scratch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_trait_is_object_safe() {
        fn takes_dyn(_p: &dyn Processor) {}
        let core = cores::RocketCore::new(BugSet::none());
        takes_dyn(&core);
    }
}
