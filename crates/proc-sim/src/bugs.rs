//! Injected vulnerabilities (the reproduction of Table I's V1–V7).
//!
//! Each vulnerability is a small, deliberate deviation of a processor model
//! from the golden architectural semantics, guarded by a trigger condition
//! whose rarity is calibrated so the *relative* detection difficulty matches
//! the paper: V5 is trivial (almost any wild memory access trips it), V7 is
//! deep (it needs an `ebreak` to commit *and* a later read of the
//! retired-instruction counter in the same test).
//!
//! | Id | CWE | Paper description | Modelled deviation |
//! |----|-----|-------------------|--------------------|
//! | V1 | 440 | `FENCE.I` instruction decoded incorrectly | DUT decodes `fence.i` as an illegal instruction and raises an exception the golden model does not |
//! | V2 | 1242 | Some illegal instructions can be executed | DUT executes `OP`-major words with an unknown `funct7` as if `funct7` were zero instead of trapping |
//! | V3 | 1202 | Exception type incorrectly propagated in instruction queue | when the faulting instruction immediately follows a taken branch, `mcause` is recorded as illegal-instruction regardless of the real cause |
//! | V4 | 1202 | Undetected cache coherency violation | a load that hits a store-buffer entry whose cache line was evicted returns the stale pre-store value |
//! | V5 | 1252 | Exception not thrown when invalid addresses accessed | loads from unmapped addresses return zero instead of raising an access fault |
//! | V6 | 1281 | Accessing unimplemented CSRs returns X-values | reads of unimplemented CSRs return a junk value instead of raising an illegal-instruction exception |
//! | V7 | 1201 | `EBREAK` does not increase instruction count | `ebreak` commits without incrementing `minstret` |
//!
//! V1–V6 are native to the CVA6 model and V7 to the Rocket model, matching
//! the paper's attribution; [`BugSet`] lets experiments enable any subset on
//! any core.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the seven reproduced vulnerabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Vulnerability {
    /// V1 (CWE-440): `FENCE.I` decoded incorrectly.
    V1FenceiDecode,
    /// V2 (CWE-1242): some illegal instructions execute instead of trapping.
    V2IllegalExecuted,
    /// V3 (CWE-1202): exception type mis-propagated after a taken branch.
    V3ExceptionType,
    /// V4 (CWE-1202): cache-coherency violation returns stale data.
    V4CacheCoherency,
    /// V5 (CWE-1252): missing access-fault exception on invalid addresses.
    V5MissingAccessFault,
    /// V6 (CWE-1281): unimplemented CSR reads return junk values.
    V6UnimplCsrJunk,
    /// V7 (CWE-1201): `ebreak` does not increment `minstret`.
    V7EbreakInstret,
}

impl Vulnerability {
    /// All vulnerabilities in paper order.
    pub const ALL: [Vulnerability; 7] = [
        Vulnerability::V1FenceiDecode,
        Vulnerability::V2IllegalExecuted,
        Vulnerability::V3ExceptionType,
        Vulnerability::V4CacheCoherency,
        Vulnerability::V5MissingAccessFault,
        Vulnerability::V6UnimplCsrJunk,
        Vulnerability::V7EbreakInstret,
    ];

    /// Returns the paper's short identifier (`"V1"` … `"V7"`).
    pub fn id(self) -> &'static str {
        match self {
            Vulnerability::V1FenceiDecode => "V1",
            Vulnerability::V2IllegalExecuted => "V2",
            Vulnerability::V3ExceptionType => "V3",
            Vulnerability::V4CacheCoherency => "V4",
            Vulnerability::V5MissingAccessFault => "V5",
            Vulnerability::V6UnimplCsrJunk => "V6",
            Vulnerability::V7EbreakInstret => "V7",
        }
    }

    /// Returns the CWE number the paper associates with the vulnerability.
    pub fn cwe(self) -> u32 {
        match self {
            Vulnerability::V1FenceiDecode => 440,
            Vulnerability::V2IllegalExecuted => 1242,
            Vulnerability::V3ExceptionType => 1202,
            Vulnerability::V4CacheCoherency => 1202,
            Vulnerability::V5MissingAccessFault => 1252,
            Vulnerability::V6UnimplCsrJunk => 1281,
            Vulnerability::V7EbreakInstret => 1201,
        }
    }

    /// Returns the paper's one-line description.
    pub fn description(self) -> &'static str {
        match self {
            Vulnerability::V1FenceiDecode => "FENCE.I instruction decoded incorrectly",
            Vulnerability::V2IllegalExecuted => "Some illegal instructions can be executed",
            Vulnerability::V3ExceptionType => "Exception type incorrectly propagated in instruction queue",
            Vulnerability::V4CacheCoherency => "Undetected cache coherency violation",
            Vulnerability::V5MissingAccessFault => "Exception not thrown when invalid addresses accessed",
            Vulnerability::V6UnimplCsrJunk => "Accessing unimplemented CSRs returns X-values",
            Vulnerability::V7EbreakInstret => "EBREAK does not increase instruction count",
        }
    }

    /// Returns the core the vulnerability is native to in the paper
    /// (`"cva6"` for V1–V6, `"rocket"` for V7).
    pub fn native_core(self) -> &'static str {
        match self {
            Vulnerability::V7EbreakInstret => "rocket",
            _ => "cva6",
        }
    }

    /// Parses a paper identifier such as `"V3"` (case-insensitive).
    pub fn parse(text: &str) -> Option<Vulnerability> {
        let text = text.trim().to_ascii_uppercase();
        Vulnerability::ALL.iter().copied().find(|v| v.id() == text)
    }
}

impl fmt::Display for Vulnerability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id(), self.description())
    }
}

/// The set of vulnerabilities enabled in a processor instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugSet {
    enabled: Vec<Vulnerability>,
}

impl BugSet {
    /// Creates an empty set: a bug-free (golden-equivalent) processor.
    pub fn none() -> BugSet {
        BugSet::default()
    }

    /// Creates a set with every vulnerability enabled.
    pub fn all() -> BugSet {
        BugSet { enabled: Vulnerability::ALL.to_vec() }
    }

    /// Creates a set with exactly one vulnerability enabled — the
    /// configuration Table I's per-vulnerability detection experiments use.
    pub fn only(vulnerability: Vulnerability) -> BugSet {
        BugSet { enabled: vec![vulnerability] }
    }

    /// Creates a set with the vulnerabilities native to the named core
    /// (V1–V6 for `"cva6"`, V7 for `"rocket"`, empty otherwise).
    pub fn native_to(core: &str) -> BugSet {
        BugSet {
            enabled: Vulnerability::ALL
                .iter()
                .copied()
                .filter(|v| v.native_core() == core)
                .collect(),
        }
    }

    /// Creates a set from an explicit list (duplicates are removed).
    pub fn from_list(list: impl IntoIterator<Item = Vulnerability>) -> BugSet {
        let mut enabled: Vec<Vulnerability> = list.into_iter().collect();
        enabled.sort();
        enabled.dedup();
        BugSet { enabled }
    }

    /// Returns `true` when the given vulnerability is enabled.
    pub fn has(&self, vulnerability: Vulnerability) -> bool {
        self.enabled.contains(&vulnerability)
    }

    /// Returns `true` when no vulnerability is enabled.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    /// Returns the enabled vulnerabilities.
    pub fn iter(&self) -> impl Iterator<Item = Vulnerability> + '_ {
        self.enabled.iter().copied()
    }

    /// Returns the number of enabled vulnerabilities.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }
}

impl fmt::Display for BugSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.enabled.is_empty() {
            return f.write_str("no injected vulnerabilities");
        }
        let ids: Vec<&str> = self.enabled.iter().map(|v| v.id()).collect();
        write!(f, "injected: {}", ids.join(", "))
    }
}

impl FromIterator<Vulnerability> for BugSet {
    fn from_iter<T: IntoIterator<Item = Vulnerability>>(iter: T) -> Self {
        BugSet::from_list(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_matches_the_paper_table() {
        assert_eq!(Vulnerability::V1FenceiDecode.cwe(), 440);
        assert_eq!(Vulnerability::V2IllegalExecuted.cwe(), 1242);
        assert_eq!(Vulnerability::V5MissingAccessFault.cwe(), 1252);
        assert_eq!(Vulnerability::V7EbreakInstret.cwe(), 1201);
        assert_eq!(Vulnerability::V7EbreakInstret.native_core(), "rocket");
        assert_eq!(Vulnerability::V4CacheCoherency.native_core(), "cva6");
        assert_eq!(Vulnerability::ALL.len(), 7);
    }

    #[test]
    fn parse_round_trips_ids() {
        for v in Vulnerability::ALL {
            assert_eq!(Vulnerability::parse(v.id()), Some(v));
            assert_eq!(Vulnerability::parse(&v.id().to_lowercase()), Some(v));
        }
        assert_eq!(Vulnerability::parse("V9"), None);
    }

    #[test]
    fn bugset_constructors() {
        assert!(BugSet::none().is_empty());
        assert_eq!(BugSet::all().len(), 7);
        assert_eq!(BugSet::only(Vulnerability::V3ExceptionType).len(), 1);
        assert!(BugSet::only(Vulnerability::V3ExceptionType).has(Vulnerability::V3ExceptionType));
        assert_eq!(BugSet::native_to("cva6").len(), 6);
        assert_eq!(BugSet::native_to("rocket").len(), 1);
        assert_eq!(BugSet::native_to("boom").len(), 0);
    }

    #[test]
    fn from_list_deduplicates() {
        let set = BugSet::from_list([
            Vulnerability::V1FenceiDecode,
            Vulnerability::V1FenceiDecode,
            Vulnerability::V6UnimplCsrJunk,
        ]);
        assert_eq!(set.len(), 2);
        let collected: BugSet = [Vulnerability::V2IllegalExecuted].into_iter().collect();
        assert_eq!(collected.len(), 1);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(BugSet::none().to_string(), "no injected vulnerabilities");
        let set = BugSet::from_list([Vulnerability::V1FenceiDecode, Vulnerability::V5MissingAccessFault]);
        assert_eq!(set.to_string(), "injected: V1, V5");
        assert!(Vulnerability::V7EbreakInstret.to_string().contains("EBREAK"));
    }
}
