//! The Rocket-like core model.
//!
//! Rocket is the classic 5-stage, in-order RISC-V core from the Rocket Chip
//! generator. The model sits between CVA6 and BOOM in coverage-space size:
//! larger predictor and cache structures than CVA6 (more, mostly reachable,
//! points) but no out-of-order window. The paper's V7 vulnerability
//! (`EBREAK` does not increase the instruction count) is native to this
//! design.

use crate::bugs::BugSet;
use crate::cores::common::{CoreConfig, CoreModel};
use crate::{DutResult, Processor, SimScratch};

use coverage::CoverageSpace;
use riscv::Program;

/// The Rocket-like processor model.
///
/// # Example
///
/// ```
/// use proc_sim::{cores::RocketCore, BugSet, Processor};
///
/// let core = RocketCore::with_native_bugs();
/// assert_eq!(core.name(), "rocket");
/// assert_eq!(core.bugs().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RocketCore {
    model: CoreModel,
}

impl RocketCore {
    /// Builds the Rocket model with an explicit set of injected bugs.
    pub fn new(bugs: BugSet) -> RocketCore {
        let config = CoreConfig {
            name: "rocket",
            bht_entries: 256,
            btb_entries: 32,
            icache_sets: 32,
            dcache_sets: 32,
            dcache_ways: 2,
            store_buffer: 8,
            decoder_depth_sites: 8,
            fpu_sites: 32,
            commit_index_buckets: 8,
            class_depth_buckets: 4,
            fetch_group_sites: false,
            scoreboard_distance_buckets: 8,
            rob_entries: 0,
            rob_lanes: 0,
        };
        RocketCore { model: CoreModel::new(config, bugs) }
    }

    /// Builds the Rocket model with its paper-native vulnerability (V7).
    pub fn with_native_bugs() -> RocketCore {
        RocketCore::new(BugSet::native_to("rocket"))
    }
}

impl Processor for RocketCore {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn coverage_space(&self) -> &CoverageSpace {
        self.model.coverage_space()
    }

    fn bugs(&self) -> &BugSet {
        self.model.bugs()
    }

    fn run_into(
        &self,
        program: &Program,
        max_steps: usize,
        scratch: &mut SimScratch,
        out: &mut DutResult,
    ) {
        self.model.run_into(program, max_steps, scratch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::asm::parse_program;
    use riscv::Gpr;

    #[test]
    fn space_is_larger_than_cva6() {
        let rocket = RocketCore::new(BugSet::none());
        let cva6 = crate::cores::Cva6Core::new(BugSet::none());
        assert!(rocket.coverage_space().len() > cva6.coverage_space().len());
    }

    #[test]
    fn native_bug_changes_instret_reads_after_ebreak() {
        let buggy = RocketCore::with_native_bugs();
        let clean = RocketCore::new(BugSet::none());
        let program = Program::from_instrs(
            parse_program("ebreak\ncsrrs a0, minstret, zero\necall\n").unwrap(),
        );
        let buggy_count = buggy.run(&program, 100).trace.final_state().reg(Gpr::A0);
        let clean_count = clean.run(&program, 100).trace.final_state().reg(Gpr::A0);
        assert_eq!(clean_count, 1);
        assert_eq!(buggy_count, 0);
    }
}
