//! The CVA6-like core model.
//!
//! CVA6 (formerly Ariane) is a 6-stage, single-issue, in-order-issue /
//! out-of-order-writeback application-class core with a scoreboard and an FPU.
//! The model mirrors those traits at the level the fuzzer observes:
//!
//! * the smallest coverage space of the three designs,
//! * the largest proportion of deep points: a sizeable block of unreachable
//!   FPU decode sites and a class × commit-depth cross that only long tests
//!   with rare instruction classes late in the program can reach — this is
//!   the design on which the paper's TheHuzz baseline achieves its lowest
//!   coverage percentage and MABFuzz its largest speedup,
//! * the paper's V1–V6 vulnerabilities are native to this design.

use crate::bugs::BugSet;
use crate::cores::common::{CoreConfig, CoreModel};
use crate::{DutResult, Processor, SimScratch};

use coverage::CoverageSpace;
use riscv::Program;

/// The CVA6-like processor model.
///
/// # Example
///
/// ```
/// use proc_sim::{cores::Cva6Core, BugSet, Processor};
///
/// let core = Cva6Core::with_native_bugs();
/// assert_eq!(core.name(), "cva6");
/// assert_eq!(core.bugs().len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Cva6Core {
    model: CoreModel,
}

impl Cva6Core {
    /// Builds the CVA6 model with an explicit set of injected bugs.
    pub fn new(bugs: BugSet) -> Cva6Core {
        let config = CoreConfig {
            name: "cva6",
            bht_entries: 64,
            btb_entries: 16,
            icache_sets: 16,
            dcache_sets: 16,
            dcache_ways: 1,
            store_buffer: 4,
            decoder_depth_sites: 12,
            fpu_sites: 96,
            commit_index_buckets: 12,
            class_depth_buckets: 8,
            fetch_group_sites: false,
            scoreboard_distance_buckets: 8,
            rob_entries: 0,
            rob_lanes: 0,
        };
        Cva6Core { model: CoreModel::new(config, bugs) }
    }

    /// Builds the CVA6 model with its paper-native vulnerabilities (V1–V6).
    pub fn with_native_bugs() -> Cva6Core {
        Cva6Core::new(BugSet::native_to("cva6"))
    }
}

impl Processor for Cva6Core {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn coverage_space(&self) -> &CoverageSpace {
        self.model.coverage_space()
    }

    fn bugs(&self) -> &BugSet {
        self.model.bugs()
    }

    fn run_into(
        &self,
        program: &Program,
        max_steps: usize,
        scratch: &mut SimScratch,
        out: &mut DutResult,
    ) {
        self.model.run_into(program, max_steps, scratch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::asm::parse_program;

    #[test]
    fn space_contains_the_design_specific_modules() {
        let core = Cva6Core::new(BugSet::none());
        let counts = core.coverage_space().per_module_counts();
        assert!(counts["core_extra"] >= 96, "FPU + depth sites present");
        assert!(counts.contains_key("scoreboard"));
        assert!(!counts.contains_key("rob"), "CVA6 is not an out-of-order ROB design");
    }

    #[test]
    fn runs_programs_and_reports_coverage() {
        let core = Cva6Core::with_native_bugs();
        let program = Program::from_instrs(
            parse_program("addi a0, zero, 3\nmul a1, a0, a0\necall\n").unwrap(),
        );
        let result = core.run(&program, 100);
        assert_eq!(result.trace.final_state().reg(riscv::Gpr::A1), 9);
        assert!(result.coverage.count() > 0);
        assert!(result.coverage.ratio() < 0.5, "a tiny program must not cover half the design");
    }
}
