//! The BOOM-like core model.
//!
//! BOOM (the Berkeley Out-of-Order Machine) is a superscalar, out-of-order
//! core. Its model has the largest coverage space of the three designs —
//! wide predictors and caches, a re-order buffer with per-entry points and
//! superscalar fetch-group sites — but the bulk of those points are easy to
//! reach, mirroring the paper's observation that TheHuzz already exceeds 95 %
//! branch coverage on BOOM and leaves MABFuzz little room for improvement.
//! No paper vulnerability is native to this design.

use crate::bugs::BugSet;
use crate::cores::common::{CoreConfig, CoreModel};
use crate::{DutResult, Processor, SimScratch};

use coverage::CoverageSpace;
use riscv::Program;

/// The BOOM-like processor model.
///
/// # Example
///
/// ```
/// use proc_sim::{cores::BoomCore, BugSet, Processor};
///
/// let core = BoomCore::new(BugSet::none());
/// assert_eq!(core.name(), "boom");
/// assert!(core.bugs().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BoomCore {
    model: CoreModel,
}

impl BoomCore {
    /// Builds the BOOM model with an explicit set of injected bugs.
    pub fn new(bugs: BugSet) -> BoomCore {
        let config = CoreConfig {
            name: "boom",
            bht_entries: 512,
            btb_entries: 64,
            icache_sets: 64,
            dcache_sets: 64,
            dcache_ways: 2,
            store_buffer: 16,
            decoder_depth_sites: 8,
            fpu_sites: 24,
            commit_index_buckets: 8,
            class_depth_buckets: 2,
            fetch_group_sites: true,
            scoreboard_distance_buckets: 0,
            rob_entries: 48,
            rob_lanes: 3,
        };
        BoomCore { model: CoreModel::new(config, bugs) }
    }

    /// Builds the BOOM model with its paper-native bugs (none).
    pub fn with_native_bugs() -> BoomCore {
        BoomCore::new(BugSet::native_to("boom"))
    }
}

impl Processor for BoomCore {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn coverage_space(&self) -> &CoverageSpace {
        self.model.coverage_space()
    }

    fn bugs(&self) -> &BugSet {
        self.model.bugs()
    }

    fn run_into(
        &self,
        program: &Program,
        max_steps: usize,
        scratch: &mut SimScratch,
        out: &mut DutResult,
    ) {
        self.model.run_into(program, max_steps, scratch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::asm::parse_program;

    #[test]
    fn space_is_the_largest_and_uses_a_rob() {
        let boom = BoomCore::new(BugSet::none());
        let rocket = crate::cores::RocketCore::new(BugSet::none());
        assert!(boom.coverage_space().len() > rocket.coverage_space().len());
        let counts = boom.coverage_space().per_module_counts();
        assert!(counts.contains_key("rob"));
        assert!(!counts.contains_key("scoreboard"));
    }

    #[test]
    fn executes_programs_identically_to_the_other_cores() {
        let boom = BoomCore::new(BugSet::none());
        let rocket = crate::cores::RocketCore::new(BugSet::none());
        let program = Program::from_instrs(
            parse_program(
                "lui gp, 0x80010\naddi a0, zero, 7\nsd a0, 0(gp)\nld a1, 0(gp)\nmul a2, a1, a1\necall\n",
            )
            .unwrap(),
        );
        let boom_result = boom.run(&program, 100);
        let rocket_result = rocket.run(&program, 100);
        // Architectural behaviour is identical; coverage spaces differ.
        assert_eq!(boom_result.trace.final_state(), rocket_result.trace.final_state());
        assert_ne!(boom_result.coverage.len(), rocket_result.coverage.len());
    }
}
