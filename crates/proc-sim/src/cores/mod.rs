//! The three simulated processor designs.
//!
//! All three cores share the same driver skeleton ([`common::CoreModel`]) and
//! differ in their configuration: predictor/cache sizes, back-end kind
//! (scoreboard vs. re-order buffer) and design-specific extra coverage sites.
//! The constants chosen give the three designs coverage spaces whose relative
//! sizes and reachability mirror the paper's benchmarks: CVA6 has the
//! smallest space but the largest share of deep points, BOOM the largest and
//! mostly-easy space.

pub mod boom;
pub mod common;
pub mod cva6;
pub mod rocket;

pub use boom::BoomCore;
pub use common::{Backend, CoreConfig, CoreExtras, CoreModel};
pub use cva6::Cva6Core;
pub use rocket::RocketCore;

use crate::bugs::BugSet;
use crate::Processor;

/// Identifies one of the three benchmark processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub enum ProcessorKind {
    /// The CVA6 (Ariane) application-class core.
    Cva6,
    /// The Rocket in-order core.
    Rocket,
    /// The BOOM superscalar out-of-order core.
    Boom,
}

impl ProcessorKind {
    /// All benchmark processors in paper order.
    pub const ALL: [ProcessorKind; 3] = [ProcessorKind::Cva6, ProcessorKind::Rocket, ProcessorKind::Boom];

    /// Returns the lower-case design name used throughout the workspace.
    pub fn name(self) -> &'static str {
        match self {
            ProcessorKind::Cva6 => "cva6",
            ProcessorKind::Rocket => "rocket",
            ProcessorKind::Boom => "boom",
        }
    }

    /// Parses a design name (case-insensitive).
    pub fn parse(text: &str) -> Option<ProcessorKind> {
        match text.trim().to_ascii_lowercase().as_str() {
            "cva6" | "ariane" => Some(ProcessorKind::Cva6),
            "rocket" => Some(ProcessorKind::Rocket),
            "boom" | "sonicboom" => Some(ProcessorKind::Boom),
            _ => None,
        }
    }

    /// Builds the processor model with the given injected bugs.
    pub fn build(self, bugs: BugSet) -> Box<dyn Processor> {
        match self {
            ProcessorKind::Cva6 => Box::new(Cva6Core::new(bugs)),
            ProcessorKind::Rocket => Box::new(RocketCore::new(bugs)),
            ProcessorKind::Boom => Box::new(BoomCore::new(bugs)),
        }
    }

    /// Builds the processor with its paper-native bugs enabled
    /// (V1–V6 on CVA6, V7 on Rocket, none on BOOM).
    pub fn build_with_native_bugs(self) -> Box<dyn Processor> {
        self.build(BugSet::native_to(self.name()))
    }
}

impl std::fmt::Display for ProcessorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trip() {
        for kind in ProcessorKind::ALL {
            assert_eq!(ProcessorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ProcessorKind::parse("BOOM"), Some(ProcessorKind::Boom));
        assert_eq!(ProcessorKind::parse("pentium"), None);
    }

    #[test]
    fn build_produces_named_processors() {
        for kind in ProcessorKind::ALL {
            let processor = kind.build(BugSet::none());
            assert_eq!(processor.name(), kind.name());
            assert!(processor.coverage_space().len() > 100);
        }
    }

    #[test]
    fn native_bugs_match_the_paper_attribution() {
        assert_eq!(ProcessorKind::Cva6.build_with_native_bugs().bugs().len(), 6);
        assert_eq!(ProcessorKind::Rocket.build_with_native_bugs().bugs().len(), 1);
        assert!(ProcessorKind::Boom.build_with_native_bugs().bugs().is_empty());
    }

    #[test]
    fn coverage_space_sizes_are_ordered_like_the_paper() {
        let cva6 = Cva6Core::new(BugSet::none());
        let rocket = RocketCore::new(BugSet::none());
        let boom = BoomCore::new(BugSet::none());
        assert!(cva6.coverage_space().len() < rocket.coverage_space().len());
        assert!(rocket.coverage_space().len() < boom.coverage_space().len());
    }
}
