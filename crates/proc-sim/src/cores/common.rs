//! The shared core driver all three processor models instantiate.

use coverage::{CoverPointId, CoverageMap, CoverageSpace};
use isa_sim::exec::{execute_instr, InstrOutcome};
use isa_sim::{
    ArchState, CommitRecord, DecodedProgram, Exception, HaltReason, MemAccess, Memory,
    ResetPolicy, PHYS_ADDR_MASK,
};
use riscv::op::Format;
use riscv::program::TEXT_BASE;
use riscv::{decode, Gpr, Instr, Op, OpClass, Program};

use crate::bugs::{BugSet, Vulnerability};
use crate::pipeline::{
    bucket, CacheModel, CsrFileModel, DecoderModel, ExecuteModel, FrontendModel, LsuModel,
    RobModel, ScoreboardModel,
};
use crate::{DutResult, Processor, SimScratch};

/// The back-end organisation of a core.
#[derive(Debug, Clone)]
pub enum Backend {
    /// In-order issue with a scoreboard (Rocket, CVA6).
    Scoreboard(ScoreboardModel),
    /// Out-of-order issue with a re-order buffer (BOOM).
    Rob(RobModel),
}

impl Backend {
    fn reset(&mut self) {
        match self {
            Backend::Scoreboard(sb) => sb.reset(),
            Backend::Rob(rob) => rob.reset(),
        }
    }

    fn reset_dirty(&mut self) {
        match self {
            Backend::Scoreboard(sb) => sb.reset_dirty(),
            // The ROB's reset is already O(in-flight): it clears a VecDeque
            // and two counters, so it doubles as its own dirty reset.
            Backend::Rob(rob) => rob.reset(),
        }
    }

    fn on_instr(&mut self, instr: &Instr, map: &mut CoverageMap) {
        match self {
            Backend::Scoreboard(sb) => sb.on_issue(instr, map),
            Backend::Rob(rob) => rob.on_dispatch(instr, map),
        }
    }

    fn on_redirect(&mut self, map: &mut CoverageMap) {
        if let Backend::Rob(rob) = self {
            rob.on_flush(map);
        }
    }
}

/// Design-specific additional coverage sites.
///
/// These are the knobs that differentiate the reachability profile of the
/// three cores beyond their component sizes:
///
/// * `fpu_sites` — floating-point-unit decode sites. The modelled ISA has no
///   F/D instructions, so these are unreachable: they inflate the denominator
///   the way CVA6's FPU inflates its branch-point count without being
///   exercised by integer-only fuzzing.
/// * `commit_index_buckets` — points reached only once the test has committed
///   `16·i` instructions; long-running tests are needed to reach the tail.
/// * `class_depth_cross` — cross product of instruction class × commit-depth
///   bucket; the deep multiply/divide/CSR crosses need long tests *with* rare
///   classes late in the program, which is where seed selection matters most.
/// * `fetch_group_sites` — easy superscalar fetch-alignment points (BOOM).
#[derive(Debug, Clone)]
pub struct CoreExtras {
    fpu_ids: Vec<CoverPointId>,
    commit_bucket_ids: Vec<CoverPointId>,
    class_depth_ids: Vec<CoverPointId>,
    fetch_group_ids: Vec<CoverPointId>,
    class_depth_buckets: usize,
}

impl CoreExtras {
    /// Registers the extra sites in `space`.
    pub fn new(
        space: &mut CoverageSpace,
        fpu_sites: usize,
        commit_index_buckets: usize,
        class_depth_buckets: usize,
        fetch_group_sites: bool,
    ) -> CoreExtras {
        let module = "core_extra";
        let fpu_ids = (0..fpu_sites)
            .map(|i| space.register_branch(module, format!("fpu_op_{i}"), true))
            .collect();
        let commit_bucket_ids = (0..commit_index_buckets)
            .map(|i| space.register_branch(module, format!("committed_{}_instrs", 16 * (i + 1)), true))
            .collect();
        let mut class_depth_ids = Vec::new();
        for class in OpClass::ALL {
            for depth in 0..class_depth_buckets {
                class_depth_ids.push(space.register_branch(
                    module,
                    format!("{class}_at_depth_bucket{depth}"),
                    true,
                ));
            }
        }
        let fetch_group_ids = if fetch_group_sites {
            (0..4)
                .map(|i| space.register_branch(module, format!("fetch_group_slot{i}"), true))
                .collect()
        } else {
            Vec::new()
        };
        CoreExtras {
            fpu_ids,
            commit_bucket_ids,
            class_depth_ids,
            fetch_group_ids,
            class_depth_buckets,
        }
    }

    fn on_commit(&self, instr: &Instr, commit_index: usize, pc: u64, map: &mut CoverageMap) {
        // FPU sites are intentionally never covered (no F/D instructions).
        let _ = &self.fpu_ids;
        let bucket_index = commit_index / 16;
        if bucket_index >= 1 && bucket_index <= self.commit_bucket_ids.len() {
            map.cover(self.commit_bucket_ids[bucket_index - 1]);
        }
        if self.class_depth_buckets > 0 {
            let class_index = OpClass::ALL
                .iter()
                .position(|c| *c == instr.op.class())
                .expect("class is in OpClass::ALL");
            let depth = bucket(commit_index, self.class_depth_buckets);
            map.cover(self.class_depth_ids[class_index * self.class_depth_buckets + depth]);
        }
        if !self.fetch_group_ids.is_empty() {
            map.cover(self.fetch_group_ids[((pc >> 2) & 0b11) as usize]);
        }
    }
}

/// Sizing and structure parameters of a core model.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Design name (also the coverage-space name).
    pub name: &'static str,
    /// Branch-history-table entries.
    pub bht_entries: usize,
    /// Branch-target-buffer entries.
    pub btb_entries: usize,
    /// Instruction-cache sets (ways are fixed at 2).
    pub icache_sets: usize,
    /// Data-cache sets.
    pub dcache_sets: usize,
    /// Data-cache ways.
    pub dcache_ways: usize,
    /// Store-buffer entries.
    pub store_buffer: usize,
    /// Decoder consecutive-decode depth sites.
    pub decoder_depth_sites: usize,
    /// Number of unreachable FPU sites.
    pub fpu_sites: usize,
    /// Commit-index bucket sites.
    pub commit_index_buckets: usize,
    /// Class × depth cross buckets (0 disables the cross).
    pub class_depth_buckets: usize,
    /// Whether to add superscalar fetch-group sites.
    pub fetch_group_sites: bool,
    /// Scoreboard hazard-distance buckets (ignored for ROB back-ends).
    pub scoreboard_distance_buckets: usize,
    /// ROB entries (`0` selects a scoreboard back-end instead).
    pub rob_entries: usize,
    /// ROB issue lanes.
    pub rob_lanes: usize,
}

/// A complete processor model: configuration, coverage space, injected bugs
/// and the component templates cloned for every run.
#[derive(Debug, Clone)]
pub struct CoreModel {
    config: CoreConfig,
    bugs: BugSet,
    space: CoverageSpace,
    components: Components,
}

#[derive(Debug, Clone)]
struct Components {
    icache: CacheModel,
    frontend: FrontendModel,
    decoder: DecoderModel,
    execute: ExecuteModel,
    lsu: LsuModel,
    csrfile: CsrFileModel,
    backend: Backend,
    extras: CoreExtras,
}

/// The reusable component state a [`CoreModel`] parks inside a
/// [`SimScratch`] between runs: one clone of the component templates, tagged
/// with the design identity so a scratch handed to a different model is
/// detected and rebuilt instead of misused.
#[derive(Debug)]
struct ModelScratch {
    design: &'static str,
    space_len: usize,
    components: Components,
}

impl Components {
    fn reset(&mut self) {
        self.icache.reset();
        self.frontend.reset();
        self.decoder.reset();
        self.execute.reset();
        self.lsu.reset();
        self.csrfile.reset();
        self.backend.reset();
    }

    /// Like [`reset`](Components::reset), but each component restores only
    /// what the previous test dirtied (see `isa_sim::snapshot`). The decoder
    /// (one counter), execute unit (stateless) and CSR-file model (stateless)
    /// already have O(1) resets and keep them.
    fn reset_dirty(&mut self) {
        self.icache.reset_dirty();
        self.frontend.reset_dirty();
        self.decoder.reset();
        self.execute.reset();
        self.lsu.reset_dirty();
        self.csrfile.reset();
        self.backend.reset_dirty();
    }
}

impl CoreModel {
    /// Builds a core model from its configuration and injected bug set.
    pub fn new(config: CoreConfig, bugs: BugSet) -> CoreModel {
        let mut space = CoverageSpace::new(config.name);
        let icache = CacheModel::new(&mut space, "icache", config.icache_sets, 2, 64);
        let frontend = FrontendModel::new(&mut space, config.bht_entries, config.btb_entries);
        let decoder = DecoderModel::new(&mut space, config.decoder_depth_sites);
        let execute = ExecuteModel::new(&mut space);
        let lsu = LsuModel::new(&mut space, config.dcache_sets, config.dcache_ways, config.store_buffer);
        let csrfile = CsrFileModel::new(&mut space);
        let backend = if config.rob_entries > 0 {
            Backend::Rob(RobModel::new(&mut space, config.rob_entries, config.rob_lanes.max(1)))
        } else {
            Backend::Scoreboard(ScoreboardModel::new(&mut space, config.scoreboard_distance_buckets))
        };
        let extras = CoreExtras::new(
            &mut space,
            config.fpu_sites,
            config.commit_index_buckets,
            config.class_depth_buckets,
            config.fetch_group_sites,
        );
        CoreModel {
            config,
            bugs,
            space,
            components: Components { icache, frontend, decoder, execute, lsu, csrfile, backend, extras },
        }
    }

    /// Returns the configuration the model was built with.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Decodes an `OP`-major word ignoring its `funct7` field — the buggy
    /// decode path the V2 vulnerability exposes.
    fn v2_decode(word: u32) -> Option<Instr> {
        if word & 0x7f != 0b011_0011 {
            return None;
        }
        let funct3 = (word >> 12) & 0x7;
        let op = match funct3 {
            0b000 => Op::Add,
            0b001 => Op::Sll,
            0b010 => Op::Slt,
            0b011 => Op::Sltu,
            0b100 => Op::Xor,
            0b101 => Op::Srl,
            0b110 => Op::Or,
            0b111 => Op::And,
            _ => return None,
        };
        Some(Instr::rtype(
            op,
            Gpr::from_index(((word >> 7) & 0x1f) as u8),
            Gpr::from_index(((word >> 15) & 0x1f) as u8),
            Gpr::from_index(((word >> 20) & 0x1f) as u8),
        ))
    }

    /// The deterministic junk value an unimplemented CSR read returns when the
    /// V6 vulnerability is enabled (models reading uninitialised `X` state).
    fn v6_junk(csr: u16) -> u64 {
        let seed = u64::from(csr).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        seed ^ (seed >> 29) ^ 0xdead_beef_cafe_f00d
    }
}

impl Processor for CoreModel {
    fn name(&self) -> &str {
        self.config.name
    }

    fn coverage_space(&self) -> &CoverageSpace {
        &self.space
    }

    fn bugs(&self) -> &BugSet {
        &self.bugs
    }

    fn run_into(
        &self,
        program: &Program,
        max_steps: usize,
        scratch: &mut SimScratch,
        out: &mut DutResult,
    ) {
        self.run_model(program, None, max_steps, scratch, out, |mem, pc| {
            mem.fetch(pc).map(|word| (word, decode(word).ok()))
        });
    }

    fn run_decoded_into(
        &self,
        program: &Program,
        decoded: &DecodedProgram,
        max_steps: usize,
        scratch: &mut SimScratch,
        out: &mut DutResult,
    ) {
        debug_assert!(decoded.matches(program), "pre-decoded image is not this program's text");
        self.run_model(program, Some(decoded), max_steps, scratch, out, |_mem, pc| {
            decoded.fetch(pc).map(|slot| (slot.word, slot.instr))
        });
    }
}

impl CoreModel {
    /// The shared core driver behind both fetch paths.
    ///
    /// `fetch` yields the raw word and its *architectural* decode (or `None`
    /// past the end of text); `predecoded` additionally supplies the already-
    /// encoded text image so the cached path skips the per-test re-encode.
    /// Everything downstream of the fetch — including the bug-injected
    /// decoder behaviour (V2 executes words whose architectural decode
    /// failed) — is identical in both modes, which is what keeps the decode
    /// cache transparent to the injected vulnerabilities.
    fn run_model(
        &self,
        program: &Program,
        predecoded: Option<&DecodedProgram>,
        max_steps: usize,
        scratch: &mut SimScratch,
        out: &mut DutResult,
        fetch: impl Fn(&Memory, u64) -> Option<(u32, Option<Instr>)>,
    ) {
        let policy = scratch.reset_policy();
        let (mem, text, model_slot, snapshot) = scratch.parts();

        // Adopt (or create) the scratch's component state for this design.
        let reusable = model_slot
            .as_mut()
            .and_then(|state| state.downcast_mut::<ModelScratch>())
            .is_some_and(|state| {
                state.design == self.config.name && state.space_len == self.space.len()
            });
        if !reusable {
            *model_slot = Some(Box::new(ModelScratch {
                design: self.config.name,
                space_len: self.space.len(),
                components: self.components.clone(),
            }));
        }
        let parts = &mut model_slot
            .as_mut()
            .and_then(|state| state.downcast_mut::<ModelScratch>())
            .expect("model scratch was just validated or rebuilt")
            .components;
        // A freshly cloned component set is pristine, so the dirty reset is
        // safe on the first run too.
        match policy {
            ResetPolicy::SnapshotReset => parts.reset_dirty(),
            ResetPolicy::FullReinit => parts.reset(),
        }

        let image = match predecoded {
            Some(decoded) => decoded.text(),
            None => {
                program.text_bytes_into(text);
                &*text
            }
        };
        match policy {
            ResetPolicy::SnapshotReset => mem.restore_with_program(image, program.data()),
            ResetPolicy::FullReinit => mem.reset_with_program(image, program.data()),
        }
        out.coverage.reset_for_len(self.space.len());
        out.trace.clear();
        // Snapshot reset recycles the previous run's final state (keeping its
        // CSR-map allocation) instead of building a fresh one; `finish`
        // repopulates the trace's slot at the end of the run.
        let mut state = match policy {
            ResetPolicy::SnapshotReset => {
                let mut state = out.trace.take_final_state();
                snapshot.restore(&mut state);
                state
            }
            ResetPolicy::FullReinit => ArchState::new(),
        };
        let map = &mut out.coverage;
        let text_end = TEXT_BASE + mem.text_len();
        let mut halt = HaltReason::StepLimit;
        // V3 trigger state: was the previously committed instruction a taken
        // control-flow transfer (i.e. is this instruction at the head of a new
        // fetch group in the instruction queue)?
        let mut prev_redirected = false;

        for seq in 0..max_steps as u64 {
            let pc = state.pc;
            let Some((word, decoded)) = fetch(&*mem, pc) else {
                halt = HaltReason::PcOutOfText;
                break;
            };
            parts.frontend.on_fetch(pc, map);
            parts.icache.access(pc, false, map);

            // The instruction the DUT actually executes may differ from the
            // architecturally decoded one when the V2 bug is enabled.
            let executed = match decoded {
                Some(instr) => Some(instr),
                None => {
                    parts.decoder.on_illegal(word, map);
                    if self.bugs.has(Vulnerability::V2IllegalExecuted) {
                        Self::v2_decode(word)
                    } else {
                        None
                    }
                }
            };

            let mut outcome = match executed {
                None => InstrOutcome {
                    writeback: None,
                    mem: None,
                    exception: Some(Exception::IllegalInstruction { word }),
                    next_pc: pc.wrapping_add(4),
                },
                Some(instr) => {
                    if decoded.is_some() {
                        parts.decoder.on_decode(&instr, map);
                    }
                    parts.backend.on_instr(&instr, map);
                    let rs1_val = state.reg(instr.rs1);
                    let rs2_val = state.reg(instr.rs2);

                    let outcome = self.execute_with_bugs(&mut state, mem, parts, instr, pc, map);

                    parts.execute.on_execute(
                        &instr,
                        rs1_val,
                        rs2_val,
                        outcome.writeback.map(|(_, v)| v),
                        map,
                    );
                    self.record_control_flow(parts, instr, pc, &outcome, map);
                    outcome
                }
            };

            // V3: an exception raised by the instruction right after a taken
            // control transfer loses its cause on the way through the
            // instruction queue and is reported as an illegal instruction.
            if self.bugs.has(Vulnerability::V3ExceptionType) && prev_redirected {
                if let Some(e) = outcome.exception {
                    if e != Exception::EcallM && e.cause() != 2 {
                        outcome.exception = Some(Exception::IllegalInstruction { word });
                    }
                }
            }

            let mut next_pc = outcome.next_pc;
            match outcome.exception {
                None => {
                    state.retire();
                    parts.csrfile.on_no_exception(map);
                }
                Some(Exception::EcallM) => {
                    halt = HaltReason::Ecall;
                }
                Some(Exception::Breakpoint) => {
                    // V7: ebreak commits without bumping minstret.
                    if !self.bugs.has(Vulnerability::V7EbreakInstret) {
                        state.retire();
                    }
                    let redirect = state.take_exception(Exception::Breakpoint, pc, text_end);
                    parts.csrfile.on_exception(redirect.is_some(), map);
                    if let Some(vector) = redirect {
                        next_pc = vector;
                    }
                }
                Some(exception) => {
                    let redirect = state.take_exception(exception, pc, text_end);
                    parts.csrfile.on_exception(redirect.is_some(), map);
                    if let Some(vector) = redirect {
                        next_pc = vector;
                    }
                }
            }

            if let Some(instr) = executed {
                parts.extras.on_commit(&instr, seq as usize, pc, map);
            }

            out.trace.push_commit(CommitRecord {
                seq,
                pc,
                instr: decoded,
                word,
                writeback: outcome.writeback,
                mem: outcome.mem,
                exception: outcome.exception,
                next_pc,
                instret: state.instret(),
            });

            if halt == HaltReason::Ecall {
                break;
            }
            prev_redirected = outcome.exception.is_some() || next_pc != pc.wrapping_add(4);
            if prev_redirected {
                parts.backend.on_redirect(map);
            }
            state.pc = next_pc;
        }

        out.trace.finish(state, halt);
    }
}

impl CoreModel {
    /// Executes one legal instruction, applying the enabled pre- and
    /// post-execution bug deviations, and emits LSU/CSR coverage.
    fn execute_with_bugs(
        &self,
        state: &mut ArchState,
        mem: &mut Memory,
        parts: &mut Components,
        instr: Instr,
        pc: u64,
        map: &mut CoverageMap,
    ) -> InstrOutcome {
        // --- V1: fence.i decoded incorrectly (raises an exception it should not).
        if self.bugs.has(Vulnerability::V1FenceiDecode) && instr.op == Op::FenceI {
            return InstrOutcome {
                writeback: None,
                mem: None,
                exception: Some(Exception::IllegalInstruction { word: instr.encode() }),
                next_pc: pc.wrapping_add(4),
            };
        }

        // CSR coverage and the V6 deviation are handled before the
        // architectural executor because the buggy behaviour replaces the
        // exception path entirely.
        if matches!(instr.op.format(), Format::Csr | Format::CsrImm) {
            let csr = instr.csr_addr().expect("csr instruction has an address");
            let writes = match instr.op {
                Op::Csrrw | Op::Csrrwi => true,
                Op::Csrrs | Op::Csrrc => instr.rs1 != Gpr::Zero,
                Op::Csrrsi | Op::Csrrci => instr.csr_zimm().unwrap_or(0) != 0,
                _ => false,
            };
            parts.csrfile.on_access(csr, writes, map);
            if !csr.is_implemented() && self.bugs.has(Vulnerability::V6UnimplCsrJunk) {
                let junk = Self::v6_junk(csr.value());
                state.set_reg(instr.rd, junk);
                return InstrOutcome {
                    writeback: Some((instr.rd, state.reg(instr.rd))),
                    mem: None,
                    exception: None,
                    next_pc: pc.wrapping_add(4),
                };
            }
        }
        if instr.op == Op::Mret {
            parts.csrfile.on_mret(map);
        }

        // Pre-compute memory-access facts so the LSU model can be fed and the
        // V4/V5 deviations applied.
        let mem_addr = instr.op.memory_width().map(|width| {
            let addr = state.reg(instr.rs1).wrapping_add(instr.imm as u64) & PHYS_ADDR_MASK;
            (addr, u64::from(width))
        });
        let store_old_value = match (instr.op.class(), mem_addr) {
            (OpClass::Store, Some((addr, width))) => Some(mem.read_uint(addr, width)),
            _ => None,
        };

        let mut outcome = execute_instr(state, mem, instr, pc);

        // LSU coverage + memory-related bug deviations.
        if let Some((addr, width)) = mem_addr {
            let in_data = mem.can_store(addr, 1);
            match outcome.exception {
                None => {
                    if instr.op.class() == OpClass::Load {
                        let lsu_info = parts.lsu.on_load(addr, width, in_data, map);
                        if self.bugs.has(Vulnerability::V4CacheCoherency) {
                            if let Some(stale_raw) = lsu_info.stale_value {
                                let stale = extend_load(instr.op, stale_raw);
                                state.set_reg(instr.rd, stale);
                                outcome.writeback = Some((instr.rd, state.reg(instr.rd)));
                                outcome.mem = Some(MemAccess {
                                    addr,
                                    width: width as u8,
                                    value: stale_raw,
                                    is_store: false,
                                });
                            }
                        }
                    } else {
                        parts.lsu.on_store(addr, width, store_old_value.unwrap_or(0), map);
                    }
                }
                Some(Exception::LoadAddrMisaligned { .. }) | Some(Exception::StoreAddrMisaligned { .. }) => {
                    parts.lsu.on_misaligned(width, map);
                }
                Some(Exception::LoadAccessFault { .. }) => {
                    parts.lsu.on_access_fault(false, map);
                    // --- V5: the access fault is silently dropped and the load
                    // returns zero.
                    if self.bugs.has(Vulnerability::V5MissingAccessFault) {
                        state.set_reg(instr.rd, 0);
                        outcome = InstrOutcome {
                            writeback: Some((instr.rd, state.reg(instr.rd))),
                            mem: Some(MemAccess { addr, width: width as u8, value: 0, is_store: false }),
                            exception: None,
                            next_pc: pc.wrapping_add(4),
                        };
                    }
                }
                Some(Exception::StoreAccessFault { .. }) => {
                    parts.lsu.on_access_fault(true, map);
                }
                _ => {}
            }
        }

        outcome
    }

    fn record_control_flow(
        &self,
        parts: &mut Components,
        instr: Instr,
        pc: u64,
        outcome: &InstrOutcome,
        map: &mut CoverageMap,
    ) {
        if outcome.exception.is_some() {
            return;
        }
        match instr.op.class() {
            OpClass::Branch => {
                let taken = outcome.next_pc != pc.wrapping_add(4);
                parts.frontend.on_branch(pc, taken, instr.imm, map);
            }
            OpClass::Jump => {
                let is_call = instr.rd == Gpr::Ra;
                let is_ret = instr.op == Op::Jalr && instr.rs1 == Gpr::Ra && instr.rd == Gpr::Zero;
                parts.frontend.on_jump(pc, outcome.next_pc, is_call, is_ret, map);
            }
            _ => {}
        }
    }
}

/// Applies the load's sign/zero extension to a raw memory value (used when the
/// V4 bug substitutes a stale value).
fn extend_load(op: Op, raw: u64) -> u64 {
    match op {
        Op::Lb => raw as i8 as i64 as u64,
        Op::Lh => raw as i16 as i64 as u64,
        Op::Lw => raw as i32 as i64 as u64,
        _ => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_sim::GoldenSim;
    use proptest::prelude::*;
    use riscv::asm::parse_program;

    fn test_config() -> CoreConfig {
        CoreConfig {
            name: "testcore",
            bht_entries: 16,
            btb_entries: 8,
            icache_sets: 8,
            dcache_sets: 8,
            dcache_ways: 1,
            store_buffer: 4,
            decoder_depth_sites: 4,
            fpu_sites: 4,
            commit_index_buckets: 4,
            class_depth_buckets: 4,
            fetch_group_sites: false,
            scoreboard_distance_buckets: 6,
            rob_entries: 0,
            rob_lanes: 0,
        }
    }

    fn program(asm: &str) -> Program {
        Program::from_instrs(parse_program(asm).expect("valid asm"))
    }

    #[test]
    fn bug_free_core_matches_the_golden_model() {
        let core = CoreModel::new(test_config(), BugSet::none());
        let prog = program(
            "lui gp, 0x80010\n\
             addi a0, zero, 21\n\
             add a0, a0, a0\n\
             sd a0, 8(gp)\n\
             ld a1, 8(gp)\n\
             mul a2, a0, a1\n\
             csrrs a3, minstret, zero\n\
             beq a0, a1, 8\n\
             addi a4, zero, 1\n\
             ebreak\n\
             ecall\n",
        );
        let golden = GoldenSim::new().run(&prog, 200);
        let dut = core.run(&prog, 200);
        assert_eq!(dut.trace.commits().len(), golden.commits().len());
        for (d, g) in dut.trace.commits().iter().zip(golden.commits()) {
            assert_eq!(d.writeback, g.writeback, "writeback mismatch at pc {:#x}", g.pc);
            assert_eq!(d.exception, g.exception, "exception mismatch at pc {:#x}", g.pc);
            assert_eq!(d.next_pc, g.next_pc, "next_pc mismatch at pc {:#x}", g.pc);
            assert_eq!(d.instret, g.instret, "instret mismatch at pc {:#x}", g.pc);
        }
        assert_eq!(dut.trace.final_state(), golden.final_state());
        assert!(dut.coverage.count() > 50, "a real program should cover many points");
    }

    #[test]
    fn coverage_is_deterministic() {
        let core = CoreModel::new(test_config(), BugSet::none());
        let prog = program("addi a0, zero, 5\nadd a1, a0, a0\necall\n");
        let a = core.run(&prog, 100);
        let b = core.run(&prog, 100);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.trace.final_state(), b.trace.final_state());
    }

    #[test]
    fn v1_makes_fencei_trap() {
        let buggy = CoreModel::new(test_config(), BugSet::only(Vulnerability::V1FenceiDecode));
        let prog = program("fence.i\naddi a0, zero, 1\necall\n");
        let golden = GoldenSim::new().run(&prog, 100);
        let dut = buggy.run(&prog, 100);
        assert_eq!(golden.commits()[0].exception, None);
        assert!(matches!(dut.trace.commits()[0].exception, Some(Exception::IllegalInstruction { .. })));
    }

    #[test]
    fn v2_executes_an_illegal_op_word() {
        // OP-major word with funct7 = 0x7f (not a valid encoding):
        // rd = a0, rs1 = a1, rs2 = a2, funct3 = 0 → buggy core executes `add`.
        let bad_word: u32 = (0x7f << 25) | (12 << 20) | (11 << 15) | (10 << 7) | 0x33;
        let synthesized = CoreModel::v2_decode(bad_word).expect("v2 path decodes OP-major words");
        assert_eq!(synthesized.op, Op::Add);
        assert_eq!(synthesized.rd, Gpr::A0);
        assert_eq!(CoreModel::v2_decode(0xffff_ffff), None, "non-OP-major words stay illegal");

        // End to end: place the raw word in the program via a raw override.
        let mut prog = program("addi a1, zero, 30\naddi a2, zero, 12\nnop\necall\n");
        prog.set_raw(2, bad_word);
        let golden = GoldenSim::new().run(&prog, 100);
        let buggy = CoreModel::new(test_config(), BugSet::only(Vulnerability::V2IllegalExecuted));
        let dut = buggy.run(&prog, 100);
        assert!(matches!(golden.commits()[2].exception, Some(Exception::IllegalInstruction { .. })));
        assert_eq!(dut.trace.commits()[2].exception, None);
        assert_eq!(dut.trace.commits()[2].writeback, Some((Gpr::A0, 42)));
    }

    #[test]
    fn v5_suppresses_load_access_faults() {
        let buggy = CoreModel::new(test_config(), BugSet::only(Vulnerability::V5MissingAccessFault));
        let prog = program("addi t0, zero, 64\nld a0, 0(t0)\necall\n");
        let golden = GoldenSim::new().run(&prog, 100);
        let dut = buggy.run(&prog, 100);
        assert!(golden.commits()[1].exception.is_some());
        assert_eq!(dut.trace.commits()[1].exception, None);
        assert_eq!(dut.trace.commits()[1].writeback, Some((Gpr::A0, 0)));
    }

    #[test]
    fn v6_returns_junk_for_unimplemented_csrs() {
        let buggy = CoreModel::new(test_config(), BugSet::only(Vulnerability::V6UnimplCsrJunk));
        let prog = program("csrrs a0, 0x5c0, zero\necall\n");
        let golden = GoldenSim::new().run(&prog, 100);
        let dut = buggy.run(&prog, 100);
        assert!(golden.commits()[0].exception.is_some());
        assert_eq!(dut.trace.commits()[0].exception, None);
        let (_, value) = dut.trace.commits()[0].writeback.expect("junk writeback");
        assert_ne!(value, 0);
    }

    #[test]
    fn v7_stops_ebreak_from_retiring() {
        let buggy = CoreModel::new(test_config(), BugSet::only(Vulnerability::V7EbreakInstret));
        let prog = program("ebreak\ncsrrs a0, minstret, zero\necall\n");
        let golden = GoldenSim::new().run(&prog, 100);
        let dut = buggy.run(&prog, 100);
        let golden_count = golden.final_state().reg(Gpr::A0);
        let dut_count = dut.trace.final_state().reg(Gpr::A0);
        assert_eq!(golden_count, 1);
        assert_eq!(dut_count, 0);
    }

    #[test]
    fn v3_reports_the_wrong_cause_after_a_taken_branch() {
        let buggy = CoreModel::new(test_config(), BugSet::only(Vulnerability::V3ExceptionType));
        // beq always taken jumps over a nop to a faulting load.
        let prog = program(
            "addi t0, zero, 64\n\
             beq zero, zero, 8\n\
             addi a1, zero, 1\n\
             ld a0, 0(t0)\n\
             csrrs a2, mcause, zero\n\
             ecall\n",
        );
        let golden = GoldenSim::new().run(&prog, 100);
        let dut = buggy.run(&prog, 100);
        // Golden: cause 5 (load access fault); buggy DUT: cause 2.
        assert_eq!(golden.final_state().reg(Gpr::A2), 5);
        assert_eq!(dut.trace.final_state().reg(Gpr::A2), 2);
    }

    #[test]
    fn v4_returns_stale_data_after_eviction() {
        let buggy = CoreModel::new(test_config(), BugSet::only(Vulnerability::V4CacheCoherency));
        // Store 0xAA to gp+0, thrash the (8-set, 1-way, 64B-line) data cache
        // with a load 512 bytes away (same set), then re-load gp+0.
        let prog = program(
            "lui gp, 0x80010\n\
             addi t0, zero, 170\n\
             sd t0, 0(gp)\n\
             ld t1, 512(gp)\n\
             ld a0, 0(gp)\n\
             ecall\n",
        );
        let golden = GoldenSim::new().run(&prog, 100);
        let dut = buggy.run(&prog, 100);
        assert_eq!(golden.final_state().reg(Gpr::A0), 170);
        assert_eq!(dut.trace.final_state().reg(Gpr::A0), 0, "stale pre-store value returned");
    }

    #[test]
    fn decoded_path_matches_interpreted_for_every_bug_set() {
        // The decode cache must be invisible to every injected vulnerability:
        // same trace, same coverage, for legal programs, raw illegal words
        // (exercising the cached decode-fault slot) and empty text.
        let mut with_raw = program("addi a1, zero, 30\naddi a2, zero, 12\nnop\necall\n");
        with_raw.set_raw(2, (0x7f << 25) | (12 << 20) | (11 << 15) | (10 << 7) | 0x33);
        let mut garbage = program("addi a0, zero, 1\nnop\necall\n");
        garbage.set_raw(1, 0xffff_ffff);
        let programs = [
            Program::new(),
            program("lui gp, 0x80010\nsd a0, 0(gp)\nld a1, 0(gp)\nebreak\necall\n"),
            with_raw,
            garbage,
            program("fence.i\ncsrrs a0, 0x5c0, zero\necall\n"),
        ];
        let mut bug_sets = vec![BugSet::none(), BugSet::all()];
        bug_sets.extend(Vulnerability::ALL.iter().map(|v| BugSet::only(*v)));
        for bugs in bug_sets {
            let core = CoreModel::new(test_config(), bugs.clone());
            let mut scratch = SimScratch::new();
            let mut interpreted = DutResult::default();
            let mut cached = DutResult::default();
            for prog in &programs {
                let decoded = DecodedProgram::from_program(prog);
                core.run_into(prog, 100, &mut scratch, &mut interpreted);
                core.run_decoded_into(prog, &decoded, 100, &mut scratch, &mut cached);
                assert_eq!(cached.trace, interpreted.trace, "trace diverged under {bugs:?}");
                assert_eq!(cached.coverage, interpreted.coverage, "coverage diverged under {bugs:?}");
            }
        }
    }

    #[test]
    fn snapshot_restore_matches_full_reinit_for_every_bug_set() {
        // The dirty-restore path must be invisible to every injected
        // vulnerability: same trace, same coverage, with a scratch recycled
        // across programs that leave memory, predictors, caches, the store
        // buffer and trap CSRs dirty in different ways.
        let mut with_raw = program("addi a1, zero, 30\naddi a2, zero, 12\nnop\necall\n");
        with_raw.set_raw(2, (0x7f << 25) | (12 << 20) | (11 << 15) | (10 << 7) | 0x33);
        let mut garbage = program("addi a0, zero, 1\nnop\necall\n");
        garbage.set_raw(1, 0xffff_ffff);
        let programs = [
            Program::new(),
            program("lui gp, 0x80010\nsd a0, 0(gp)\nld a1, 0(gp)\nebreak\necall\n"),
            with_raw,
            garbage,
            program("fence.i\ncsrrs a0, 0x5c0, zero\necall\n"),
            // Branch + call/ret traffic dirties the BHT, BTB and RAS.
            program(
                "addi t0, zero, 3\n\
                 addi t0, t0, -1\n\
                 bne t0, zero, -4\n\
                 jal ra, 8\n\
                 ecall\n\
                 jalr zero, 0(ra)\n",
            ),
        ];
        let mut bug_sets = vec![BugSet::none(), BugSet::all()];
        bug_sets.extend(Vulnerability::ALL.iter().map(|v| BugSet::only(*v)));
        for bugs in bug_sets {
            let core = CoreModel::new(test_config(), bugs.clone());
            let mut restored_scratch = SimScratch::new();
            assert!(restored_scratch.reset_policy().is_snapshot(), "snapshot reset is the default");
            let mut reinit_scratch = SimScratch::with_policy(ResetPolicy::FullReinit);
            let mut restored = DutResult::default();
            let mut reinit = DutResult::default();
            for pass in 0..2 {
                for prog in &programs {
                    core.run_into(prog, 100, &mut restored_scratch, &mut restored);
                    core.run_into(prog, 100, &mut reinit_scratch, &mut reinit);
                    assert_eq!(restored.trace, reinit.trace, "pass {pass}: trace diverged under {bugs:?}");
                    assert_eq!(restored.coverage, reinit.coverage, "pass {pass}: coverage diverged under {bugs:?}");
                    let decoded = DecodedProgram::from_program(prog);
                    core.run_decoded_into(prog, &decoded, 100, &mut restored_scratch, &mut restored);
                    core.run_decoded_into(prog, &decoded, 100, &mut reinit_scratch, &mut reinit);
                    assert_eq!(restored.trace, reinit.trace, "pass {pass}: decoded trace diverged under {bugs:?}");
                    assert_eq!(restored.coverage, reinit.coverage, "pass {pass}: decoded coverage diverged under {bugs:?}");
                }
            }
        }
    }

    proptest! {
        /// Random program/store/trap sequences: a long-lived snapshot-reset
        /// scratch must stay byte-identical to a freshly initialised
        /// simulator, with every bug layer enabled.
        #[test]
        fn restored_scratch_matches_a_fresh_simulator_on_random_programs(
            words in proptest::collection::vec(any::<u32>(), 1..10),
            offset in 0u64..256,
        ) {
            // A store/load preamble guarantees real memory dirt; the random
            // words supply illegal-instruction traps, stray branches and the
            // occasional legal store/CSR access.
            let mut instrs = parse_program(
                "lui gp, 0x80010\n\
                 addi a0, zero, 77\n\
                 sd a0, 0(gp)\n\
                 ld a1, 8(gp)\n",
            ).unwrap();
            let prefix = instrs.len();
            for _ in &words {
                instrs.push(riscv::Instr::nop());
            }
            let mut prog = Program::from_instrs(instrs);
            for (i, word) in words.iter().enumerate() {
                prog.set_raw(prefix + i, *word ^ (offset as u32));
            }

            for bugs in [BugSet::none(), BugSet::all()] {
                let core = CoreModel::new(test_config(), bugs.clone());
                let mut scratch = SimScratch::new();
                let mut out = DutResult::default();
                // Dirty the scratch with one run, then re-run: the second,
                // restored run must equal a from-scratch simulation.
                core.run_into(&prog, 80, &mut scratch, &mut out);
                core.run_into(&prog, 80, &mut scratch, &mut out);
                let fresh = core.run(&prog, 80);
                prop_assert_eq!(&out.trace, &fresh.trace, "trace diverged under {:?}", &bugs);
                prop_assert_eq!(&out.coverage, &fresh.coverage, "coverage diverged under {:?}", &bugs);
            }
        }
    }

    #[test]
    fn v2_layers_on_top_of_the_cached_decode_fault() {
        // The cached slot records only the *architectural* decode failure;
        // the V2 buggy decoder must still synthesize and execute the word on
        // the decoded path exactly as it does live.
        let bad_word: u32 = (0x7f << 25) | (12 << 20) | (11 << 15) | (10 << 7) | 0x33;
        let mut prog = program("addi a1, zero, 30\naddi a2, zero, 12\nnop\necall\n");
        prog.set_raw(2, bad_word);
        let decoded = DecodedProgram::from_program(&prog);
        assert_eq!(decoded.fetch(TEXT_BASE + 8).unwrap().instr, None, "arch decode fault cached");

        let buggy = CoreModel::new(test_config(), BugSet::only(Vulnerability::V2IllegalExecuted));
        let mut scratch = SimScratch::new();
        let mut out = DutResult::default();
        buggy.run_decoded_into(&prog, &decoded, 100, &mut scratch, &mut out);
        assert_eq!(out.trace.commits()[2].exception, None, "V2 executed the illegal word");
        assert_eq!(out.trace.commits()[2].writeback, Some((Gpr::A0, 42)));
    }

    #[test]
    fn stores_to_text_fault_even_with_every_bug_enabled() {
        // Decode-cache soundness: no bug deviation lets a store land in the
        // text region, so a pre-decoded image can never go stale mid-run.
        let everything = CoreModel::new(test_config(), BugSet::all());
        let prog = program(
            "lui t0, 0x80000\n\
             addi t1, zero, 1\n\
             sw t1, 0(t0)\n\
             lw a0, 0(t0)\n\
             ecall\n",
        );
        let decoded = DecodedProgram::from_program(&prog);
        let mut scratch = SimScratch::new();
        let mut out = DutResult::default();
        everything.run_decoded_into(&prog, &decoded, 100, &mut scratch, &mut out);
        assert!(
            matches!(out.trace.commits()[2].exception, Some(Exception::StoreAccessFault { .. })),
            "store into text must fault, got {:?}",
            out.trace.commits()[2].exception
        );
        // The text word is unmodified: the load still reads the lui encoding.
        assert_eq!(out.trace.commits()[3].writeback, Some((Gpr::A0, 0xffff_ffff_8000_02b7)));
    }

    #[test]
    fn different_programs_reach_different_coverage() {
        let core = CoreModel::new(test_config(), BugSet::none());
        let arith = core.run(&program("addi a0, zero, 1\nadd a1, a0, a0\necall\n"), 100);
        let memory = core.run(
            &program("lui gp, 0x80010\nsd zero, 0(gp)\nld a0, 0(gp)\necall\n"),
            100,
        );
        assert_ne!(arith.coverage, memory.coverage);
    }
}
