//! Thompson sampling with a Gaussian posterior per arm.

use serde::{Deserialize, Serialize};

use crate::{Bandit, BanditKind};

/// Thompson sampling with the reset-arms modification.
///
/// Each arm keeps the empirical mean of its rewards; selection draws one
/// sample per arm from `Normal(mean, 1/sqrt(N(a) + 1))` — uncertainty
/// shrinks as an arm accumulates pulls — and pulls the argmax. This is the
/// Bayesian sampler in the spirit of the Thompson-sampling grey-box fuzzing
/// line of work (arXiv:1808.08256), promoted from
/// `examples/custom_policy.rs` to a built-in. [`reset_arm`](Bandit::reset_arm)
/// restores the wide prior, which is exactly the paper's reset-arm
/// modification: a fresh seed starts with fresh beliefs.
///
/// The standard-normal draws come from a Box–Muller transform over the
/// uniform `f64`s the vendored `rand` shim provides; each [`select`]
/// consumes exactly two uniforms per arm, so the draw sequence is a pure
/// function of the RNG state and the arm count (the same determinism
/// argument the campaign layer makes for the other built-ins).
///
/// [`select`]: Bandit::select
///
/// # Example
///
/// ```
/// use mab::{Bandit, Thompson};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut bandit = Thompson::new(3);
/// for _ in 0..200 {
///     let arm = bandit.select(&mut rng);
///     bandit.update(arm, if arm == 1 { 1.0 } else { 0.0 });
/// }
/// assert!(bandit.value(1) > bandit.value(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thompson {
    means: Vec<f64>,
    counts: Vec<u64>,
}

impl Thompson {
    /// Creates a Thompson-sampling policy over `arms` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is zero.
    pub fn new(arms: usize) -> Thompson {
        assert!(arms > 0, "a bandit needs at least one arm");
        Thompson { means: vec![0.0; arms], counts: vec![0; arms] }
    }

    /// Returns the posterior standard deviation currently assigned to `arm`
    /// (`1/sqrt(N(a) + 1)` — widest for never-pulled and freshly reset arms).
    pub fn sigma(&self, arm: usize) -> f64 {
        1.0 / ((self.counts[arm] as f64) + 1.0).sqrt()
    }

    /// One standard-normal draw via Box–Muller (the vendored `rand` shim
    /// provides uniform `f64`s only).
    fn standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
        use rand::Rng as _;
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Bandit for Thompson {
    fn kind(&self) -> BanditKind {
        BanditKind::Thompson
    }

    fn arms(&self) -> usize {
        self.means.len()
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        let mut best = 0usize;
        let mut best_sample = f64::NEG_INFINITY;
        for arm in 0..self.means.len() {
            let sample = self.means[arm] + self.sigma(arm) * Self::standard_normal(rng);
            if sample > best_sample {
                best_sample = sample;
                best = arm;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.means.len(), "arm {arm} out of range");
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }

    fn reset_arm(&mut self, arm: usize) {
        assert!(arm < self.means.len(), "arm {arm} out of range");
        self.means[arm] = 0.0;
        self.counts[arm] = 0;
    }

    fn value(&self, arm: usize) -> f64 {
        self.means[arm]
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.counts[arm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exploits_the_best_arm_in_the_long_run() {
        let mut bandit = Thompson::new(4);
        let mut rng = StdRng::seed_from_u64(5);
        let means = [0.2, 0.8, 0.3, 0.1];
        let mut best_pulls = 0;
        for _ in 0..3000 {
            let arm = bandit.select(&mut rng);
            if arm == 1 {
                best_pulls += 1;
            }
            let reward = if rng.gen_bool(means[arm]) { 1.0 } else { 0.0 };
            bandit.update(arm, reward);
        }
        assert!(best_pulls > 1500, "best arm pulled only {best_pulls}/3000 times");
    }

    #[test]
    fn reset_arm_restores_the_wide_prior() {
        let mut bandit = Thompson::new(3);
        for _ in 0..50 {
            bandit.update(2, 0.9);
        }
        let tight = bandit.sigma(2);
        assert!(tight < 0.2, "50 pulls should tighten the posterior ({tight})");
        bandit.reset_arm(2);
        assert_eq!(bandit.pulls(2), 0);
        assert_eq!(bandit.value(2), 0.0);
        assert_eq!(bandit.sigma(2), 1.0, "a reset arm is back to the prior width");
    }

    #[test]
    fn selection_is_deterministic_for_a_fixed_rng_stream() {
        let run = || {
            let mut bandit = Thompson::new(5);
            let mut rng = StdRng::seed_from_u64(42);
            (0..100)
                .map(|i| {
                    let arm = bandit.select(&mut rng);
                    bandit.update(arm, (i % 3) as f64 / 2.0);
                    arm
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_panics() {
        let _ = Thompson::new(0);
    }

    proptest! {
        /// Selection is always a valid index, and values track sample means.
        #[test]
        fn selection_in_range_and_values_are_means(
            rewards in proptest::collection::vec(0.0f64..1.0, 1..64),
            arms in 1usize..8,
        ) {
            let mut bandit = Thompson::new(arms);
            let mut rng = StdRng::seed_from_u64(11);
            let mut totals = vec![(0.0f64, 0u64); arms];
            for reward in &rewards {
                let arm = bandit.select(&mut rng);
                prop_assert!(arm < arms);
                bandit.update(arm, *reward);
                totals[arm].0 += reward;
                totals[arm].1 += 1;
            }
            for (arm, (total, pulls)) in totals.iter().enumerate() {
                if *pulls > 0 {
                    let mean = total / *pulls as f64;
                    prop_assert!((bandit.value(arm) - mean).abs() < 1e-9);
                    prop_assert_eq!(bandit.pulls(arm), *pulls);
                }
            }
        }

        /// The posterior width is monotone non-increasing in pulls and never
        /// reaches zero, so a Thompson arm always keeps some exploration.
        #[test]
        fn sigma_shrinks_monotonically_but_stays_positive(pulls in 0u64..200) {
            let mut bandit = Thompson::new(1);
            let mut last = bandit.sigma(0);
            prop_assert_eq!(last, 1.0);
            for _ in 0..pulls {
                bandit.update(0, 0.5);
                let sigma = bandit.sigma(0);
                prop_assert!(sigma > 0.0);
                prop_assert!(sigma < last);
                last = sigma;
            }
        }
    }
}
