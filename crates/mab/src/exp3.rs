//! Modified EXP3 (Algorithm 2 of the paper).

use serde::{Deserialize, Serialize};

use crate::{sample_discrete, Bandit, BanditKind};

/// EXP3 with the reset-arms modification.
///
/// Selection probabilities mix the normalised exponential weights with a
/// uniform exploration term:
/// `P(a) = (1 − η) · W(a) / Σ W + η / K`.
/// After observing reward `R` for the pulled arm the weight is updated with
/// the importance-weighted estimate `W(a) ← W(a) · exp(η · (R / P(a)) / K)`.
///
/// The paper's modifications:
/// * rewards are expected to be normalised into `[0, 1]` by the caller
///   (MABFuzz divides the raw coverage reward by the total number of coverage
///   points, line 6 of Algorithm 2);
/// * **resetting** an arm sets its weight to the *average weight of the other
///   arms* (line 10), so a fresh seed starts from a neutral position instead
///   of inheriting its predecessor's reputation.
///
/// Weights are renormalised when they grow large so long campaigns cannot
/// overflow.
///
/// # Example
///
/// ```
/// use mab::{Bandit, Exp3};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut bandit = Exp3::new(3, 0.1);
/// for _ in 0..300 {
///     let arm = bandit.select(&mut rng);
///     bandit.update(arm, if arm == 0 { 0.8 } else { 0.05 });
/// }
/// assert!(bandit.value(0) > bandit.value(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exp3 {
    eta: f64,
    weights: Vec<f64>,
    counts: Vec<u64>,
    last_probabilities: Vec<f64>,
}

impl Exp3 {
    /// Creates an EXP3 policy over `arms` arms with learning rate `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is zero or `eta` is outside `(0, 1]`.
    pub fn new(arms: usize, eta: f64) -> Exp3 {
        assert!(arms > 0, "a bandit needs at least one arm");
        assert!(eta > 0.0 && eta <= 1.0, "the learning rate must lie in (0, 1]");
        Exp3 {
            eta,
            weights: vec![1.0; arms],
            counts: vec![0; arms],
            last_probabilities: vec![1.0 / arms as f64; arms],
        }
    }

    /// Returns the learning rate η.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Returns the current selection probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        let k = self.weights.len() as f64;
        self.weights
            .iter()
            .map(|w| (1.0 - self.eta) * (w / total) + self.eta / k)
            .collect()
    }

    fn renormalise_if_needed(&mut self) {
        let max = self.weights.iter().cloned().fold(f64::MIN, f64::max);
        if max > 1e100 {
            for w in &mut self.weights {
                *w /= max;
                if *w < 1e-300 {
                    *w = 1e-300;
                }
            }
        }
    }
}

impl Bandit for Exp3 {
    fn kind(&self) -> BanditKind {
        BanditKind::Exp3
    }

    fn arms(&self) -> usize {
        self.weights.len()
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        let probabilities = self.probabilities();
        self.last_probabilities = probabilities.clone();
        sample_discrete(&probabilities, rng)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.weights.len(), "arm {arm} out of range");
        self.counts[arm] += 1;
        let reward = reward.clamp(0.0, 1.0);
        let probability = self.last_probabilities[arm].max(1e-12);
        let estimate = reward / probability;
        let k = self.weights.len() as f64;
        self.weights[arm] *= (self.eta * estimate / k).exp();
        self.renormalise_if_needed();
    }

    fn reset_arm(&mut self, arm: usize) {
        assert!(arm < self.weights.len(), "arm {arm} out of range");
        let others: f64 = self
            .weights
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != arm)
            .map(|(_, w)| *w)
            .sum();
        let count = (self.weights.len() - 1).max(1) as f64;
        self.weights[arm] = others / count;
        self.counts[arm] = 0;
    }

    fn value(&self, arm: usize) -> f64 {
        self.probabilities()[arm]
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.counts[arm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_form_a_distribution() {
        let bandit = Exp3::new(5, 0.1);
        let probabilities = bandit.probabilities();
        let sum: f64 = probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for p in probabilities {
            assert!(p > 0.0);
        }
    }

    #[test]
    fn rewarded_arm_gains_probability() {
        let mut bandit = Exp3::new(4, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let arm = bandit.select(&mut rng);
            bandit.update(arm, if arm == 3 { 1.0 } else { 0.0 });
        }
        let probabilities = bandit.probabilities();
        assert!(probabilities[3] > probabilities[0]);
        assert!(probabilities[3] > 0.5);
    }

    #[test]
    fn exploration_floor_is_maintained() {
        let mut bandit = Exp3::new(4, 0.2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let arm = bandit.select(&mut rng);
            bandit.update(arm, if arm == 0 { 1.0 } else { 0.0 });
        }
        let probabilities = bandit.probabilities();
        for p in probabilities {
            assert!(p >= 0.2 / 4.0 - 1e-9, "every arm keeps at least eta/K probability");
        }
    }

    #[test]
    fn reset_sets_the_weight_to_the_mean_of_the_others() {
        let mut bandit = Exp3::new(3, 0.1);
        bandit.weights = vec![9.0, 3.0, 6.0];
        bandit.counts = vec![4, 2, 1];
        bandit.reset_arm(0);
        assert!((bandit.weights[0] - 4.5).abs() < 1e-12);
        assert_eq!(bandit.pulls(0), 0);
        assert_eq!(bandit.pulls(1), 2);
    }

    #[test]
    fn rewards_outside_the_unit_interval_are_clamped() {
        let mut bandit = Exp3::new(2, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let arm = bandit.select(&mut rng);
        bandit.update(arm, 50.0);
        assert!(bandit.weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn long_campaigns_do_not_overflow() {
        let mut bandit = Exp3::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20_000 {
            let arm = bandit.select(&mut rng);
            bandit.update(arm, 1.0);
        }
        assert!(bandit.weights.iter().all(|w| w.is_finite() && *w > 0.0));
        let sum: f64 = bandit.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_eta_panics() {
        let _ = Exp3::new(3, 0.0);
    }

    proptest! {
        /// Probabilities always sum to one and stay within the exploration
        /// floor regardless of the reward sequence.
        #[test]
        fn distribution_invariants(
            rewards in proptest::collection::vec(0.0f64..1.0, 0..128),
            arms in 2usize..8,
            eta in 0.01f64..1.0,
        ) {
            let mut bandit = Exp3::new(arms, eta);
            let mut rng = StdRng::seed_from_u64(99);
            for reward in rewards {
                let arm = bandit.select(&mut rng);
                bandit.update(arm, reward);
            }
            let probabilities = bandit.probabilities();
            let sum: f64 = probabilities.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            for p in probabilities {
                prop_assert!(p >= eta / arms as f64 - 1e-9);
                prop_assert!(p <= 1.0 + 1e-9);
            }
        }

        /// Resetting any arm preserves the others' pull counts and keeps the
        /// weight vector positive and finite.
        #[test]
        fn reset_preserves_other_arms(arms in 2usize..8, resets in proptest::collection::vec(0usize..8, 1..16)) {
            let mut bandit = Exp3::new(arms, 0.3);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..32 {
                let arm = bandit.select(&mut rng);
                bandit.update(arm, 0.5);
            }
            for reset in resets {
                let arm = reset % arms;
                let other_counts: Vec<u64> =
                    (0..arms).filter(|a| *a != arm).map(|a| bandit.pulls(a)).collect();
                bandit.reset_arm(arm);
                prop_assert_eq!(bandit.pulls(arm), 0);
                let after: Vec<u64> =
                    (0..arms).filter(|a| *a != arm).map(|a| bandit.pulls(a)).collect();
                prop_assert_eq!(other_counts, after);
                prop_assert!(bandit.weights.iter().all(|w| w.is_finite() && *w > 0.0));
            }
        }
    }
}
