//! Multi-armed bandit algorithms with the MABFuzz *reset-arm* modification.
//!
//! The MABFuzz paper maps seed selection in a hardware fuzzer onto a
//! multi-armed bandit problem: each arm is a seed (and its mutation-derived
//! test pool), pulling an arm simulates one of its tests, and the reward is
//! the weighted number of new coverage points the test reached. Because the
//! coverage return of any one seed *diminishes over time*, the paper modifies
//! the classic algorithms so that a saturated arm can be **reset** — replaced
//! by a fresh seed — with its learner statistics re-initialised
//! (Algorithms 1 and 2 of the paper):
//!
//! * ε-greedy and UCB1 reset the pull count `N(a)` and the value estimate
//!   `Q(a)` to zero;
//! * EXP3 sets the arm's weight to the average weight of the other arms and
//!   normalises rewards by the total number of coverage points.
//!
//! The crate is independent of fuzzing — rewards are plain `f64` — so the
//! algorithms can be tested against synthetic bandit instances and reused in
//! other schedulers. The fuzzing-specific pieces (reward shaping, saturation
//! monitoring) live in the `mabfuzz` crate.
//!
//! # Example
//!
//! ```
//! use mab::{Bandit, BanditKind, EpsilonGreedy};
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut bandit = EpsilonGreedy::new(4, 0.1);
//! for _ in 0..100 {
//!     let arm = bandit.select(&mut rng);
//!     // Arm 2 pays off; the others do not.
//!     let reward = if arm == 2 { 1.0 } else { 0.0 };
//!     bandit.update(arm, reward);
//! }
//! assert_eq!(bandit.kind(), BanditKind::EpsilonGreedy);
//! assert!(bandit.value(2) > bandit.value(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epsilon_greedy;
pub mod exp3;
pub mod registry;
pub mod thompson;
pub mod ucb;

pub use epsilon_greedy::EpsilonGreedy;
pub use exp3::Exp3;
pub use registry::{
    lookup_policy, register_policy, registered_policies, PolicyFactory, PolicyParams,
    RegistryError, BASELINE_SCHEDULER_NAMES,
};
pub use thompson::Thompson;
pub use ucb::Ucb1;

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifies which bandit algorithm a policy implements.
///
/// Beyond the three algorithms evaluated in the paper,
/// [`Custom`](BanditKind::Custom) identifies a policy registered at runtime through
/// [`register_policy`] — parsing, building and display all route through the
/// registry, so a custom policy behaves exactly like a built-in everywhere a
/// `BanditKind` is accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BanditKind {
    /// ε-greedy: exploit the best-known arm with probability `1 − ε`.
    EpsilonGreedy,
    /// UCB1: optimism in the face of uncertainty.
    Ucb1,
    /// EXP3: exponential weights for adversarial (non-stationary) rewards.
    Exp3,
    /// Thompson sampling: Gaussian-posterior Bayesian sampling (a built-in
    /// beyond the paper's three; not part of [`ALL`](BanditKind::ALL), so
    /// the paper-replication sweeps are unchanged).
    Thompson,
    /// A policy registered at runtime under this name (see
    /// [`register_policy`]). The name is interned by the registry for the
    /// lifetime of the process.
    Custom(&'static str),
}

/// The error [`BanditKind::parse`] returns for an unknown policy name.
///
/// Its `Display` form lists every valid policy — built-ins first, then the
/// registered custom policies — so a typo'd `--algorithm` flag tells the
/// user what would have been accepted instead of silently defaulting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The name that failed to parse.
    pub name: String,
    /// Every acceptable policy name at the time of the call.
    pub valid: Vec<&'static str>,
}

impl fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown bandit policy `{}` (valid policies: {})", self.name, self.valid.join(", "))
    }
}

impl std::error::Error for UnknownPolicy {}

impl BanditKind {
    /// All algorithm kinds evaluated in the paper. [`Thompson`] is a
    /// built-in but deliberately *not* listed here: the replication sweeps
    /// (Table 1, Figures 3/4, the golden smoke report) iterate `ALL` and
    /// must keep producing byte-identical artefacts.
    pub const ALL: [BanditKind; 3] = [BanditKind::EpsilonGreedy, BanditKind::Ucb1, BanditKind::Exp3];

    /// Every built-in kind: the paper's three plus [`Thompson`]. This is
    /// what name parsing, the registry's reserved-name check and the
    /// "valid policies" error listing cover.
    pub const BUILTINS: [BanditKind; 4] = [
        BanditKind::EpsilonGreedy,
        BanditKind::Ucb1,
        BanditKind::Exp3,
        BanditKind::Thompson,
    ];

    /// Returns the display name used in the paper's tables and figures (for
    /// custom policies, the name they were registered under).
    pub fn name(self) -> &'static str {
        match self {
            BanditKind::EpsilonGreedy => "epsilon-greedy",
            BanditKind::Ucb1 => "UCB",
            BanditKind::Exp3 => "EXP3",
            BanditKind::Thompson => "thompson",
            BanditKind::Custom(name) => name,
        }
    }

    /// Parses a built-in algorithm name. `text` must already be lower-case;
    /// shared by [`parse`](BanditKind::parse) and the registry's
    /// reserved-name check.
    pub(crate) fn parse_builtin(text: &str) -> Option<BanditKind> {
        match text {
            "epsilon-greedy" | "epsilon_greedy" | "eps-greedy" | "egreedy" | "e-greedy" => {
                Some(BanditKind::EpsilonGreedy)
            }
            "ucb" | "ucb1" => Some(BanditKind::Ucb1),
            "exp3" => Some(BanditKind::Exp3),
            "thompson" | "thompson-sampling" | "ts" => Some(BanditKind::Thompson),
            _ => None,
        }
    }

    /// Parses an algorithm name, case-insensitively: the built-in spellings
    /// (several common aliases accepted) plus every policy registered through
    /// [`register_policy`].
    ///
    /// # Errors
    ///
    /// Returns [`UnknownPolicy`] — whose `Display` lists all valid names —
    /// when the name matches neither a built-in nor a registered policy.
    pub fn parse(text: &str) -> Result<BanditKind, UnknownPolicy> {
        let key = text.trim().to_ascii_lowercase();
        if let Some(kind) = BanditKind::parse_builtin(&key) {
            return Ok(kind);
        }
        if let Some(kind) = lookup_policy(&key) {
            return Ok(kind);
        }
        let mut valid: Vec<&'static str> = BanditKind::BUILTINS.iter().map(|k| k.name()).collect();
        valid.extend(registered_policies());
        Err(UnknownPolicy { name: text.trim().to_owned(), valid })
    }

    /// Builds the corresponding policy with the paper's default parameters
    /// (ε = 0.1, EXP3 learning rate η = 0.1).
    ///
    /// # Panics
    ///
    /// Panics for a hand-constructed [`Custom`](BanditKind::Custom) kind
    /// whose name was never registered. Custom kinds obtained from
    /// [`register_policy`] or [`parse`](BanditKind::parse) always build;
    /// the campaign-spec layer additionally validates registration and
    /// returns an error instead of panicking.
    pub fn build(self, arms: usize) -> Box<dyn Bandit> {
        self.build_with(&PolicyParams::defaults(self, arms))
    }

    /// Builds the corresponding policy with explicit parameters. Custom
    /// kinds route through the factory registered under their name.
    ///
    /// # Panics
    ///
    /// See [`build`](BanditKind::build).
    pub fn build_with(self, params: &PolicyParams) -> Box<dyn Bandit> {
        match self {
            BanditKind::EpsilonGreedy => Box::new(EpsilonGreedy::new(params.arms, params.epsilon)),
            BanditKind::Ucb1 => Box::new(Ucb1::new(params.arms)),
            BanditKind::Exp3 => Box::new(Exp3::new(params.arms, params.eta)),
            BanditKind::Thompson => Box::new(Thompson::new(params.arms)),
            BanditKind::Custom(name) => {
                let params = PolicyParams { kind: self, ..*params };
                registry::build_registered(name, &params)
                    .unwrap_or_else(|| panic!("custom policy `{name}` is not registered"))
            }
        }
    }
}

impl std::fmt::Display for BanditKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A multi-armed bandit policy with the reset-arm extension.
///
/// Rewards are expected to be non-negative; EXP3 additionally expects them to
/// be normalised into `[0, 1]` by the caller (the `mabfuzz` crate divides by
/// the total number of coverage points, as the paper prescribes).
pub trait Bandit: Send {
    /// Returns which algorithm this policy implements.
    fn kind(&self) -> BanditKind;

    /// Returns the number of arms.
    fn arms(&self) -> usize;

    /// Selects the arm to pull next.
    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize;

    /// Reports the reward observed for pulling `arm`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `arm` is out of range.
    fn update(&mut self, arm: usize, reward: f64);

    /// Reports the rewards of a whole batch of pulls of `arm`, folding them
    /// **in slice order** — the bandit-side half of the sharded campaign's
    /// ordered reduction (see the determinism contract in `fuzzer::shard`).
    ///
    /// The default implementation is exactly a sequence of
    /// [`update`](Bandit::update) calls, so a policy observes the same
    /// statistics whether its rewards arrive one by one (serial campaign)
    /// or per round (sharded campaign). Implementations overriding this for
    /// speed must preserve that equivalence.
    ///
    /// # Panics
    ///
    /// Implementations panic if `arm` is out of range.
    fn update_batch(&mut self, arm: usize, rewards: &[f64]) {
        for &reward in rewards {
            self.update(arm, reward);
        }
    }

    /// Re-initialises the learner statistics of `arm` after the arm has been
    /// replaced with a fresh seed (the paper's reset-arms feature).
    fn reset_arm(&mut self, arm: usize);

    /// Returns the policy's current value estimate (or normalised weight) for
    /// `arm`; used for introspection, reporting and tests.
    fn value(&self, arm: usize) -> f64;

    /// Returns the number of times `arm` has been pulled since it was last
    /// reset.
    fn pulls(&self, arm: usize) -> u64;
}

/// Draws an arm index from a discrete probability distribution.
///
/// Shared by the policy implementations and public so schedulers built on
/// custom [`Bandit`]s can reuse it. The probabilities should sum to
/// (approximately) one, but the sampler is hardened against adversarial
/// vectors: the returned index is always `< probabilities.len()`, zero
/// entries are skipped by the scan (only the final index can absorb the
/// residual ticket mass of a vector summing below one), and denormal or
/// otherwise tiny entries simply behave as (near-)zeros.
///
/// # Panics
///
/// Panics if `probabilities` is empty.
pub fn sample_discrete<R: Rng + ?Sized>(probabilities: &[f64], rng: &mut R) -> usize {
    assert!(!probabilities.is_empty(), "cannot sample from an empty distribution");
    let mut ticket: f64 = rng.gen();
    for (index, p) in probabilities.iter().enumerate() {
        if ticket < *p {
            return index;
        }
        ticket -= p;
    }
    probabilities.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kind_parse_round_trip() {
        for kind in BanditKind::BUILTINS {
            assert_eq!(BanditKind::parse(kind.name()), Ok(kind));
        }
        assert_eq!(BanditKind::parse("ucb1"), Ok(BanditKind::Ucb1));
        assert_eq!(BanditKind::parse("UCB1"), Ok(BanditKind::Ucb1), "parsing is case-insensitive");
        assert_eq!(BanditKind::parse("Thompson-Sampling"), Ok(BanditKind::Thompson));
        assert_eq!(BanditKind::parse("ts"), Ok(BanditKind::Thompson));
    }

    #[test]
    fn the_paper_sweep_list_excludes_the_extra_builtin() {
        // Table 1 / Figures 3–4 and the golden smoke report iterate `ALL`;
        // adding Thompson there would silently change every pinned artefact.
        assert!(!BanditKind::ALL.contains(&BanditKind::Thompson));
        assert!(BanditKind::BUILTINS.contains(&BanditKind::Thompson));
        assert!(BanditKind::ALL.iter().all(|kind| BanditKind::BUILTINS.contains(kind)));
    }

    #[test]
    fn unknown_policies_fail_loudly_with_the_valid_names() {
        let error = BanditKind::parse("not-a-policy").expect_err("unknown name");
        assert_eq!(error.name, "not-a-policy");
        let message = error.to_string();
        assert!(message.contains("not-a-policy"));
        for kind in BanditKind::ALL {
            assert!(message.contains(kind.name()), "{message} should list {}", kind.name());
        }
    }

    #[test]
    fn registered_policies_parse_like_built_ins() {
        let kind = register_policy("lib-test-uniform", |params: &PolicyParams| {
            Box::new(EpsilonGreedy::new(params.arms, 1.0))
        })
        .expect("fresh name");
        assert_eq!(BanditKind::parse("LIB-test-Uniform"), Ok(kind));
        assert_eq!(kind.to_string(), "lib-test-uniform");
        let error = BanditKind::parse("lib-test-missing").expect_err("unknown");
        assert!(error.to_string().contains("lib-test-uniform"), "registered names are listed");
    }

    #[test]
    fn build_constructs_every_kind() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in BanditKind::BUILTINS {
            let mut bandit = kind.build(5);
            assert_eq!(bandit.kind(), kind);
            assert_eq!(bandit.arms(), 5);
            let arm = bandit.select(&mut rng);
            assert!(arm < 5);
            bandit.update(arm, 0.5);
            bandit.reset_arm(arm);
            assert_eq!(bandit.pulls(arm), 0);
        }
    }

    #[test]
    fn sample_discrete_respects_the_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        let probabilities = [0.0, 0.9, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[sample_discrete(&probabilities, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 800);
        assert!(counts[2] > 30);
    }
}
