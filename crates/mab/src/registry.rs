//! Name → factory registry for user-defined bandit policies.
//!
//! The MABFuzz paper's third contribution is that the fuzzing loop is
//! *agnostic* to the MAB algorithm. The built-in [`BanditKind`] variants
//! cover the three algorithms the paper evaluates; this registry opens the
//! same seam to policies defined *outside* the workspace: register a factory
//! under a name once (at program start, from a test, from an example) and
//! everything that resolves policies by name — `BanditKind::parse`, the
//! campaign-spec layer, the experiments CLI, report labels — picks it up
//! without any edit to the core crates.
//!
//! # Example
//!
//! ```
//! use mab::{register_policy, Bandit, BanditKind, PolicyParams};
//!
//! struct Greedy { kind: BanditKind, values: Vec<f64>, pulls: Vec<u64> }
//! impl Bandit for Greedy {
//!     fn kind(&self) -> BanditKind { self.kind }
//!     fn arms(&self) -> usize { self.values.len() }
//!     fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
//!         (0..self.values.len())
//!             .max_by(|a, b| self.values[*a].total_cmp(&self.values[*b]))
//!             .unwrap_or(0)
//!     }
//!     fn update(&mut self, arm: usize, reward: f64) {
//!         self.pulls[arm] += 1;
//!         let n = self.pulls[arm] as f64;
//!         self.values[arm] += (reward - self.values[arm]) / n;
//!     }
//!     fn reset_arm(&mut self, arm: usize) { self.values[arm] = 0.0; self.pulls[arm] = 0; }
//!     fn value(&self, arm: usize) -> f64 { self.values[arm] }
//!     fn pulls(&self, arm: usize) -> u64 { self.pulls[arm] }
//! }
//!
//! let kind = register_policy("doc-greedy", |params: &PolicyParams| {
//!     Box::new(Greedy {
//!         kind: params.kind,
//!         values: vec![0.0; params.arms],
//!         pulls: vec![0; params.arms],
//!     })
//! })
//! .expect("fresh name");
//! assert_eq!(kind.name(), "doc-greedy");
//! assert_eq!(BanditKind::parse("DOC-Greedy"), Ok(kind));
//! let bandit = kind.build(4);
//! assert_eq!(bandit.arms(), 4);
//! assert_eq!(bandit.kind(), kind);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use crate::{Bandit, BanditKind};

/// The parameters a policy factory receives when a campaign instantiates
/// its policy.
///
/// Built-in policies consume `epsilon` (ε-greedy) or `eta` (EXP3) and ignore
/// the rest; custom factories are free to reinterpret either knob or ignore
/// both. `kind` is the registered [`BanditKind::Custom`] identity the
/// produced policy should return from [`Bandit::kind`] so that labels and
/// reports name it correctly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyParams {
    /// The policy identity being built (for custom policies, the registered
    /// [`BanditKind::Custom`] value).
    pub kind: BanditKind,
    /// Number of arms the campaign schedules over.
    pub arms: usize,
    /// Exploration probability (the ε-greedy knob).
    pub epsilon: f64,
    /// Learning rate (the EXP3 knob).
    pub eta: f64,
}

impl PolicyParams {
    /// The paper-default parameters (ε = 0.1, η = 0.1) for `kind` over
    /// `arms` arms.
    pub fn defaults(kind: BanditKind, arms: usize) -> PolicyParams {
        PolicyParams { kind, arms, epsilon: 0.1, eta: 0.1 }
    }
}

/// The factory signature stored in the registry.
pub type PolicyFactory = dyn Fn(&PolicyParams) -> Box<dyn Bandit> + Send + Sync;

/// The baseline-scheduler spellings reserved alongside the built-in policy
/// names: the campaign-spec layer resolves these to the TheHuzz FIFO
/// baseline *before* consulting this registry, so a policy registered under
/// one of them would be unreachable by name (silently shadowed). This
/// constant is the single source of truth — the spec layer's parser
/// consumes it too.
pub const BASELINE_SCHEDULER_NAMES: [&str; 3] = ["thehuzz", "baseline", "fifo"];

struct Registered {
    /// Canonical spelling, interned for the lifetime of the process so
    /// [`BanditKind::Custom`] can stay `Copy`.
    name: &'static str,
    /// `Arc` so a lookup can clone the factory and release the registry
    /// lock *before* invoking it — factories may re-enter the registry
    /// (e.g. a composing policy looking up its delegate) without
    /// deadlocking.
    factory: Arc<PolicyFactory>,
}

/// Keyed by the lower-cased name, so lookups are case-insensitive.
fn registry() -> &'static RwLock<BTreeMap<String, Registered>> {
    static REGISTRY: OnceLock<RwLock<BTreeMap<String, Registered>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Why a policy registration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is empty or all whitespace.
    EmptyName,
    /// The name collides (case-insensitively) with a built-in policy or one
    /// of its accepted aliases.
    ReservedName(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::EmptyName => f.write_str("policy names must be non-empty"),
            RegistryError::ReservedName(name) => {
                write!(f, "`{name}` is reserved by a built-in policy")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Registers (or replaces) a custom bandit policy under `name` and returns
/// the [`BanditKind::Custom`] handle that identifies it everywhere a
/// built-in kind is accepted: `BanditKind::parse`, `BanditKind::build`,
/// campaign specs and report labels.
///
/// Names are matched case-insensitively but reported in the spelling given
/// here. Re-registering an existing name replaces its factory and returns
/// the same kind (last registration wins — convenient for tests).
pub fn register_policy<F>(name: &str, factory: F) -> Result<BanditKind, RegistryError>
where
    F: Fn(&PolicyParams) -> Box<dyn Bandit> + Send + Sync + 'static,
{
    let trimmed = name.trim();
    if trimmed.is_empty() {
        return Err(RegistryError::EmptyName);
    }
    let key = trimmed.to_ascii_lowercase();
    if BanditKind::parse_builtin(&key).is_some()
        || BASELINE_SCHEDULER_NAMES.contains(&key.as_str())
    {
        return Err(RegistryError::ReservedName(trimmed.to_owned()));
    }
    let mut entries = registry().write().expect("policy registry poisoned");
    let interned = match entries.get(&key) {
        // Reuse the interned spelling so repeated re-registration (test
        // suites!) does not leak a new string each time.
        Some(existing) => existing.name,
        None => Box::leak(trimmed.to_owned().into_boxed_str()),
    };
    entries.insert(key, Registered { name: interned, factory: Arc::new(factory) });
    Ok(BanditKind::Custom(interned))
}

/// Looks up a registered policy by name (case-insensitive).
pub fn lookup_policy(name: &str) -> Option<BanditKind> {
    let key = name.trim().to_ascii_lowercase();
    registry()
        .read()
        .expect("policy registry poisoned")
        .get(&key)
        .map(|entry| BanditKind::Custom(entry.name))
}

/// Returns the canonical names of every registered custom policy, in
/// alphabetical order (the order error messages list them in).
pub fn registered_policies() -> Vec<&'static str> {
    registry()
        .read()
        .expect("policy registry poisoned")
        .values()
        .map(|entry| entry.name)
        .collect()
}

/// Instantiates the registered factory for `name`, if any.
pub(crate) fn build_registered(name: &str, params: &PolicyParams) -> Option<Box<dyn Bandit>> {
    let key = name.trim().to_ascii_lowercase();
    // Clone the factory handle and drop the read guard before calling it:
    // a factory is user code and may itself consult the registry (parse a
    // delegate policy, list names for a message) — invoking it under the
    // lock would deadlock such re-entrant uses.
    let factory = {
        let entries = registry().read().expect("policy registry poisoned");
        entries.get(&key).map(|entry| Arc::clone(&entry.factory))
    };
    factory.map(|factory| factory(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal fixed-arm policy for registry tests.
    struct Fixed {
        kind: BanditKind,
        arms: usize,
    }

    impl Bandit for Fixed {
        fn kind(&self) -> BanditKind {
            self.kind
        }
        fn arms(&self) -> usize {
            self.arms
        }
        fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
            0
        }
        fn update(&mut self, _arm: usize, _reward: f64) {}
        fn reset_arm(&mut self, _arm: usize) {}
        fn value(&self, _arm: usize) -> f64 {
            0.0
        }
        fn pulls(&self, _arm: usize) -> u64 {
            0
        }
    }

    #[test]
    fn register_lookup_and_build_round_trip() {
        let kind = register_policy("Registry-Test-Fixed", |params: &PolicyParams| {
            Box::new(Fixed { kind: params.kind, arms: params.arms })
        })
        .expect("fresh name");
        assert_eq!(kind.name(), "Registry-Test-Fixed");
        assert_eq!(lookup_policy("registry-test-fixed"), Some(kind));
        assert_eq!(lookup_policy("REGISTRY-TEST-FIXED"), Some(kind));
        let bandit = kind.build(7);
        assert_eq!(bandit.arms(), 7);
        assert_eq!(bandit.kind(), kind);
        assert!(registered_policies().contains(&"Registry-Test-Fixed"));
    }

    #[test]
    fn re_registration_replaces_the_factory_and_keeps_the_kind() {
        let first = register_policy("registry-test-replace", |params: &PolicyParams| {
            Box::new(Fixed { kind: params.kind, arms: params.arms })
        })
        .expect("fresh name");
        let second = register_policy("Registry-Test-Replace", |params: &PolicyParams| {
            Box::new(Fixed { kind: params.kind, arms: params.arms + 1 })
        })
        .expect("replacement");
        assert_eq!(first, second, "same name, same kind");
        assert_eq!(second.build(3).arms(), 4, "last registration wins");
    }

    #[test]
    fn reserved_and_empty_names_are_rejected() {
        for reserved in [
            "UCB", "ucb1", "exp3", "epsilon-greedy", "EGREEDY", "thompson", "Thompson-Sampling",
            "ts", "TheHuzz", "baseline", "FIFO",
        ] {
            assert_eq!(
                register_policy(reserved, |p: &PolicyParams| {
                    Box::new(Fixed { kind: p.kind, arms: p.arms }) as Box<dyn Bandit>
                }),
                Err(RegistryError::ReservedName(reserved.to_owned())),
                "{reserved}"
            );
        }
        assert_eq!(
            register_policy("  ", |p: &PolicyParams| {
                Box::new(Fixed { kind: p.kind, arms: p.arms }) as Box<dyn Bandit>
            }),
            Err(RegistryError::EmptyName)
        );
        assert!(RegistryError::EmptyName.to_string().contains("non-empty"));
        assert!(RegistryError::ReservedName("ucb".into()).to_string().contains("reserved"));
    }

    #[test]
    fn factories_may_re_enter_the_registry() {
        // A composing policy's factory consults the registry while being
        // invoked; this must not deadlock (the lookup releases the registry
        // lock before calling the factory).
        register_policy("registry-test-delegate", |params: &PolicyParams| {
            Box::new(Fixed { kind: params.kind, arms: params.arms })
        })
        .expect("fresh name");
        let kind = register_policy("registry-test-composer", |params: &PolicyParams| {
            let delegate = lookup_policy("registry-test-delegate").expect("delegate registered");
            assert!(!registered_policies().is_empty());
            delegate.build(params.arms)
        })
        .expect("fresh name");
        let bandit = kind.build(3);
        assert_eq!(bandit.arms(), 3);
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        assert_eq!(lookup_policy("registry-test-missing"), None);
        assert!(build_registered("registry-test-missing", &PolicyParams::defaults(BanditKind::Ucb1, 2)).is_none());
    }
}
