//! Modified UCB1 (Algorithm 1 of the paper).

use serde::{Deserialize, Serialize};

use crate::{Bandit, BanditKind};

/// UCB1 with the reset-arms modification.
///
/// The policy pulls the arm maximising `Q(a) + sqrt(2·ln t / N(a))`, where `t`
/// is the global time step and `N(a)` the number of pulls of the arm. An arm
/// that has never been pulled (including one that has just been **reset**) has
/// an infinite confidence bonus and is therefore pulled next — exactly the
/// behaviour the paper relies on to make a freshly swapped-in seed get tried
/// immediately.
///
/// # Example
///
/// ```
/// use mab::{Bandit, Ucb1};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut bandit = Ucb1::new(3);
/// // The first three pulls visit every arm once.
/// let mut seen = [false; 3];
/// for _ in 0..3 {
///     let arm = bandit.select(&mut rng);
///     seen[arm] = true;
///     bandit.update(arm, 0.0);
/// }
/// assert!(seen.iter().all(|s| *s));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ucb1 {
    values: Vec<f64>,
    counts: Vec<u64>,
    time: u64,
}

impl Ucb1 {
    /// Creates a UCB1 policy over `arms` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is zero.
    pub fn new(arms: usize) -> Ucb1 {
        assert!(arms > 0, "a bandit needs at least one arm");
        Ucb1 { values: vec![0.0; arms], counts: vec![0; arms], time: 0 }
    }

    /// Returns the upper confidence bound currently assigned to `arm`
    /// (`f64::INFINITY` for never-pulled arms).
    pub fn confidence_bound(&self, arm: usize) -> f64 {
        if self.counts[arm] == 0 {
            return f64::INFINITY;
        }
        let t = (self.time.max(1)) as f64;
        self.values[arm] + (2.0 * t.ln() / self.counts[arm] as f64).sqrt()
    }
}

impl Bandit for Ucb1 {
    fn kind(&self) -> BanditKind {
        BanditKind::Ucb1
    }

    fn arms(&self) -> usize {
        self.values.len()
    }

    fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
        self.time += 1;
        let mut best = 0;
        let mut best_bound = f64::NEG_INFINITY;
        for arm in 0..self.values.len() {
            let bound = self.confidence_bound(arm);
            if bound > best_bound {
                best = arm;
                best_bound = bound;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.values.len(), "arm {arm} out of range");
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.values[arm] += (reward - self.values[arm]) / n;
    }

    fn reset_arm(&mut self, arm: usize) {
        assert!(arm < self.values.len(), "arm {arm} out of range");
        self.counts[arm] = 0;
        self.values[arm] = 0.0;
    }

    fn value(&self, arm: usize) -> f64 {
        self.values[arm]
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.counts[arm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn every_arm_is_tried_before_any_is_repeated() {
        let mut bandit = Ucb1::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            let arm = bandit.select(&mut rng);
            assert!(seen.insert(arm), "arm {arm} repeated before all arms were tried");
            bandit.update(arm, 0.1);
        }
    }

    #[test]
    fn reset_arm_is_selected_next() {
        let mut bandit = Ucb1::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..30 {
            let arm = bandit.select(&mut rng);
            bandit.update(arm, if arm == 0 { 1.0 } else { 0.1 });
        }
        bandit.reset_arm(2);
        assert_eq!(bandit.pulls(2), 0);
        assert_eq!(bandit.select(&mut rng), 2, "a reset arm has an infinite bonus");
    }

    #[test]
    fn exploits_the_best_arm_in_the_long_run() {
        let mut bandit = Ucb1::new(4);
        let mut rng = StdRng::seed_from_u64(5);
        let means = [0.2, 0.8, 0.3, 0.1];
        let mut best_pulls = 0;
        for _ in 0..3000 {
            let arm = bandit.select(&mut rng);
            if arm == 1 {
                best_pulls += 1;
            }
            let reward = if rng.gen_bool(means[arm]) { 1.0 } else { 0.0 };
            bandit.update(arm, reward);
        }
        assert!(best_pulls > 1800, "best arm pulled only {best_pulls}/3000 times");
    }

    #[test]
    fn confidence_bound_shrinks_with_pulls() {
        let mut bandit = Ucb1::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let arm = bandit.select(&mut rng);
            bandit.update(arm, 0.5);
        }
        let before = bandit.confidence_bound(0);
        for _ in 0..50 {
            bandit.update(0, 0.5);
            bandit.time += 1;
        }
        let after = bandit.confidence_bound(0);
        assert!(after < before, "more pulls must tighten the bound ({after} !< {before})");
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_panics() {
        let _ = Ucb1::new(0);
    }

    proptest! {
        /// Selection is always a valid index, and values track sample means.
        #[test]
        fn selection_in_range_and_values_are_means(
            rewards in proptest::collection::vec(0.0f64..1.0, 1..64),
            arms in 1usize..8,
        ) {
            let mut bandit = Ucb1::new(arms);
            let mut rng = StdRng::seed_from_u64(11);
            let mut totals = vec![(0.0f64, 0u64); arms];
            for reward in &rewards {
                let arm = bandit.select(&mut rng);
                prop_assert!(arm < arms);
                bandit.update(arm, *reward);
                totals[arm].0 += reward;
                totals[arm].1 += 1;
            }
            for (arm, (total, pulls)) in totals.iter().enumerate() {
                if *pulls > 0 {
                    let mean = total / *pulls as f64;
                    prop_assert!((bandit.value(arm) - mean).abs() < 1e-9);
                    prop_assert_eq!(bandit.pulls(arm), *pulls);
                }
            }
        }
    }
}
