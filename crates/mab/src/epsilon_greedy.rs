//! Modified ε-greedy (Algorithm 1 of the paper).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Bandit, BanditKind};

/// ε-greedy with the reset-arms modification.
///
/// With probability `1 − ε` the arm with the highest value estimate `Q(a)` is
/// pulled (ties broken by the lowest index); with probability `ε` a uniformly
/// random arm is pulled. Value estimates are incremental sample means:
/// `Q(a) ← Q(a) + (R − Q(a)) / N(a)`. Resetting an arm sets `N(a)` and `Q(a)`
/// back to zero, exactly as the red lines of the paper's Algorithm 1 do.
///
/// # Example
///
/// ```
/// use mab::{Bandit, EpsilonGreedy};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut bandit = EpsilonGreedy::new(3, 0.05);
/// bandit.update(1, 10.0);
/// // With a tiny epsilon the best arm dominates selection.
/// let picks = (0..100).filter(|_| bandit.select(&mut rng) == 1).count();
/// assert!(picks > 90);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpsilonGreedy {
    epsilon: f64,
    values: Vec<f64>,
    counts: Vec<u64>,
}

impl EpsilonGreedy {
    /// Creates an ε-greedy policy over `arms` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is zero or `epsilon` is outside `[0, 1]`.
    pub fn new(arms: usize, epsilon: f64) -> EpsilonGreedy {
        assert!(arms > 0, "a bandit needs at least one arm");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        EpsilonGreedy { epsilon, values: vec![0.0; arms], counts: vec![0; arms] }
    }

    /// Returns the exploration probability ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn best_arm(&self) -> usize {
        let mut best = 0;
        for (index, value) in self.values.iter().enumerate() {
            if *value > self.values[best] {
                best = index;
            }
        }
        best
    }
}

impl Bandit for EpsilonGreedy {
    fn kind(&self) -> BanditKind {
        BanditKind::EpsilonGreedy
    }

    fn arms(&self) -> usize {
        self.values.len()
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        if rng.gen_bool(self.epsilon) {
            rng.gen_range(0..self.values.len())
        } else {
            self.best_arm()
        }
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.values.len(), "arm {arm} out of range");
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.values[arm] += (reward - self.values[arm]) / n;
    }

    fn reset_arm(&mut self, arm: usize) {
        assert!(arm < self.values.len(), "arm {arm} out of range");
        self.counts[arm] = 0;
        self.values[arm] = 0.0;
    }

    fn value(&self, arm: usize) -> f64 {
        self.values[arm]
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.counts[arm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn value_estimates_are_running_means() {
        let mut bandit = EpsilonGreedy::new(2, 0.0);
        bandit.update(0, 4.0);
        bandit.update(0, 8.0);
        assert!((bandit.value(0) - 6.0).abs() < 1e-12);
        assert_eq!(bandit.pulls(0), 2);
        assert_eq!(bandit.pulls(1), 0);
    }

    #[test]
    fn pure_exploitation_always_picks_the_best_arm() {
        let mut bandit = EpsilonGreedy::new(4, 0.0);
        bandit.update(2, 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(bandit.select(&mut rng), 2);
        }
    }

    #[test]
    fn pure_exploration_is_roughly_uniform() {
        let mut bandit = EpsilonGreedy::new(4, 1.0);
        bandit.update(0, 100.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[bandit.select(&mut rng)] += 1;
        }
        for count in counts {
            assert!((800..1200).contains(&count), "counts {counts:?} not roughly uniform");
        }
    }

    #[test]
    fn reset_clears_an_arm_but_not_the_others() {
        let mut bandit = EpsilonGreedy::new(3, 0.1);
        bandit.update(0, 3.0);
        bandit.update(1, 7.0);
        bandit.reset_arm(1);
        assert_eq!(bandit.value(1), 0.0);
        assert_eq!(bandit.pulls(1), 0);
        assert_eq!(bandit.value(0), 3.0);
        assert_eq!(bandit.pulls(0), 1);
    }

    #[test]
    fn learns_the_best_arm_on_a_synthetic_bandit() {
        let mut bandit = EpsilonGreedy::new(5, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let true_means = [0.1, 0.2, 0.9, 0.3, 0.4];
        let mut pulls_of_best = 0;
        for _ in 0..2000 {
            let arm = bandit.select(&mut rng);
            if arm == 2 {
                pulls_of_best += 1;
            }
            let reward = if rng.gen_bool(true_means[arm]) { 1.0 } else { 0.0 };
            bandit.update(arm, reward);
        }
        assert!(pulls_of_best > 1200, "best arm pulled only {pulls_of_best}/2000 times");
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_panics() {
        let _ = EpsilonGreedy::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_update_panics() {
        let mut bandit = EpsilonGreedy::new(2, 0.1);
        bandit.update(2, 1.0);
    }

    proptest! {
        /// Selection always returns a valid arm index and epsilon is honoured
        /// at the extremes.
        #[test]
        fn selection_is_always_in_range(arms in 1usize..16, epsilon in 0.0f64..=1.0, seed in any::<u64>()) {
            let mut bandit = EpsilonGreedy::new(arms, epsilon);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..32 {
                let arm = bandit.select(&mut rng);
                prop_assert!(arm < arms);
                bandit.update(arm, 1.0);
            }
        }

        /// The value estimate never exceeds the largest observed reward.
        #[test]
        fn value_bounded_by_max_reward(rewards in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            let mut bandit = EpsilonGreedy::new(1, 0.0);
            let mut max_reward = 0.0f64;
            for r in &rewards {
                bandit.update(0, *r);
                max_reward = max_reward.max(*r);
            }
            prop_assert!(bandit.value(0) <= max_reward + 1e-9);
        }
    }
}
