//! Property suites for the bandit policies.
//!
//! These are the algorithm-level guarantees the sharded campaign leans on:
//! EXP3's selection distribution stays a finite, normalised distribution
//! under arbitrary reward sequences; UCB1 and Thompson never starve an arm
//! (the log bonus and the never-vanishing posterior width keep dragging
//! neglected arms back); `sample_discrete` stays
//! in-bounds for adversarial probability vectors (zeros, denormals, mass
//! deficits); and `update_batch` — the sharded campaign's ordered-reduction
//! entry point — is observationally identical to a sequence of `update`
//! calls for every policy.

use mab::{sample_discrete, Bandit, BanditKind, EpsilonGreedy, Exp3, Thompson, Ucb1};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// EXP3's weights stay positive and finite, and its selection
    /// probabilities stay a normalised distribution above the exploration
    /// floor, for any reward sequence (including out-of-range rewards,
    /// which the policy clamps) interleaved with arm resets.
    #[test]
    fn exp3_stays_normalised_and_finite(
        raw_rewards in proptest::collection::vec(0u8..5, 1..96),
        resets in proptest::collection::vec(0usize..16, 0..8),
        arms in 2usize..8,
        eta_percent in 1usize..100,
    ) {
        let eta = eta_percent as f64 / 100.0;
        let mut bandit = Exp3::new(arms, eta);
        let mut rng = StdRng::seed_from_u64(0xE8_93);
        let mut resets = resets.into_iter();
        for raw in raw_rewards {
            let arm = bandit.select(&mut rng);
            prop_assert!(arm < arms);
            // Adversarial reward alphabet: zero, denormal, tiny, unit, huge.
            let reward = match raw {
                0 => 0.0,
                1 => f64::MIN_POSITIVE / 2.0,
                2 => 1e-12,
                3 => 1.0,
                _ => 1e18,
            };
            bandit.update(arm, reward);
            if let Some(reset) = resets.next() {
                bandit.reset_arm(reset % arms);
            }
            let probabilities = bandit.probabilities();
            let sum: f64 = probabilities.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum} drifted from 1");
            for (index, p) in probabilities.iter().enumerate() {
                prop_assert!(p.is_finite(), "P({index}) became non-finite");
                prop_assert!(*p >= eta / arms as f64 - 1e-9, "P({index}) fell under the floor");
                prop_assert!(bandit.value(index).is_finite());
            }
        }
    }

    /// UCB1 never starves an arm: for any adversarial reward sequence the
    /// logarithmic confidence bonus keeps pulling every arm back, so after
    /// `T` selects every arm has been pulled several times — not just the
    /// one free optimism-driven visit.
    #[test]
    fn ucb1_never_starves_an_arm(
        raw_rewards in proptest::collection::vec(0u8..4, 0..32),
        arms in 2usize..7,
    ) {
        let mut bandit = Ucb1::new(arms);
        let mut rng = StdRng::seed_from_u64(0x0CB1);
        let steps = 600;
        for step in 0..steps {
            let arm = bandit.select(&mut rng);
            prop_assert!(arm < arms);
            // Adversarial pattern: the reward alphabet repeats over the
            // steps, so some arms look consistently great and others
            // consistently worthless.
            let raw = raw_rewards.get(step % raw_rewards.len().max(1)).copied().unwrap_or(0);
            let reward = match raw {
                0 => 0.0,
                1 => 0.5,
                2 => if arm == 0 { 1.0 } else { 0.0 },
                _ => 1.0,
            };
            bandit.update(arm, reward);
        }
        for arm in 0..arms {
            prop_assert!(
                bandit.pulls(arm) >= 3,
                "arm {arm} starved: only {} pulls in {steps} steps",
                bandit.pulls(arm)
            );
        }
    }

    /// Thompson sampling never starves an arm: the posterior width
    /// `1/sqrt(N+1)` never reaches zero and the Gaussian samples are
    /// unbounded, so even an arm whose rewards look consistently worthless
    /// keeps winning the argmax occasionally.
    #[test]
    fn thompson_never_starves_an_arm(
        raw_rewards in proptest::collection::vec(0u8..4, 0..32),
        arms in 2usize..7,
    ) {
        let mut bandit = Thompson::new(arms);
        let mut rng = StdRng::seed_from_u64(0x7503);
        let steps = 600;
        for step in 0..steps {
            let arm = bandit.select(&mut rng);
            prop_assert!(arm < arms);
            let raw = raw_rewards.get(step % raw_rewards.len().max(1)).copied().unwrap_or(0);
            let reward = match raw {
                0 => 0.0,
                1 => 0.5,
                2 => if arm == 0 { 1.0 } else { 0.0 },
                _ => 1.0,
            };
            bandit.update(arm, reward);
        }
        for arm in 0..arms {
            prop_assert!(
                bandit.pulls(arm) >= 3,
                "arm {arm} starved: only {} pulls in {steps} steps",
                bandit.pulls(arm)
            );
        }
    }

    /// `sample_discrete` returns an in-bounds index for adversarial
    /// probability vectors: zeros, denormals, huge entries, and vectors
    /// whose mass sums to less (or more) than one.
    #[test]
    fn sample_discrete_is_in_bounds_for_adversarial_vectors(
        raw in proptest::collection::vec(0u8..6, 1..16),
        rng_seed in 0u64..1024,
    ) {
        let probabilities: Vec<f64> = raw
            .iter()
            .map(|&code| match code {
                0 => 0.0,
                1 => f64::MIN_POSITIVE / 4.0, // denormal
                2 => 1e-300,
                3 => 0.3,
                4 => 1.0,
                _ => 1e6,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for _ in 0..32 {
            let index = sample_discrete(&probabilities, &mut rng);
            prop_assert!(index < probabilities.len());
            // A zero entry can only ever be picked as the terminal
            // fallback for mass-deficient vectors.
            if probabilities[index] == 0.0 {
                prop_assert_eq!(index, probabilities.len() - 1);
                let sum: f64 = probabilities.iter().sum();
                prop_assert!(sum < 1.0, "zero entry chosen despite full mass (sum {sum})");
            }
        }
    }

    /// `update_batch` is observationally identical to folding the same
    /// rewards through `update` one by one, for every policy — the
    /// equivalence the sharded campaign's per-round reward flush relies on.
    #[test]
    fn update_batch_equals_sequential_updates(
        rewards in proptest::collection::vec(0.0f64..1.0, 0..24),
        arms in 1usize..6,
        arm_choice in 0usize..6,
    ) {
        let arm = arm_choice % arms;
        for kind in BanditKind::BUILTINS {
            let mut batched = kind.build(arms);
            let mut sequential = kind.build(arms);
            // Put both policies in the same non-trivial state first, driving
            // them with identical RNG streams so their select-side state
            // (EXP3's cached probabilities, UCB1's clock) stays in lockstep.
            let mut rng_a = StdRng::seed_from_u64(0xBA7C);
            let mut rng_b = StdRng::seed_from_u64(0xBA7C);
            for _ in 0..arms {
                let chosen_a = batched.select(&mut rng_a);
                let chosen_b = sequential.select(&mut rng_b);
                prop_assert_eq!(chosen_a, chosen_b, "{}", kind);
                batched.update(chosen_a, 0.25);
                sequential.update(chosen_b, 0.25);
            }
            batched.update_batch(arm, &rewards);
            for &reward in &rewards {
                sequential.update(arm, reward);
            }
            for index in 0..arms {
                prop_assert_eq!(batched.pulls(index), sequential.pulls(index), "{kind}");
                let (a, b) = (batched.value(index), sequential.value(index));
                prop_assert!(
                    (a - b).abs() < 1e-12 || (a.is_infinite() && b.is_infinite()),
                    "{kind}: value({index}) {a} != {b}"
                );
            }
        }
    }
}

/// ε-greedy keeps its selections in range and its value estimates finite
/// under the same adversarial alphabet (plain test: the policy is
/// deterministic enough that one long run covers it).
#[test]
fn epsilon_greedy_selections_stay_in_bounds() {
    let mut bandit = EpsilonGreedy::new(5, 0.1);
    let mut rng = StdRng::seed_from_u64(0xE6);
    for step in 0..2000 {
        let arm = bandit.select(&mut rng);
        assert!(arm < 5);
        let reward = match step % 4 {
            0 => 0.0,
            1 => 1e18,
            2 => f64::MIN_POSITIVE,
            _ => 1.0,
        };
        bandit.update(arm, reward);
        if step % 97 == 0 {
            bandit.reset_arm(arm);
        }
    }
    for arm in 0..5 {
        assert!(bandit.value(arm).is_finite());
    }
}
