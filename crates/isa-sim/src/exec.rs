//! The architectural executor: instruction semantics and the golden simulator
//! driver built on top of them.
//!
//! The per-instruction semantics live in [`execute_instr`], which is shared
//! with the processor models in `proc-sim`: a bug-free processor applies
//! exactly these semantics, and each injected vulnerability is a small,
//! controlled deviation layered on top.

use riscv::op::Format;
use riscv::program::TEXT_BASE;
use riscv::{decode, CsrAddr, Gpr, Instr, Op, Program};
use serde::{Deserialize, Serialize};

use crate::decoded::DecodedProgram;
use crate::mem::Memory;
use crate::snapshot::{ResetPolicy, ResetStats, Snapshot};
use crate::state::ArchState;
use crate::trace::{CommitRecord, ExecTrace, HaltReason, MemAccess};
use crate::trap::Exception;
use crate::PHYS_ADDR_MASK;

/// The architectural outcome of executing a single instruction.
///
/// Produced by [`execute_instr`]. When `exception` is `Some`, no architectural
/// side effects were applied (registers, CSRs and memory are untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrOutcome {
    /// Destination register and value written, if the instruction wrote one.
    pub writeback: Option<(Gpr, u64)>,
    /// Data-memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Exception raised, if any.
    pub exception: Option<Exception>,
    /// Address of the next instruction in program order.
    pub next_pc: u64,
}

impl InstrOutcome {
    fn fall_through(pc: u64) -> InstrOutcome {
        InstrOutcome { writeback: None, mem: None, exception: None, next_pc: pc.wrapping_add(4) }
    }

    fn except(pc: u64, exception: Exception) -> InstrOutcome {
        InstrOutcome {
            writeback: None,
            mem: None,
            exception: Some(exception),
            next_pc: pc.wrapping_add(4),
        }
    }
}

/// Executes one instruction against the architectural state and memory,
/// returning the outcome.
///
/// This function applies the side effects (register writeback, CSR update,
/// memory store) of a *successful* execution. When an exception is returned,
/// the state has not been modified; it is the caller's responsibility to
/// update the trap CSRs (see [`ArchState::take_exception`]) and decide where
/// execution resumes.
pub fn execute_instr(
    state: &mut ArchState,
    mem: &mut Memory,
    instr: Instr,
    pc: u64,
) -> InstrOutcome {
    let rs1 = state.reg(instr.rs1);
    let rs2 = state.reg(instr.rs2);
    let mut out = InstrOutcome::fall_through(pc);

    let write_rd = |state: &mut ArchState, out: &mut InstrOutcome, value: u64| {
        state.set_reg(instr.rd, value);
        // x0 writes are architecturally invisible; report the stored value so
        // DUT/golden comparison sees the same thing (always 0 for x0).
        out.writeback = Some((instr.rd, state.reg(instr.rd)));
    };

    match instr.op {
        // ---- upper immediates and jumps -------------------------------------------------
        Op::Lui => write_rd(state, &mut out, instr.imm as u64),
        Op::Auipc => write_rd(state, &mut out, pc.wrapping_add(instr.imm as u64)),
        Op::Jal => {
            let target = pc.wrapping_add(instr.imm as u64);
            if !target.is_multiple_of(4) {
                return InstrOutcome::except(pc, Exception::InstrAddrMisaligned { target });
            }
            write_rd(state, &mut out, pc.wrapping_add(4));
            out.next_pc = target;
        }
        Op::Jalr => {
            let target = rs1.wrapping_add(instr.imm as u64) & !1;
            if !target.is_multiple_of(4) {
                return InstrOutcome::except(pc, Exception::InstrAddrMisaligned { target });
            }
            write_rd(state, &mut out, pc.wrapping_add(4));
            out.next_pc = target;
        }
        // ---- conditional branches --------------------------------------------------------
        Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
            let taken = match instr.op {
                Op::Beq => rs1 == rs2,
                Op::Bne => rs1 != rs2,
                Op::Blt => (rs1 as i64) < (rs2 as i64),
                Op::Bge => (rs1 as i64) >= (rs2 as i64),
                Op::Bltu => rs1 < rs2,
                Op::Bgeu => rs1 >= rs2,
                _ => unreachable!(),
            };
            if taken {
                let target = pc.wrapping_add(instr.imm as u64);
                if !target.is_multiple_of(4) {
                    return InstrOutcome::except(pc, Exception::InstrAddrMisaligned { target });
                }
                out.next_pc = target;
            }
        }
        // ---- loads and stores --------------------------------------------------------------
        Op::Lb | Op::Lh | Op::Lw | Op::Ld | Op::Lbu | Op::Lhu | Op::Lwu => {
            let width = u64::from(instr.op.memory_width().expect("load has a width"));
            let addr = rs1.wrapping_add(instr.imm as u64) & PHYS_ADDR_MASK;
            if !addr.is_multiple_of(width) {
                return InstrOutcome::except(pc, Exception::LoadAddrMisaligned { addr });
            }
            if !mem.can_load(addr, width) {
                return InstrOutcome::except(pc, Exception::LoadAccessFault { addr });
            }
            let raw = mem.read_uint(addr, width);
            let value = match instr.op {
                Op::Lb => raw as i8 as i64 as u64,
                Op::Lh => raw as i16 as i64 as u64,
                Op::Lw => raw as i32 as i64 as u64,
                Op::Ld | Op::Lbu | Op::Lhu | Op::Lwu => raw,
                _ => unreachable!(),
            };
            write_rd(state, &mut out, value);
            out.mem = Some(MemAccess { addr, width: width as u8, value: raw, is_store: false });
        }
        Op::Sb | Op::Sh | Op::Sw | Op::Sd => {
            let width = u64::from(instr.op.memory_width().expect("store has a width"));
            let addr = rs1.wrapping_add(instr.imm as u64) & PHYS_ADDR_MASK;
            if !addr.is_multiple_of(width) {
                return InstrOutcome::except(pc, Exception::StoreAddrMisaligned { addr });
            }
            if !mem.can_store(addr, width) {
                return InstrOutcome::except(pc, Exception::StoreAccessFault { addr });
            }
            let value = rs2 & width_mask(width);
            mem.write_uint(addr, value, width);
            out.mem = Some(MemAccess { addr, width: width as u8, value, is_store: true });
        }
        // ---- register-immediate integer ops --------------------------------------------------
        Op::Addi => write_rd(state, &mut out, rs1.wrapping_add(instr.imm as u64)),
        Op::Slti => write_rd(state, &mut out, u64::from((rs1 as i64) < instr.imm)),
        Op::Sltiu => write_rd(state, &mut out, u64::from(rs1 < instr.imm as u64)),
        Op::Xori => write_rd(state, &mut out, rs1 ^ instr.imm as u64),
        Op::Ori => write_rd(state, &mut out, rs1 | instr.imm as u64),
        Op::Andi => write_rd(state, &mut out, rs1 & instr.imm as u64),
        Op::Slli => write_rd(state, &mut out, rs1 << (instr.imm as u32 & 0x3f)),
        Op::Srli => write_rd(state, &mut out, rs1 >> (instr.imm as u32 & 0x3f)),
        Op::Srai => write_rd(state, &mut out, ((rs1 as i64) >> (instr.imm as u32 & 0x3f)) as u64),
        Op::Addiw => write_rd(state, &mut out, sext32(rs1.wrapping_add(instr.imm as u64))),
        Op::Slliw => write_rd(state, &mut out, sext32((rs1 as u32 as u64) << (instr.imm as u32 & 0x1f))),
        Op::Srliw => write_rd(state, &mut out, sext32(u64::from(rs1 as u32 >> (instr.imm as u32 & 0x1f)))),
        Op::Sraiw => {
            write_rd(state, &mut out, ((rs1 as i32) >> (instr.imm as u32 & 0x1f)) as i64 as u64)
        }
        // ---- register-register integer ops --------------------------------------------------
        Op::Add => write_rd(state, &mut out, rs1.wrapping_add(rs2)),
        Op::Sub => write_rd(state, &mut out, rs1.wrapping_sub(rs2)),
        Op::Sll => write_rd(state, &mut out, rs1 << (rs2 & 0x3f)),
        Op::Slt => write_rd(state, &mut out, u64::from((rs1 as i64) < (rs2 as i64))),
        Op::Sltu => write_rd(state, &mut out, u64::from(rs1 < rs2)),
        Op::Xor => write_rd(state, &mut out, rs1 ^ rs2),
        Op::Srl => write_rd(state, &mut out, rs1 >> (rs2 & 0x3f)),
        Op::Sra => write_rd(state, &mut out, ((rs1 as i64) >> (rs2 & 0x3f)) as u64),
        Op::Or => write_rd(state, &mut out, rs1 | rs2),
        Op::And => write_rd(state, &mut out, rs1 & rs2),
        Op::Addw => write_rd(state, &mut out, sext32(rs1.wrapping_add(rs2))),
        Op::Subw => write_rd(state, &mut out, sext32(rs1.wrapping_sub(rs2))),
        Op::Sllw => write_rd(state, &mut out, sext32(u64::from((rs1 as u32) << (rs2 & 0x1f)))),
        Op::Srlw => write_rd(state, &mut out, sext32(u64::from(rs1 as u32 >> (rs2 & 0x1f)))),
        Op::Sraw => write_rd(state, &mut out, ((rs1 as i32) >> (rs2 & 0x1f)) as i64 as u64),
        // ---- M extension ----------------------------------------------------------------------
        Op::Mul => write_rd(state, &mut out, rs1.wrapping_mul(rs2)),
        Op::Mulh => {
            let product = (rs1 as i64 as i128) * (rs2 as i64 as i128);
            write_rd(state, &mut out, (product >> 64) as u64)
        }
        Op::Mulhsu => {
            let product = (rs1 as i64 as i128) * (rs2 as u128 as i128);
            write_rd(state, &mut out, (product >> 64) as u64)
        }
        Op::Mulhu => {
            let product = (rs1 as u128) * (rs2 as u128);
            write_rd(state, &mut out, (product >> 64) as u64)
        }
        Op::Div => write_rd(state, &mut out, div_signed(rs1 as i64, rs2 as i64) as u64),
        Op::Divu => write_rd(state, &mut out, rs1.checked_div(rs2).unwrap_or(u64::MAX)),
        Op::Rem => write_rd(state, &mut out, rem_signed(rs1 as i64, rs2 as i64) as u64),
        Op::Remu => write_rd(state, &mut out, if rs2 == 0 { rs1 } else { rs1 % rs2 }),
        Op::Mulw => write_rd(state, &mut out, sext32(rs1.wrapping_mul(rs2))),
        Op::Divw => {
            write_rd(state, &mut out, div_signed(rs1 as i32 as i64, rs2 as i32 as i64) as i32 as i64 as u64)
        }
        Op::Divuw => {
            let (a, b) = (rs1 as u32, rs2 as u32);
            let q = a.checked_div(b).unwrap_or(u32::MAX);
            write_rd(state, &mut out, q as i32 as i64 as u64)
        }
        Op::Remw => {
            write_rd(state, &mut out, rem_signed(rs1 as i32 as i64, rs2 as i32 as i64) as i32 as i64 as u64)
        }
        Op::Remuw => {
            let (a, b) = (rs1 as u32, rs2 as u32);
            let r = if b == 0 { a } else { a % b };
            write_rd(state, &mut out, r as i32 as i64 as u64)
        }
        // ---- Zicsr ----------------------------------------------------------------------------
        Op::Csrrw | Op::Csrrs | Op::Csrrc | Op::Csrrwi | Op::Csrrsi | Op::Csrrci => {
            let csr = instr.csr_addr().expect("csr instruction has an address");
            if !csr.is_implemented() {
                return InstrOutcome::except(pc, Exception::IllegalInstruction { word: instr.encode() });
            }
            let src = if instr.op.format() == Format::CsrImm {
                u64::from(instr.csr_zimm().unwrap_or(0))
            } else {
                rs1
            };
            let writes = match instr.op {
                Op::Csrrw | Op::Csrrwi => true,
                // csrrs/csrrc only write when the source is non-trivial.
                Op::Csrrs | Op::Csrrc => instr.rs1 != Gpr::Zero,
                Op::Csrrsi | Op::Csrrci => src != 0,
                _ => unreachable!(),
            };
            if writes && csr.is_read_only() {
                return InstrOutcome::except(pc, Exception::IllegalInstruction { word: instr.encode() });
            }
            let old = state.csr(csr);
            if writes {
                let new = match instr.op {
                    Op::Csrrw | Op::Csrrwi => src,
                    Op::Csrrs | Op::Csrrsi => old | src,
                    Op::Csrrc | Op::Csrrci => old & !src,
                    _ => unreachable!(),
                };
                state.set_csr(csr, new);
            }
            write_rd(state, &mut out, old);
        }
        // ---- fences and system ----------------------------------------------------------------
        Op::Fence | Op::FenceI | Op::Wfi => {}
        Op::Mret => {
            out.next_pc = state.csr(CsrAddr::MEPC) & !0b11;
        }
        Op::Ecall => return InstrOutcome::except(pc, Exception::EcallM),
        Op::Ebreak => return InstrOutcome::except(pc, Exception::Breakpoint),
    }
    out
}

fn sext32(value: u64) -> u64 {
    value as u32 as i32 as i64 as u64
}

fn width_mask(width: u64) -> u64 {
    if width == 8 {
        u64::MAX
    } else {
        (1u64 << (8 * width)) - 1
    }
}

fn div_signed(a: i64, b: i64) -> i64 {
    if b == 0 {
        -1
    } else if a == i64::MIN && b == -1 {
        i64::MIN
    } else {
        a / b
    }
}

fn rem_signed(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else if a == i64::MIN && b == -1 {
        0
    } else {
        a % b
    }
}

/// Configuration of the golden simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Whether `ebreak` retires (increments `minstret`). The golden model and
    /// the bug-free processors use `true`; the V7 vulnerability is the DUT
    /// deviating from it.
    pub ebreak_retires: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { ebreak_retires: true }
    }
}

/// The golden-reference simulator.
///
/// See the [crate-level documentation](crate) for the simulation conventions.
#[derive(Debug, Clone, Default)]
pub struct GoldenSim {
    config: ExecConfig,
}

impl GoldenSim {
    /// Creates a simulator with the default configuration.
    pub fn new() -> GoldenSim {
        GoldenSim::default()
    }

    /// Creates a simulator with an explicit configuration.
    pub fn with_config(config: ExecConfig) -> GoldenSim {
        GoldenSim { config }
    }

    /// Runs `program` for at most `max_steps` committed instructions and
    /// returns the commit trace.
    pub fn run(&self, program: &Program, max_steps: usize) -> ExecTrace {
        let mut scratch = GoldenScratch::new();
        let mut trace = ExecTrace::default();
        self.run_into(program, max_steps, &mut trace, &mut scratch);
        trace
    }

    /// Runs `program` like [`run`](GoldenSim::run), writing the commit trace
    /// into a caller-owned buffer and reusing the scratch's memory image and
    /// text buffer.
    ///
    /// This is the fuzzing hot path: a harness keeps one `ExecTrace` and one
    /// [`GoldenScratch`] alive for the whole campaign, so steady-state
    /// simulation performs no per-test trace or memory allocation.
    pub fn run_into(
        &self,
        program: &Program,
        max_steps: usize,
        trace: &mut ExecTrace,
        scratch: &mut GoldenScratch,
    ) {
        program.text_bytes_into(&mut scratch.text);
        let state = begin_run(
            scratch.policy,
            &scratch.snapshot,
            &mut scratch.mem,
            &scratch.text,
            program.data(),
            trace,
        );
        self.run_loop(&mut scratch.mem, state, max_steps, trace, |mem, pc| {
            mem.fetch(pc).map(|word| (word, decode(word).ok()))
        });
    }

    /// Runs `program` like [`run_into`](GoldenSim::run_into), but fetches
    /// pre-decoded instructions from `decoded` instead of decoding each word
    /// on every step.
    ///
    /// `decoded` must be the pre-decoded image of `program`'s current text
    /// (asserted in debug builds); [`DecodeCache`](crate::DecodeCache)
    /// guarantees that pairing. The commit trace is byte-identical to the
    /// interpreted path — the interpreter stays alive as the differential
    /// oracle for exactly this claim (see the [`decoded`](crate::decoded)
    /// module docs).
    pub fn run_decoded_into(
        &self,
        program: &Program,
        decoded: &DecodedProgram,
        max_steps: usize,
        trace: &mut ExecTrace,
        scratch: &mut GoldenScratch,
    ) {
        debug_assert!(decoded.matches(program), "pre-decoded image is not this program's text");
        let state = begin_run(
            scratch.policy,
            &scratch.snapshot,
            &mut scratch.mem,
            decoded.text(),
            program.data(),
            trace,
        );
        self.run_loop(&mut scratch.mem, state, max_steps, trace, |_mem, pc| {
            decoded.fetch(pc).map(|slot| (slot.word, slot.instr))
        });
    }

    /// The shared commit loop behind both fetch paths. `fetch` returns the
    /// raw word and its architectural decode for a pc, or `None` when the pc
    /// leaves the text region; the two closures (live `Memory::fetch` +
    /// `decode`, or a [`DecodedProgram`] lookup) are proven equivalent in the
    /// `decoded` module's tests.
    fn run_loop(
        &self,
        mem: &mut Memory,
        mut state: ArchState,
        max_steps: usize,
        trace: &mut ExecTrace,
        fetch: impl Fn(&Memory, u64) -> Option<(u32, Option<Instr>)>,
    ) {
        trace.clear();
        let text_end = TEXT_BASE + mem.text_len();
        let mut halt = HaltReason::StepLimit;

        for seq in 0..max_steps as u64 {
            let pc = state.pc;
            let Some((word, decoded)) = fetch(&*mem, pc) else {
                halt = HaltReason::PcOutOfText;
                break;
            };
            let outcome = match decoded {
                Some(instr) => execute_instr(&mut state, mem, instr, pc),
                None => InstrOutcome::except(pc, Exception::IllegalInstruction { word }),
            };

            let mut next_pc = outcome.next_pc;
            let mut retired = false;
            match outcome.exception {
                None => {
                    state.retire();
                    retired = true;
                }
                Some(Exception::EcallM) => {
                    halt = HaltReason::Ecall;
                }
                Some(Exception::Breakpoint) => {
                    if self.config.ebreak_retires {
                        state.retire();
                        retired = true;
                    }
                    if let Some(vector) = state.take_exception(Exception::Breakpoint, pc, text_end) {
                        next_pc = vector;
                    }
                }
                Some(exception) => {
                    if let Some(vector) = state.take_exception(exception, pc, text_end) {
                        next_pc = vector;
                    }
                }
            }
            let _ = retired;

            trace.push_commit(CommitRecord {
                seq,
                pc,
                instr: decoded,
                word,
                writeback: outcome.writeback,
                mem: outcome.mem,
                exception: outcome.exception,
                next_pc,
                instret: state.instret(),
            });

            if halt == HaltReason::Ecall {
                break;
            }
            state.pc = next_pc;
        }

        trace.finish(state, halt);
    }
}

/// Brings the scratch's memory and architectural state to the test-start
/// point according to `policy`, returning the state the run begins from.
///
/// The snapshot path recycles the previous run's final state out of `trace`
/// (its CSR map keeps its allocation; [`Snapshot::restore`] rewrites the
/// contents) and zeroes only the dirty memory pages. The full-reinit path is
/// the pre-snapshot code, kept verbatim as the differential oracle. Both hand
/// `run_loop` identical starting conditions — pinned by the equivalence tests
/// below and end-to-end by `tests/snapshot_reset_equivalence.rs`.
fn begin_run(
    policy: ResetPolicy,
    snapshot: &Snapshot,
    mem: &mut Memory,
    text: &[u8],
    data: &[u8],
    trace: &mut ExecTrace,
) -> ArchState {
    match policy {
        ResetPolicy::SnapshotReset => {
            mem.restore_with_program(text, data);
            let mut state = trace.take_final_state();
            snapshot.restore(&mut state);
            state
        }
        ResetPolicy::FullReinit => {
            mem.reset_with_program(text, data);
            ArchState::new()
        }
    }
}

/// Reusable per-campaign buffers for [`GoldenSim::run_into`]: the memory
/// image, the encoded text bytes, the pristine-state [`Snapshot`] and the
/// [`ResetPolicy`] governing how they are brought back between tests.
#[derive(Debug, Clone, Default)]
pub struct GoldenScratch {
    mem: Memory,
    text: Vec<u8>,
    snapshot: Snapshot,
    policy: ResetPolicy,
}

impl GoldenScratch {
    /// Creates empty scratch buffers using the default
    /// [`ResetPolicy::SnapshotReset`] (safe on a fresh scratch: nothing is
    /// dirty yet, so the first restore is trivially a full image load).
    ///
    /// The policy is a scratch property, not a simulator property, because it
    /// describes how *this* scratch's buffers are recycled; the environment
    /// switch lives one level up in `fuzzer::ExecScratch`, mirroring the
    /// decode cache.
    pub fn new() -> GoldenScratch {
        GoldenScratch::default()
    }

    /// Creates scratch buffers with an explicit reset policy
    /// ([`ResetPolicy::FullReinit`] selects the differential-oracle path).
    pub fn with_policy(policy: ResetPolicy) -> GoldenScratch {
        GoldenScratch { policy, ..GoldenScratch::default() }
    }

    /// Returns the reset policy this scratch recycles its buffers with.
    pub fn policy(&self) -> ResetPolicy {
        self.policy
    }

    /// Returns the dirty-page restore counters of the scratch's memory, for
    /// tests and benches.
    pub fn reset_stats(&self) -> ResetStats {
        self.mem.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::asm::parse_program;
    use riscv::program::DATA_BASE;

    fn run_asm(asm: &str) -> ExecTrace {
        let program = Program::from_instrs(parse_program(asm).expect("valid asm"));
        GoldenSim::new().run(&program, 1000)
    }

    #[test]
    fn arithmetic_and_termination() {
        let trace = run_asm(
            "addi a0, zero, 21\n\
             add a0, a0, a0\n\
             ecall\n",
        );
        assert_eq!(trace.halt_reason(), HaltReason::Ecall);
        assert_eq!(trace.final_state().reg(Gpr::A0), 42);
        // ecall does not retire.
        assert_eq!(trace.final_state().instret(), 2);
    }

    #[test]
    fn branches_follow_the_comparison() {
        let trace = run_asm(
            "addi a0, zero, 5\n\
             addi a1, zero, 5\n\
             beq a0, a1, 8\n\
             addi a2, zero, 99\n\
             addi a3, zero, 7\n\
             ecall\n",
        );
        assert_eq!(trace.final_state().reg(Gpr::A2), 0, "skipped instruction must not execute");
        assert_eq!(trace.final_state().reg(Gpr::A3), 7);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let trace = run_asm(
            "lui gp, 0x80010\n\
             addi t0, zero, -2\n\
             sd t0, 16(gp)\n\
             ld t1, 16(gp)\n\
             lw t2, 16(gp)\n\
             lbu t3, 16(gp)\n\
             ecall\n",
        );
        let state = trace.final_state();
        assert_eq!(state.reg(Gpr::T1), (-2i64) as u64);
        assert_eq!(state.reg(Gpr::T2), (-2i64) as u64, "lw sign-extends");
        assert_eq!(state.reg(Gpr::T3), 0xfe, "lbu zero-extends");
    }

    #[test]
    fn word_ops_sign_extend() {
        let trace = run_asm(
            "lui a0, 0x7ffff\n\
             addiw a1, a0, 2047\n\
             addw a2, a0, a0\n\
             ecall\n",
        );
        let state = trace.final_state();
        assert_eq!(state.reg(Gpr::A1), 0x7fff_f7ff);
        assert_eq!(state.reg(Gpr::A2) as i64, (0x7fff_f000i64 * 2) as i32 as i64);
    }

    #[test]
    fn division_corner_cases_follow_the_spec() {
        let trace = run_asm(
            "addi a0, zero, 10\n\
             addi a1, zero, 0\n\
             div a2, a0, a1\n\
             rem a3, a0, a1\n\
             divu a4, a0, a1\n\
             remu a5, a0, a1\n\
             ecall\n",
        );
        let state = trace.final_state();
        assert_eq!(state.reg(Gpr::A2), u64::MAX, "signed div by zero gives -1");
        assert_eq!(state.reg(Gpr::A3), 10, "signed rem by zero gives dividend");
        assert_eq!(state.reg(Gpr::A4), u64::MAX);
        assert_eq!(state.reg(Gpr::A5), 10);
    }

    #[test]
    fn mulh_variants_compute_the_high_half() {
        let trace = run_asm(
            "addi a0, zero, -1\n\
             addi a1, zero, -1\n\
             mulhu a2, a0, a1\n\
             mulh a3, a0, a1\n\
             ecall\n",
        );
        let state = trace.final_state();
        assert_eq!(state.reg(Gpr::A2), 0xffff_ffff_ffff_fffe, "(-1)*(-1) unsigned high half");
        assert_eq!(state.reg(Gpr::A3), 0, "(-1)*(-1) signed high half");
    }

    #[test]
    fn csr_accesses_read_and_write() {
        let trace = run_asm(
            "addi t0, zero, 55\n\
             csrrw zero, mscratch, t0\n\
             csrrs t1, mscratch, zero\n\
             csrrwi t2, mscratch, 9\n\
             csrrc t3, mscratch, zero\n\
             ecall\n",
        );
        let state = trace.final_state();
        assert_eq!(state.reg(Gpr::T1), 55);
        assert_eq!(state.reg(Gpr::T2), 55, "csrrwi returns the old value");
        assert_eq!(state.reg(Gpr::T3), 9);
    }

    #[test]
    fn unimplemented_csr_raises_illegal_instruction() {
        let trace = run_asm(
            "csrrw t0, 0x5c0, zero\n\
             addi a0, zero, 1\n\
             ecall\n",
        );
        let exceptions: Vec<_> = trace.faults().map(|(_, e)| e).collect();
        assert!(matches!(exceptions.as_slice(), [Exception::IllegalInstruction { .. }]));
        // Execution continues after the fault (no trap vector configured).
        assert_eq!(trace.final_state().reg(Gpr::A0), 1);
    }

    #[test]
    fn write_to_read_only_csr_is_illegal_but_read_is_not() {
        let trace = run_asm(
            "csrrw t0, mhartid, zero\n\
             csrrs t1, mhartid, zero\n\
             ecall\n",
        );
        let exceptions: Vec<_> = trace.faults().map(|(_, e)| e).collect();
        assert_eq!(exceptions.len(), 1, "only the write faults");
    }

    #[test]
    fn invalid_address_access_faults() {
        let trace = run_asm(
            "addi t0, zero, 64\n\
             ld t1, 0(t0)\n\
             sd t0, 0(t0)\n\
             ecall\n",
        );
        let exceptions: Vec<_> = trace.faults().map(|(_, e)| e).collect();
        assert_eq!(exceptions.len(), 2);
        assert!(exceptions.iter().all(|e| e.is_access_fault()));
    }

    #[test]
    fn misaligned_access_raises_misaligned_exception() {
        let trace = run_asm(
            "lui gp, 0x80010\n\
             ld t1, 3(gp)\n\
             ecall\n",
        );
        let exceptions: Vec<_> = trace.faults().map(|(_, e)| e).collect();
        assert!(matches!(exceptions.as_slice(), [Exception::LoadAddrMisaligned { .. }]));
    }

    #[test]
    fn ebreak_retires_and_updates_trap_csrs() {
        let trace = run_asm(
            "ebreak\n\
             addi a0, zero, 3\n\
             ecall\n",
        );
        assert_eq!(trace.final_state().csr(CsrAddr::MCAUSE), 3);
        // ebreak + addi retire; ecall does not.
        assert_eq!(trace.final_state().instret(), 2);
        assert_eq!(trace.final_state().reg(Gpr::A0), 3);
    }

    #[test]
    fn trap_vector_redirects_when_configured() {
        // mtvec = TEXT_BASE + 0x14 (the 6th instruction), so the illegal CSR
        // access jumps to the handler instead of falling through.
        let trace = run_asm(
            "lui t0, 0x80000\n\
             addi t0, t0, 20\n\
             csrrw zero, mtvec, t0\n\
             csrrw t1, 0x5c0, zero\n\
             addi a0, zero, 111\n\
             addi a1, zero, 222\n\
             ecall\n",
        );
        let state = trace.final_state();
        assert_eq!(state.reg(Gpr::A0), 0, "instruction skipped by the trap redirect");
        assert_eq!(state.reg(Gpr::A1), 222);
    }

    #[test]
    fn mret_returns_to_mepc() {
        let trace = run_asm(
            "lui t0, 0x80000\n\
             addi t0, t0, 16\n\
             csrrw zero, mepc, t0\n\
             mret\n\
             addi a0, zero, 5\n\
             ecall\n",
        );
        assert_eq!(trace.final_state().reg(Gpr::A0), 5);
        assert_eq!(trace.halt_reason(), HaltReason::Ecall);
    }

    #[test]
    fn running_off_the_text_ends_the_run() {
        let trace = run_asm("addi a0, zero, 1\naddi a1, zero, 2\n");
        assert_eq!(trace.halt_reason(), HaltReason::PcOutOfText);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn step_limit_is_respected() {
        // An infinite loop: jal zero, 0 jumps to itself.
        let program = Program::from_instrs(vec![Instr::jal(Gpr::Zero, 0)]);
        let trace = GoldenSim::new().run(&program, 25);
        assert_eq!(trace.halt_reason(), HaltReason::StepLimit);
        assert_eq!(trace.len(), 25);
    }

    #[test]
    fn jalr_links_and_jumps() {
        let trace = run_asm(
            "lui t0, 0x80000\n\
             addi t0, t0, 16\n\
             jalr ra, 0(t0)\n\
             addi a0, zero, 99\n\
             addi a1, zero, 1\n\
             ecall\n",
        );
        let state = trace.final_state();
        assert_eq!(state.reg(Gpr::A0), 0, "skipped by the jump");
        assert_eq!(state.reg(Gpr::A1), 1);
        assert_eq!(state.reg(Gpr::Ra), TEXT_BASE + 12);
    }

    #[test]
    fn instret_visible_through_csr_reads() {
        let trace = run_asm(
            "addi a0, zero, 1\n\
             addi a0, zero, 2\n\
             csrrs a1, minstret, zero\n\
             ecall\n",
        );
        assert_eq!(trace.final_state().reg(Gpr::A1), 2);
    }

    #[test]
    fn commit_records_carry_memory_accesses() {
        let trace = run_asm(
            "lui gp, 0x80010\n\
             addi t0, zero, 77\n\
             sd t0, 0(gp)\n\
             ecall\n",
        );
        let store = trace.commits().iter().find(|c| c.mem.is_some()).expect("store committed");
        let access = store.mem.unwrap();
        assert!(access.is_store);
        assert_eq!(access.addr, DATA_BASE);
        assert_eq!(access.value, 77);
    }

    #[test]
    fn deterministic_across_runs() {
        let program = Program::from_instrs(parse_program("addi a0, zero, 9\nmul a1, a0, a0\necall\n").unwrap());
        let sim = GoldenSim::new();
        assert_eq!(sim.run(&program, 100), sim.run(&program, 100));
    }

    #[test]
    fn store_to_text_is_rejected_so_predecoded_images_stay_valid() {
        // The decode cache relies on text being immutable during execution:
        // this pins that a store aimed at the text region faults instead of
        // landing (see `Memory::fetch` and the `decoded` module docs).
        let trace = run_asm(
            "lui t0, 0x80000\n\
             addi t1, zero, 1\n\
             sw t1, 0(t0)\n\
             sb t1, 4(t0)\n\
             lw a0, 0(t0)\n\
             ecall\n",
        );
        let exceptions: Vec<_> = trace.faults().map(|(_, e)| e).collect();
        assert!(
            matches!(
                exceptions.as_slice(),
                [Exception::StoreAccessFault { .. }, Exception::StoreAccessFault { .. }]
            ),
            "both stores into text must fault, got {exceptions:?}"
        );
        // The word at TEXT_BASE is still the original `lui` encoding, not 1.
        let load = trace.commits().iter().find(|c| matches!(c.mem, Some(m) if !m.is_store));
        assert_eq!(load.expect("load committed").mem.unwrap().value & 0xffff_ffff, 0x8000_02b7);
    }

    /// A corpus exercising stores, traps, step limits, undecodable words and
    /// the empty program — shared by the decode-cache and snapshot-reset
    /// differential tests.
    fn differential_corpus() -> Vec<Program> {
        let mut programs = vec![
            Program::new(), // empty: one phantom zero word, PcOutOfText
            Program::from_instrs(parse_program("addi a0, zero, 9\nmul a1, a0, a0\necall\n").unwrap()),
            Program::from_instrs(parse_program(
                "lui gp, 0x80010\n\
                 addi t0, zero, -2\n\
                 sd t0, 16(gp)\n\
                 ld t1, 16(gp)\n\
                 ebreak\n\
                 csrrw t2, 0x5c0, zero\n\
                 ecall\n",
            ).unwrap()),
            Program::from_instrs(vec![Instr::jal(Gpr::Zero, 0)]), // step limit
        ];
        // An undecodable raw-override word exercises the cached decode-fault
        // slot (`instr == None`).
        let mut with_raw = Program::from_instrs(
            parse_program("addi a0, zero, 1\nnop\necall\n").unwrap(),
        );
        with_raw.set_raw(1, 0xffff_ffff);
        programs.push(with_raw);
        programs
    }

    #[test]
    fn snapshot_restore_runs_are_byte_identical_to_full_reinit_runs() {
        let sim = GoldenSim::new();
        let mut restored_scratch = GoldenScratch::new();
        assert!(restored_scratch.policy().is_snapshot(), "snapshot reset is the default");
        let mut reinit_scratch = GoldenScratch::with_policy(ResetPolicy::FullReinit);
        let mut restored = ExecTrace::default();
        let mut reinit = ExecTrace::default();
        // Two passes over the corpus so each program also runs with dirt left
        // behind by *every other* program, not just its predecessor.
        for pass in 0..2 {
            for program in &differential_corpus() {
                sim.run_into(program, 50, &mut restored, &mut restored_scratch);
                sim.run_into(program, 50, &mut reinit, &mut reinit_scratch);
                assert_eq!(restored, reinit, "pass {pass}: restore diverged for:\n{program}");
                // The decoded fast path must agree under both policies too.
                let decoded = DecodedProgram::from_program(program);
                sim.run_decoded_into(program, &decoded, 50, &mut restored, &mut restored_scratch);
                sim.run_decoded_into(program, &decoded, 50, &mut reinit, &mut reinit_scratch);
                assert_eq!(restored, reinit, "pass {pass}: decoded restore diverged for:\n{program}");
            }
        }
        let stats = restored_scratch.reset_stats();
        assert!(stats.restores > 0 && stats.units_restored > 0, "the snapshot path really ran dirty restores: {stats:?}");
        assert_eq!(reinit_scratch.reset_stats().restores, 0, "the oracle path never dirty-restores");
    }

    #[test]
    fn decoded_path_is_byte_identical_to_the_interpreted_path() {
        use crate::decoded::DecodedProgram;

        let mut programs = vec![
            Program::new(), // empty: one phantom zero word, PcOutOfText
            Program::from_instrs(parse_program("addi a0, zero, 9\nmul a1, a0, a0\necall\n").unwrap()),
            Program::from_instrs(parse_program(
                "lui gp, 0x80010\n\
                 addi t0, zero, -2\n\
                 sd t0, 16(gp)\n\
                 ld t1, 16(gp)\n\
                 ebreak\n\
                 csrrw t2, 0x5c0, zero\n\
                 ecall\n",
            ).unwrap()),
            Program::from_instrs(vec![Instr::jal(Gpr::Zero, 0)]), // step limit
        ];
        // An undecodable raw-override word exercises the cached decode-fault
        // slot (`instr == None`).
        let mut with_raw = Program::from_instrs(
            parse_program("addi a0, zero, 1\nnop\necall\n").unwrap(),
        );
        with_raw.set_raw(1, 0xffff_ffff);
        programs.push(with_raw);

        let sim = GoldenSim::new();
        let mut scratch = GoldenScratch::new();
        let mut interpreted = ExecTrace::default();
        let mut cached = ExecTrace::default();
        for program in &programs {
            let decoded = DecodedProgram::from_program(program);
            sim.run_into(program, 50, &mut interpreted, &mut scratch);
            sim.run_decoded_into(program, &decoded, 50, &mut cached, &mut scratch);
            assert_eq!(cached, interpreted, "decoded run diverged for:\n{program}");
        }
    }
}
