//! Sparse byte-addressable memory with region-based access control and
//! per-page dirty tracking.

use std::collections::{BTreeMap, BTreeSet};

use riscv::program::{DATA_BASE, DATA_SIZE, TEXT_BASE};
use serde::{Deserialize, Serialize};

use crate::snapshot::{DirtyTracker, ResetStats};
use crate::PHYS_ADDR_MASK;

const PAGE_BITS: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_BITS;

/// The kind of memory region an address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Program text, starting at [`TEXT_BASE`]: readable and executable, not
    /// writable.
    Text,
    /// Scratch data region, starting at [`DATA_BASE`]: readable and writable.
    Data,
    /// Anything else: no access allowed, touching it raises an access fault.
    Unmapped,
}

/// One allocated physical page plus its dirty bit.
///
/// `dirty` is the first-touch dedup flag for the owning memory's
/// [`DirtyTracker`]: a clean page is all-zero (the invariant the dirty-reset
/// path relies on — see [`Memory::restore_with_program`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Page {
    bytes: Vec<u8>,
    dirty: bool,
}

impl Page {
    fn zeroed() -> Page {
        Page { bytes: vec![0u8; PAGE_SIZE as usize], dirty: false }
    }
}

/// Sparse, page-allocated physical memory.
///
/// Reads from allocated-but-unwritten bytes return zero, matching the
/// zero-initialised main memory of the simulated SoC. Reads from unmapped
/// regions are rejected by the access-control helpers; the raw
/// [`read_byte`](Memory::read_byte)/[`write_byte`](Memory::write_byte)
/// accessors ignore permissions so that processor models can implement buggy
/// behaviour on top of the same storage.
///
/// # Dirty-page tracking
///
/// Every byte write funnels through [`write_byte`](Memory::write_byte), which
/// marks the touched page dirty on first touch. This maintains the invariant
/// **clean ⇒ all-zero**: a page is only ever non-zero if its dirty bit is set
/// and it sits on the tracker's touched list. The fuzzing hot path exploits
/// it via [`restore_with_program`](Memory::restore_with_program), which zeroes
/// only the dirty pages instead of every allocated page;
/// [`reset_with_program`](Memory::reset_with_program) remains the full-reinit
/// differential oracle. Equality ([`PartialEq`]) compares memory *contents*
/// (text length plus bytes, with absent pages reading as zero), so a restored
/// memory compares equal to a freshly built one regardless of which pages
/// happen to be allocated or how they were cleaned.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Memory {
    pages: BTreeMap<u64, Page>,
    dirty: DirtyTracker,
    text_len: u64,
}

impl Memory {
    /// Creates an empty memory with no program loaded.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Creates a memory image with `text` loaded at [`TEXT_BASE`] and `data`
    /// at [`DATA_BASE`].
    pub fn with_program(text: &[u8], data: &[u8]) -> Memory {
        let mut mem = Memory::new();
        mem.load_text(text);
        mem.load_data(data);
        mem
    }

    /// Resets the memory to the all-zero state and loads a fresh program
    /// image, reusing every already-allocated page.
    ///
    /// This is the full-reinit path: it unconditionally zeroes **every**
    /// allocated page, whether or not the previous test touched it. It stays
    /// alive as the differential oracle the dirty-restore path
    /// ([`restore_with_program`](Memory::restore_with_program)) is
    /// byte-compared against.
    pub fn reset_with_program(&mut self, text: &[u8], data: &[u8]) {
        for page in self.pages.values_mut() {
            page.bytes.fill(0);
            page.dirty = false;
        }
        self.dirty.clear();
        self.text_len = 0;
        self.load_text(text);
        self.load_data(data);
    }

    /// Like [`reset_with_program`](Memory::reset_with_program), but zeroes
    /// only the pages dirtied since the last reset/restore — O(touched pages)
    /// instead of O(allocated pages).
    ///
    /// Correctness rests on the clean-⇒-all-zero invariant (see the type-level
    /// docs): pages absent from the dirty list were never written since they
    /// were last zeroed, so skipping them leaves them exactly as a full reset
    /// would. Reloading the text/data images re-marks the image pages, which
    /// is the steady-state dirty set of a test that writes little memory.
    pub fn restore_with_program(&mut self, text: &[u8], data: &[u8]) {
        let pages = &mut self.pages;
        self.dirty.restore_units(|page_id| {
            if let Some(page) = pages.get_mut(&page_id) {
                page.bytes.fill(0);
                page.dirty = false;
            }
        });
        self.text_len = 0;
        self.load_text(text);
        self.load_data(data);
    }

    /// Loads the program text image at [`TEXT_BASE`].
    pub fn load_text(&mut self, text: &[u8]) {
        self.text_len = text.len() as u64;
        self.write_bytes_raw(TEXT_BASE, text);
    }

    /// Loads the initial data image at [`DATA_BASE`].
    pub fn load_data(&mut self, data: &[u8]) {
        self.write_bytes_raw(DATA_BASE, data);
    }

    /// Returns the number of bytes of loaded program text.
    pub fn text_len(&self) -> u64 {
        self.text_len
    }

    /// Returns the ids of the pages dirtied since the last reset/restore, in
    /// first-touch order (a page id is `physical address >> 12`).
    pub fn dirty_pages(&self) -> &[u64] {
        self.dirty.touched()
    }

    /// Returns the dirty-restore work counters (see [`ResetStats`]).
    pub fn reset_stats(&self) -> ResetStats {
        self.dirty.stats()
    }

    /// Classifies a (physical) address into its [`Region`].
    pub fn region_of(&self, addr: u64) -> Region {
        let addr = addr & PHYS_ADDR_MASK;
        if addr >= TEXT_BASE && addr < TEXT_BASE + self.text_len.max(4) {
            Region::Text
        } else if (DATA_BASE..DATA_BASE + DATA_SIZE).contains(&addr) {
            Region::Data
        } else {
            Region::Unmapped
        }
    }

    /// Returns `true` when a `width`-byte data load at `addr` is permitted.
    pub fn can_load(&self, addr: u64, width: u64) -> bool {
        let last = addr.wrapping_add(width.saturating_sub(1));
        self.region_of(addr) != Region::Unmapped && self.region_of(last) != Region::Unmapped
    }

    /// Returns `true` when a `width`-byte store at `addr` is permitted.
    ///
    /// Only the `Data` region is writable (first *and* last byte of the
    /// access must fall inside it), so program text can never be modified by
    /// an executing store — the invariant [`fetch`](Memory::fetch) and the
    /// decode cache build on.
    pub fn can_store(&self, addr: u64, width: u64) -> bool {
        let last = addr.wrapping_add(width.saturating_sub(1));
        self.region_of(addr) == Region::Data && self.region_of(last) == Region::Data
    }

    /// Reads one byte, ignoring permissions. Unwritten bytes read as zero.
    pub fn read_byte(&self, addr: u64) -> u8 {
        let addr = addr & PHYS_ADDR_MASK;
        let page = addr >> PAGE_BITS;
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        self.pages.get(&page).map_or(0, |p| p.bytes[offset])
    }

    /// Writes one byte, ignoring permissions.
    ///
    /// This is the single mutation choke point for page contents: it marks
    /// the page dirty on first touch, which is what keeps the dirty-restore
    /// path (`restore_with_program`) equivalent to a full reset.
    pub fn write_byte(&mut self, addr: u64, value: u8) {
        let addr = addr & PHYS_ADDR_MASK;
        let page_id = addr >> PAGE_BITS;
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        let page = self.pages.entry(page_id).or_insert_with(Page::zeroed);
        if !page.dirty {
            page.dirty = true;
            self.dirty.mark(page_id);
        }
        page.bytes[offset] = value;
    }

    /// Reads `width` bytes little-endian, zero-extended into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported access width {width}");
        let mut value = 0u64;
        for i in 0..width {
            value |= u64::from(self.read_byte(addr.wrapping_add(i))) << (8 * i);
        }
        value
    }

    /// Writes the low `width` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, value: u64, width: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported access width {width}");
        for i in 0..width {
            self.write_byte(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Fetches the 32-bit instruction word at `addr`, or `None` when the
    /// address is outside the text region or misaligned.
    ///
    /// # Text is immutable while a program runs
    ///
    /// Between [`reset_with_program`](Memory::reset_with_program) (or
    /// [`restore_with_program`](Memory::restore_with_program)) calls, the
    /// bytes this function reads cannot change: every store the executors
    /// issue is gated on [`can_store`](Memory::can_store), which only admits
    /// the `Data` region (both TheHuzz/MABFuzz simulators route all
    /// program-visible writes through `execute_instr`, and the V1–V7 bug
    /// deviations never write memory directly — V5 only suppresses *load*
    /// faults). The raw [`write_byte`](Memory::write_byte) escape hatch
    /// exists for loaders and future buggy models, but nothing on the
    /// execution path uses it. This is the invariant that makes caching
    /// pre-decoded text by program hash sound
    /// (see [`DecodedProgram`](crate::DecodedProgram)): a fetch at a given
    /// address returns the same word for the whole run, so its decode can be
    /// computed once. Pinned by the store-to-text tests here, in `exec`, and
    /// in `proc-sim`.
    pub fn fetch(&self, addr: u64) -> Option<u32> {
        let addr = addr & PHYS_ADDR_MASK;
        if !addr.is_multiple_of(4) || self.region_of(addr) != Region::Text {
            return None;
        }
        Some(self.read_uint(addr, 4) as u32)
    }

    fn write_bytes_raw(&mut self, base: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(base + i as u64, *b);
        }
    }
}

/// Content equality: two memories are equal when they hold the same text
/// length and the same bytes at every address, treating unallocated pages as
/// zero. Dirty-tracking metadata and page-allocation differences are
/// deliberately invisible — a dirty-restored memory must compare equal to a
/// freshly constructed one.
impl PartialEq for Memory {
    fn eq(&self, other: &Memory) -> bool {
        if self.text_len != other.text_len {
            return false;
        }
        const ZERO_PAGE: [u8; PAGE_SIZE as usize] = [0u8; PAGE_SIZE as usize];
        let ids: BTreeSet<u64> = self.pages.keys().chain(other.pages.keys()).copied().collect();
        ids.into_iter().all(|id| {
            let a = self.pages.get(&id).map_or(&ZERO_PAGE[..], |p| &p.bytes[..]);
            let b = other.pages.get(&id).map_or(&ZERO_PAGE[..], |p| &p.bytes[..]);
            a == b
        })
    }
}

impl Eq for Memory {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_byte(DATA_BASE), 0);
        assert_eq!(mem.read_uint(DATA_BASE, 8), 0);
    }

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut mem = Memory::new();
        for width in [1u64, 2, 4, 8] {
            let value = 0x1122_3344_5566_7788u64;
            mem.write_uint(DATA_BASE + 64, value, width);
            let mask = if width == 8 { u64::MAX } else { (1 << (8 * width)) - 1 };
            assert_eq!(mem.read_uint(DATA_BASE + 64, width), value & mask);
        }
    }

    #[test]
    fn regions_are_classified() {
        let mem = Memory::with_program(&[0u8; 64], &[0u8; 16]);
        assert_eq!(mem.region_of(TEXT_BASE), Region::Text);
        assert_eq!(mem.region_of(TEXT_BASE + 63), Region::Text);
        assert_eq!(mem.region_of(TEXT_BASE + 64), Region::Unmapped);
        assert_eq!(mem.region_of(DATA_BASE), Region::Data);
        assert_eq!(mem.region_of(DATA_BASE + DATA_SIZE), Region::Unmapped);
        assert_eq!(mem.region_of(0x1000), Region::Unmapped);
    }

    #[test]
    fn permissions_follow_regions() {
        let mem = Memory::with_program(&[0u8; 64], &[]);
        assert!(mem.can_load(TEXT_BASE, 4));
        assert!(!mem.can_store(TEXT_BASE, 4));
        assert!(mem.can_store(DATA_BASE, 8));
        assert!(mem.can_load(DATA_BASE + DATA_SIZE - 8, 8));
        assert!(!mem.can_load(DATA_BASE + DATA_SIZE - 4, 8));
        assert!(!mem.can_load(0x0, 1));
    }

    #[test]
    fn fetch_requires_alignment_and_text_region() {
        let text: Vec<u8> = 0x0000_0013u32.to_le_bytes().into();
        let mem = Memory::with_program(&text, &[]);
        assert_eq!(mem.fetch(TEXT_BASE), Some(0x13));
        assert_eq!(mem.fetch(TEXT_BASE + 2), None);
        assert_eq!(mem.fetch(DATA_BASE), None);
    }

    #[test]
    fn no_store_width_can_touch_the_text_region() {
        // The decode-cache soundness argument (see `fetch`): every width and
        // every alignment of store that overlaps text — including one
        // straddling the text/unmapped boundary — is rejected.
        let text_len = 64u64;
        let mem = Memory::with_program(&vec![0u8; text_len as usize], &[0u8; 16]);
        for width in [1u64, 2, 4, 8] {
            for offset in 0..text_len {
                assert!(
                    !mem.can_store(TEXT_BASE + offset, width),
                    "store width {width} at text+{offset} must be rejected"
                );
            }
            // A store ending just before text, or starting just after, is a
            // plain unmapped fault, not a text write.
            assert!(!mem.can_store(TEXT_BASE - width, width));
            assert!(!mem.can_store(TEXT_BASE + text_len, width));
        }
        // Data stores stay permitted — the rejection is about the region, not
        // the operation.
        assert!(mem.can_store(DATA_BASE, 8));
    }

    #[test]
    fn addresses_wrap_to_32_bits() {
        let mut mem = Memory::new();
        mem.write_byte(0xffff_ffff_8001_0000, 0xab);
        assert_eq!(mem.read_byte(DATA_BASE), 0xab);
        let mem2 = Memory::with_program(&[0u8; 8], &[]);
        assert_eq!(mem2.region_of(0xffff_ffff_8000_0000), Region::Text);
    }

    /// The pages a `width`-byte access starting at `addr` touches, mirroring
    /// the per-byte masking `write_uint`/`write_byte` perform.
    fn expected_pages(addr: u64, width: u64) -> BTreeSet<u64> {
        (0..width)
            .map(|i| (addr.wrapping_add(i) & PHYS_ADDR_MASK) >> PAGE_BITS)
            .collect()
    }

    #[test]
    fn every_store_width_and_offset_marks_exactly_the_touched_pages() {
        // Exhaustive width × page-offset sweep of the dirty-marking path,
        // including accesses straddling a page boundary: a store must mark
        // exactly the pages it touches — no more (restores stay O(touched)),
        // no fewer (a missed mark would break clean-⇒-all-zero and leak
        // bytes into the next test).
        for width in [1u64, 2, 4, 8] {
            for offset in 0..PAGE_SIZE {
                let addr = DATA_BASE + offset;
                let mut mem = Memory::new();
                mem.write_uint(addr, u64::MAX, width);
                let marked: BTreeSet<u64> = mem.dirty_pages().iter().copied().collect();
                assert_eq!(
                    marked,
                    expected_pages(addr, width),
                    "width {width} at page offset {offset:#x}"
                );
                assert_eq!(
                    mem.dirty_pages().len(),
                    marked.len(),
                    "no duplicate marks for width {width} at offset {offset:#x}"
                );
            }
        }
        // Address wrap-around: the per-byte 32-bit masking also governs which
        // page gets marked.
        let mut mem = Memory::new();
        mem.write_uint(0xffff_fffe, u64::MAX, 4);
        let marked: BTreeSet<u64> = mem.dirty_pages().iter().copied().collect();
        assert_eq!(marked, expected_pages(0xffff_fffe, 4));
        assert!(marked.contains(&0), "wrapped bytes land on (and mark) page 0");
    }

    #[test]
    fn writes_of_zero_still_mark_the_page() {
        // Marking is per write, not per value: a zero store on a fresh page
        // keeps the invariant trivially, but on an image page it must still
        // be tracked or a *later* nonzero write would be missed by dedup.
        let mut mem = Memory::new();
        mem.write_byte(DATA_BASE, 0);
        assert_eq!(mem.dirty_pages().len(), 1);
    }

    #[test]
    fn restore_matches_full_reset_byte_for_byte() {
        let text: Vec<u8> =
            (0..256u32).flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes()).collect();
        let data = [7u8, 0, 0xff, 3];
        let mut restored = Memory::new();
        let mut reset = Memory::new();
        for round in 0..3u64 {
            restored.restore_with_program(&text, &data);
            reset.reset_with_program(&text, &data);
            assert_eq!(restored, reset, "round {round}: images diverge after setup");
            // Scribble over data pages (several, including far offsets) so
            // the next round has real dirt to clean.
            for offset in [0u64, 8, PAGE_SIZE - 1, PAGE_SIZE + 5, 3 * PAGE_SIZE] {
                restored.write_uint(DATA_BASE + offset * (round + 1) % DATA_SIZE, !round, 8);
                reset.write_uint(DATA_BASE + offset * (round + 1) % DATA_SIZE, !round, 8);
            }
        }
        let stats = restored.reset_stats();
        assert_eq!(stats.restores, 3);
        assert!(stats.units_restored > 0, "later rounds had dirty pages to clean");
    }

    #[test]
    fn restore_cleans_pages_the_new_image_does_not_cover() {
        // A page dirtied by the old test but untouched by the new image must
        // read zero after a restore, exactly like after a full reset.
        let mut mem = Memory::new();
        mem.restore_with_program(&[0x13, 0, 0, 0], &[]);
        mem.write_uint(DATA_BASE + 5 * PAGE_SIZE, 0xdead_beef, 4);
        mem.restore_with_program(&[0x13, 0, 0, 0], &[]);
        assert_eq!(mem.read_uint(DATA_BASE + 5 * PAGE_SIZE, 4), 0);
        assert_eq!(mem, Memory::with_program(&[0x13, 0, 0, 0], &[]));
    }

    #[test]
    fn content_equality_ignores_page_allocation() {
        let mut touched = Memory::with_program(&[1, 2, 3, 4], &[9]);
        touched.write_byte(DATA_BASE + 7 * PAGE_SIZE, 1);
        touched.write_byte(DATA_BASE + 7 * PAGE_SIZE, 0); // back to zero, page stays allocated
        let fresh = Memory::with_program(&[1, 2, 3, 4], &[9]);
        assert_eq!(touched, fresh, "an allocated all-zero page equals an absent page");
        let mut different = Memory::with_program(&[1, 2, 3, 4], &[9]);
        different.write_byte(DATA_BASE + 16, 1);
        assert_ne!(touched, different);
        assert_ne!(fresh, Memory::with_program(&[1, 2, 3, 4, 5, 6, 7, 8], &[9]), "text length differs");
    }

    proptest! {
        #[test]
        fn byte_round_trip(offset in 0u64..DATA_SIZE, value in any::<u8>()) {
            let mut mem = Memory::new();
            mem.write_byte(DATA_BASE + offset, value);
            prop_assert_eq!(mem.read_byte(DATA_BASE + offset), value);
        }

        #[test]
        fn uint_round_trip(offset in 0u64..(DATA_SIZE - 8), value in any::<u64>()) {
            let mut mem = Memory::new();
            mem.write_uint(DATA_BASE + offset, value, 8);
            prop_assert_eq!(mem.read_uint(DATA_BASE + offset, 8), value);
        }

        #[test]
        fn restore_equals_reset_under_random_write_sequences(
            writes in proptest::collection::vec((0u64..DATA_SIZE, any::<u64>(), 0usize..4), 0..24),
            text in proptest::collection::vec(any::<u8>(), 0..64),
            data in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            // Dirty both memories with the same random write sequence, then
            // bring one back with the restore path and the other with the
            // full-reinit oracle: contents must match a pristine image.
            let mut restored = Memory::new();
            let mut reset = Memory::new();
            restored.restore_with_program(&text, &data);
            reset.reset_with_program(&text, &data);
            for (offset, value, width_idx) in writes {
                let width = [1u64, 2, 4, 8][width_idx];
                let addr = DATA_BASE + (offset & !(width - 1)).min(DATA_SIZE - width);
                restored.write_uint(addr, value, width);
                reset.write_uint(addr, value, width);
            }
            restored.restore_with_program(&text, &data);
            reset.reset_with_program(&text, &data);
            prop_assert_eq!(&restored, &reset);
            prop_assert_eq!(&restored, &Memory::with_program(&text, &data));
        }
    }
}
