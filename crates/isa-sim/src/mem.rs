//! Sparse byte-addressable memory with region-based access control.

use std::collections::BTreeMap;

use riscv::program::{DATA_BASE, DATA_SIZE, TEXT_BASE};
use serde::{Deserialize, Serialize};

use crate::PHYS_ADDR_MASK;

const PAGE_BITS: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_BITS;

/// The kind of memory region an address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Program text, starting at [`TEXT_BASE`]: readable and executable, not
    /// writable.
    Text,
    /// Scratch data region, starting at [`DATA_BASE`]: readable and writable.
    Data,
    /// Anything else: no access allowed, touching it raises an access fault.
    Unmapped,
}

/// Sparse, page-allocated physical memory.
///
/// Reads from allocated-but-unwritten bytes return zero, matching the
/// zero-initialised main memory of the simulated SoC. Reads from unmapped
/// regions are rejected by the access-control helpers; the raw
/// [`read_byte`](Memory::read_byte)/[`write_byte`](Memory::write_byte)
/// accessors ignore permissions so that processor models can implement buggy
/// behaviour on top of the same storage.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    pages: BTreeMap<u64, Vec<u8>>,
    text_len: u64,
}

impl Memory {
    /// Creates an empty memory with no program loaded.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Creates a memory image with `text` loaded at [`TEXT_BASE`] and `data`
    /// at [`DATA_BASE`].
    pub fn with_program(text: &[u8], data: &[u8]) -> Memory {
        let mut mem = Memory::new();
        mem.load_text(text);
        mem.load_data(data);
        mem
    }

    /// Resets the memory to the all-zero state and loads a fresh program
    /// image, reusing every already-allocated page.
    ///
    /// This is the buffer-reuse path of the fuzzing hot loop: a simulation
    /// scratch keeps one `Memory` per harness and re-images it per test, so
    /// steady-state fuzzing allocates no new pages (the reachable address
    /// space is bounded by the text and data regions).
    pub fn reset_with_program(&mut self, text: &[u8], data: &[u8]) {
        for page in self.pages.values_mut() {
            page.fill(0);
        }
        self.text_len = 0;
        self.load_text(text);
        self.load_data(data);
    }

    /// Loads the program text image at [`TEXT_BASE`].
    pub fn load_text(&mut self, text: &[u8]) {
        self.text_len = text.len() as u64;
        self.write_bytes_raw(TEXT_BASE, text);
    }

    /// Loads the initial data image at [`DATA_BASE`].
    pub fn load_data(&mut self, data: &[u8]) {
        self.write_bytes_raw(DATA_BASE, data);
    }

    /// Returns the number of bytes of loaded program text.
    pub fn text_len(&self) -> u64 {
        self.text_len
    }

    /// Classifies a (physical) address into its [`Region`].
    pub fn region_of(&self, addr: u64) -> Region {
        let addr = addr & PHYS_ADDR_MASK;
        if addr >= TEXT_BASE && addr < TEXT_BASE + self.text_len.max(4) {
            Region::Text
        } else if (DATA_BASE..DATA_BASE + DATA_SIZE).contains(&addr) {
            Region::Data
        } else {
            Region::Unmapped
        }
    }

    /// Returns `true` when a `width`-byte data load at `addr` is permitted.
    pub fn can_load(&self, addr: u64, width: u64) -> bool {
        let last = addr.wrapping_add(width.saturating_sub(1));
        self.region_of(addr) != Region::Unmapped && self.region_of(last) != Region::Unmapped
    }

    /// Returns `true` when a `width`-byte store at `addr` is permitted.
    ///
    /// Only the `Data` region is writable (first *and* last byte of the
    /// access must fall inside it), so program text can never be modified by
    /// an executing store — the invariant [`fetch`](Memory::fetch) and the
    /// decode cache build on.
    pub fn can_store(&self, addr: u64, width: u64) -> bool {
        let last = addr.wrapping_add(width.saturating_sub(1));
        self.region_of(addr) == Region::Data && self.region_of(last) == Region::Data
    }

    /// Reads one byte, ignoring permissions. Unwritten bytes read as zero.
    pub fn read_byte(&self, addr: u64) -> u8 {
        let addr = addr & PHYS_ADDR_MASK;
        let page = addr >> PAGE_BITS;
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        self.pages.get(&page).map_or(0, |p| p[offset])
    }

    /// Writes one byte, ignoring permissions.
    pub fn write_byte(&mut self, addr: u64, value: u8) {
        let addr = addr & PHYS_ADDR_MASK;
        let page = addr >> PAGE_BITS;
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        self.pages.entry(page).or_insert_with(|| vec![0u8; PAGE_SIZE as usize])[offset] = value;
    }

    /// Reads `width` bytes little-endian, zero-extended into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported access width {width}");
        let mut value = 0u64;
        for i in 0..width {
            value |= u64::from(self.read_byte(addr.wrapping_add(i))) << (8 * i);
        }
        value
    }

    /// Writes the low `width` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, value: u64, width: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported access width {width}");
        for i in 0..width {
            self.write_byte(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Fetches the 32-bit instruction word at `addr`, or `None` when the
    /// address is outside the text region or misaligned.
    ///
    /// # Text is immutable while a program runs
    ///
    /// Between [`reset_with_program`](Memory::reset_with_program) calls, the
    /// bytes this function reads cannot change: every store the executors
    /// issue is gated on [`can_store`](Memory::can_store), which only admits
    /// the `Data` region (both TheHuzz/MABFuzz simulators route all
    /// program-visible writes through `execute_instr`, and the V1–V7 bug
    /// deviations never write memory directly — V5 only suppresses *load*
    /// faults). The raw [`write_byte`](Memory::write_byte) escape hatch
    /// exists for loaders and future buggy models, but nothing on the
    /// execution path uses it. This is the invariant that makes caching
    /// pre-decoded text by program hash sound
    /// (see [`DecodedProgram`](crate::DecodedProgram)): a fetch at a given
    /// address returns the same word for the whole run, so its decode can be
    /// computed once. Pinned by the store-to-text tests here, in `exec`, and
    /// in `proc-sim`.
    pub fn fetch(&self, addr: u64) -> Option<u32> {
        let addr = addr & PHYS_ADDR_MASK;
        if !addr.is_multiple_of(4) || self.region_of(addr) != Region::Text {
            return None;
        }
        Some(self.read_uint(addr, 4) as u32)
    }

    fn write_bytes_raw(&mut self, base: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(base + i as u64, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_byte(DATA_BASE), 0);
        assert_eq!(mem.read_uint(DATA_BASE, 8), 0);
    }

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut mem = Memory::new();
        for width in [1u64, 2, 4, 8] {
            let value = 0x1122_3344_5566_7788u64;
            mem.write_uint(DATA_BASE + 64, value, width);
            let mask = if width == 8 { u64::MAX } else { (1 << (8 * width)) - 1 };
            assert_eq!(mem.read_uint(DATA_BASE + 64, width), value & mask);
        }
    }

    #[test]
    fn regions_are_classified() {
        let mem = Memory::with_program(&[0u8; 64], &[0u8; 16]);
        assert_eq!(mem.region_of(TEXT_BASE), Region::Text);
        assert_eq!(mem.region_of(TEXT_BASE + 63), Region::Text);
        assert_eq!(mem.region_of(TEXT_BASE + 64), Region::Unmapped);
        assert_eq!(mem.region_of(DATA_BASE), Region::Data);
        assert_eq!(mem.region_of(DATA_BASE + DATA_SIZE), Region::Unmapped);
        assert_eq!(mem.region_of(0x1000), Region::Unmapped);
    }

    #[test]
    fn permissions_follow_regions() {
        let mem = Memory::with_program(&[0u8; 64], &[]);
        assert!(mem.can_load(TEXT_BASE, 4));
        assert!(!mem.can_store(TEXT_BASE, 4));
        assert!(mem.can_store(DATA_BASE, 8));
        assert!(mem.can_load(DATA_BASE + DATA_SIZE - 8, 8));
        assert!(!mem.can_load(DATA_BASE + DATA_SIZE - 4, 8));
        assert!(!mem.can_load(0x0, 1));
    }

    #[test]
    fn fetch_requires_alignment_and_text_region() {
        let text: Vec<u8> = 0x0000_0013u32.to_le_bytes().into();
        let mem = Memory::with_program(&text, &[]);
        assert_eq!(mem.fetch(TEXT_BASE), Some(0x13));
        assert_eq!(mem.fetch(TEXT_BASE + 2), None);
        assert_eq!(mem.fetch(DATA_BASE), None);
    }

    #[test]
    fn no_store_width_can_touch_the_text_region() {
        // The decode-cache soundness argument (see `fetch`): every width and
        // every alignment of store that overlaps text — including one
        // straddling the text/unmapped boundary — is rejected.
        let text_len = 64u64;
        let mem = Memory::with_program(&vec![0u8; text_len as usize], &[0u8; 16]);
        for width in [1u64, 2, 4, 8] {
            for offset in 0..text_len {
                assert!(
                    !mem.can_store(TEXT_BASE + offset, width),
                    "store width {width} at text+{offset} must be rejected"
                );
            }
            // A store ending just before text, or starting just after, is a
            // plain unmapped fault, not a text write.
            assert!(!mem.can_store(TEXT_BASE - width, width));
            assert!(!mem.can_store(TEXT_BASE + text_len, width));
        }
        // Data stores stay permitted — the rejection is about the region, not
        // the operation.
        assert!(mem.can_store(DATA_BASE, 8));
    }

    #[test]
    fn addresses_wrap_to_32_bits() {
        let mut mem = Memory::new();
        mem.write_byte(0xffff_ffff_8001_0000, 0xab);
        assert_eq!(mem.read_byte(DATA_BASE), 0xab);
        let mem2 = Memory::with_program(&[0u8; 8], &[]);
        assert_eq!(mem2.region_of(0xffff_ffff_8000_0000), Region::Text);
    }

    proptest! {
        #[test]
        fn byte_round_trip(offset in 0u64..DATA_SIZE, value in any::<u8>()) {
            let mut mem = Memory::new();
            mem.write_byte(DATA_BASE + offset, value);
            prop_assert_eq!(mem.read_byte(DATA_BASE + offset), value);
        }

        #[test]
        fn uint_round_trip(offset in 0u64..(DATA_SIZE - 8), value in any::<u64>()) {
            let mut mem = Memory::new();
            mem.write_uint(DATA_BASE + offset, value, 8);
            prop_assert_eq!(mem.read_uint(DATA_BASE + offset, 8), value);
        }
    }
}
