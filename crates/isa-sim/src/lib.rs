//! Golden-reference architectural simulator (SPIKE substitute).
//!
//! Hardware fuzzers such as TheHuzz and MABFuzz detect vulnerabilities by
//! *differential testing*: the same test program runs on the processor under
//! test and on a trusted instruction-set simulator, and any difference in the
//! committed architectural state flags a potential bug. The paper uses SPIKE
//! for that role; this crate provides the equivalent for the reproduction — a
//! deterministic RV64IM+Zicsr architectural simulator that produces a
//! per-instruction commit trace.
//!
//! # Simulation conventions
//!
//! The conventions below are shared with the processor models in `proc-sim`
//! so that a bug-free processor produces an identical trace:
//!
//! * Physical addresses are 32 bits; effective addresses are masked before
//!   translation (RV64 `lui` sign-extension is therefore harmless).
//! * `ecall` terminates the test program.
//! * Other synchronous exceptions update `mepc`/`mcause`/`mtval` and redirect
//!   to `mtvec` when it points into the program text; otherwise execution
//!   continues with the next instruction so that fuzzing programs keep making
//!   progress. Either way the exception is recorded in the commit trace.
//! * `ebreak` is counted as a retired instruction (it increments `minstret`);
//!   this is exactly the behaviour the V7 vulnerability violates.
//!
//! # Example
//!
//! ```
//! use isa_sim::GoldenSim;
//! use riscv::{Instr, Gpr, Op, Program};
//!
//! let program = Program::from_instrs(vec![
//!     Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 21),
//!     Instr::rtype(Op::Add, Gpr::A0, Gpr::A0, Gpr::A0),
//!     Instr::nullary(Op::Ecall),
//! ]);
//! let trace = GoldenSim::new().run(&program, 100);
//! assert_eq!(trace.final_state().reg(Gpr::A0), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoded;
pub mod exec;
pub mod mem;
pub mod snapshot;
pub mod state;
pub mod trace;
pub mod trap;

pub use decoded::{DecodeCache, DecodeCacheStats, DecodedProgram, DecodedSlot};
pub use exec::{ExecConfig, GoldenScratch, GoldenSim};
pub use mem::Memory;
pub use snapshot::{DirtyTracker, ResetPolicy, ResetStats, Snapshot};
pub use state::ArchState;
pub use trace::{CommitRecord, ExecTrace, HaltReason, MemAccess};
pub use trap::Exception;

/// Mask applied to effective addresses: the simulated SoCs expose a 32-bit
/// physical address space.
pub const PHYS_ADDR_MASK: u64 = 0xffff_ffff;
