//! Synchronous exceptions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A synchronous exception raised during instruction execution.
///
/// The variants carry the `mcause` code defined by the privileged
/// specification; the subset here covers every exception the modelled
/// instruction set can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Exception {
    /// Instruction address misaligned (cause 0): a taken branch or jump whose
    /// target is not 4-byte aligned.
    InstrAddrMisaligned {
        /// The misaligned target address.
        target: u64,
    },
    /// Instruction access fault (cause 1): fetch from outside the text region.
    InstrAccessFault {
        /// The faulting fetch address.
        addr: u64,
    },
    /// Illegal instruction (cause 2): undecodable word, unimplemented CSR, or
    /// a write to a read-only CSR.
    IllegalInstruction {
        /// The offending instruction word.
        word: u32,
    },
    /// Breakpoint (cause 3): `ebreak`.
    Breakpoint,
    /// Load address misaligned (cause 4).
    LoadAddrMisaligned {
        /// The misaligned effective address.
        addr: u64,
    },
    /// Load access fault (cause 5): load from an unmapped region.
    LoadAccessFault {
        /// The faulting effective address.
        addr: u64,
    },
    /// Store address misaligned (cause 6).
    StoreAddrMisaligned {
        /// The misaligned effective address.
        addr: u64,
    },
    /// Store access fault (cause 7): store outside the writable data region.
    StoreAccessFault {
        /// The faulting effective address.
        addr: u64,
    },
    /// Environment call from M-mode (cause 11): `ecall`, used as the test
    /// terminator.
    EcallM,
}

impl Exception {
    /// Returns the `mcause` code for the exception.
    pub fn cause(self) -> u64 {
        match self {
            Exception::InstrAddrMisaligned { .. } => 0,
            Exception::InstrAccessFault { .. } => 1,
            Exception::IllegalInstruction { .. } => 2,
            Exception::Breakpoint => 3,
            Exception::LoadAddrMisaligned { .. } => 4,
            Exception::LoadAccessFault { .. } => 5,
            Exception::StoreAddrMisaligned { .. } => 6,
            Exception::StoreAccessFault { .. } => 7,
            Exception::EcallM => 11,
        }
    }

    /// Returns the value written to `mtval` when the exception is taken.
    pub fn tval(self) -> u64 {
        match self {
            Exception::InstrAddrMisaligned { target } => target,
            Exception::InstrAccessFault { addr } => addr,
            Exception::IllegalInstruction { word } => u64::from(word),
            Exception::Breakpoint => 0,
            Exception::LoadAddrMisaligned { addr }
            | Exception::LoadAccessFault { addr }
            | Exception::StoreAddrMisaligned { addr }
            | Exception::StoreAccessFault { addr } => addr,
            Exception::EcallM => 0,
        }
    }

    /// Returns `true` when the exception is a memory-access fault (the class
    /// of exception the V5 vulnerability suppresses).
    pub fn is_access_fault(self) -> bool {
        matches!(
            self,
            Exception::LoadAccessFault { .. }
                | Exception::StoreAccessFault { .. }
                | Exception::InstrAccessFault { .. }
        )
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exception::InstrAddrMisaligned { target } => {
                write!(f, "instruction address misaligned ({target:#x})")
            }
            Exception::InstrAccessFault { addr } => {
                write!(f, "instruction access fault ({addr:#x})")
            }
            Exception::IllegalInstruction { word } => {
                write!(f, "illegal instruction ({word:#010x})")
            }
            Exception::Breakpoint => f.write_str("breakpoint"),
            Exception::LoadAddrMisaligned { addr } => {
                write!(f, "load address misaligned ({addr:#x})")
            }
            Exception::LoadAccessFault { addr } => write!(f, "load access fault ({addr:#x})"),
            Exception::StoreAddrMisaligned { addr } => {
                write!(f, "store address misaligned ({addr:#x})")
            }
            Exception::StoreAccessFault { addr } => write!(f, "store access fault ({addr:#x})"),
            Exception::EcallM => f.write_str("environment call from M-mode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_codes_match_the_privileged_spec() {
        assert_eq!(Exception::InstrAddrMisaligned { target: 0 }.cause(), 0);
        assert_eq!(Exception::InstrAccessFault { addr: 0 }.cause(), 1);
        assert_eq!(Exception::IllegalInstruction { word: 0 }.cause(), 2);
        assert_eq!(Exception::Breakpoint.cause(), 3);
        assert_eq!(Exception::LoadAddrMisaligned { addr: 0 }.cause(), 4);
        assert_eq!(Exception::LoadAccessFault { addr: 0 }.cause(), 5);
        assert_eq!(Exception::StoreAddrMisaligned { addr: 0 }.cause(), 6);
        assert_eq!(Exception::StoreAccessFault { addr: 0 }.cause(), 7);
        assert_eq!(Exception::EcallM.cause(), 11);
    }

    #[test]
    fn tval_carries_the_faulting_value() {
        assert_eq!(Exception::LoadAccessFault { addr: 0x123 }.tval(), 0x123);
        assert_eq!(Exception::IllegalInstruction { word: 0xdead_beef }.tval(), 0xdead_beef);
        assert_eq!(Exception::Breakpoint.tval(), 0);
    }

    #[test]
    fn access_fault_classification() {
        assert!(Exception::LoadAccessFault { addr: 0 }.is_access_fault());
        assert!(Exception::StoreAccessFault { addr: 0 }.is_access_fault());
        assert!(!Exception::IllegalInstruction { word: 0 }.is_access_fault());
        assert!(!Exception::EcallM.is_access_fault());
    }

    #[test]
    fn display_is_informative() {
        let text = Exception::LoadAccessFault { addr: 0xdead }.to_string();
        assert!(text.contains("load access fault"));
        assert!(text.contains("0xdead"));
    }
}
