//! Pre-decoded program images and the per-worker decode cache.
//!
//! Both the golden model ([`GoldenSim`](crate::GoldenSim)) and the `proc-sim`
//! processor models are fetch→decode→execute interpreters. MABFuzz campaigns
//! re-simulate tiny generated programs thousands of times, and a 300-step run
//! of a 20-instruction program used to call `riscv::decode` 300 times *per
//! simulator* — the decode cache turns that into 20 decodes total, amortised
//! across every re-simulation of the same text image.
//!
//! # Invariants
//!
//! The cache is sound because of three properties, each pinned by tests:
//!
//! * **Text is immutable during execution.** `Memory::can_store` only permits
//!   stores to the `Data` region, so a running program can never modify the
//!   bytes a [`DecodedProgram`] was decoded from (see
//!   [`Memory::fetch`](crate::Memory::fetch) for the full argument). A
//!   pre-decoded image therefore stays valid for the whole run.
//! * **Keying is by exact text bytes.** Entries are looked up by a 64-bit
//!   FNV-1a hash of the encoded text image *and verified with a byte
//!   comparison on every hit*, so a hash collision degrades to a miss-and-
//!   replace, never to executing the wrong program. Two programs with equal
//!   text but different data regions share an entry by design: decode does
//!   not depend on the data image, which is loaded separately per run.
//! * **Architectural decode only.** A [`DecodedSlot`] caches the result of
//!   the *architectural* `riscv::decode` (`instr == None` marks a decode
//!   fault). Bug-injected decoder behaviour in `proc-sim` (e.g. the V2
//!   "illegal word still executes" path) layers on top of the cached fault
//!   exactly as it layers on top of a live `decode` failure — the buggy
//!   decoders are never bypassed and never cached.
//!
//! The cache is bounded ([`DecodeCache::DEFAULT_CAPACITY`] entries, least-
//! recently-used eviction) and owned per worker — one per
//! `fuzzer::ExecScratch`, hence one per campaign or per shard worker — so the
//! hot path shares no mutable state and hit/miss behaviour depends only on
//! the sequence of programs a worker simulates, never on shard count or
//! thread interleaving.
//!
//! # Oracle mode
//!
//! The interpreted fetch/decode path stays alive as the differential oracle:
//! `MABFUZZ_DECODE_CACHE=off` makes every `ExecScratch` run both simulators
//! through `Memory::fetch` + live `decode` again, and CI asserts the smoke
//! grid's artefacts are byte-identical in both modes.

use std::collections::HashMap;

use analysis::ProgramFacts;
use riscv::program::TEXT_BASE;
use riscv::{decode, Instr, Program};

use crate::PHYS_ADDR_MASK;

/// One pre-decoded instruction slot of a program text image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedSlot {
    /// The raw little-endian instruction word at this slot.
    pub word: u32,
    /// The architectural decode of `word`; `None` records a decode fault
    /// (the word raises an illegal-instruction exception when fetched).
    pub instr: Option<Instr>,
}

/// A program text image decoded once, indexable by fetch address.
///
/// [`fetch`](DecodedProgram::fetch) reproduces the semantics of
/// [`Memory::fetch`](crate::Memory::fetch) followed by `riscv::decode`
/// exactly, including the quirk that an *empty* text image still exposes one
/// fetchable all-zero word (the text region spans at least four bytes); see
/// the module docs for why the image stays valid for a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    text: Vec<u8>,
    slots: Vec<DecodedSlot>,
}

impl DecodedProgram {
    /// Encodes and pre-decodes `program`'s text image (raw-word overrides
    /// included, exactly as [`Program::text_bytes`] emits them).
    pub fn from_program(program: &Program) -> DecodedProgram {
        DecodedProgram::from_text(program.text_bytes())
    }

    /// Pre-decodes an already-encoded text image.
    ///
    /// `text` must be instruction-aligned (a multiple of 4 bytes), which every
    /// [`Program`] image is by construction.
    pub(crate) fn from_text(text: Vec<u8>) -> DecodedProgram {
        debug_assert!(
            text.len().is_multiple_of(4),
            "program text images are whole instruction words"
        );
        let mut slots: Vec<DecodedSlot> = text
            .chunks_exact(4)
            .map(|chunk| {
                let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                DecodedSlot { word, instr: decode(word).ok() }
            })
            .collect();
        if slots.is_empty() {
            // An empty text image still has one fetchable word: the text
            // region spans at least 4 bytes (`Memory::region_of`) and
            // unwritten memory reads zero.
            slots.push(DecodedSlot { word: 0, instr: decode(0).ok() });
        }
        DecodedProgram { text, slots }
    }

    /// Returns the pre-decoded slot fetched at `addr`, or `None` when the
    /// address is outside the text region or misaligned — bit-for-bit the
    /// behaviour of [`Memory::fetch`](crate::Memory::fetch) plus
    /// `riscv::decode` on the same image.
    #[inline]
    pub fn fetch(&self, addr: u64) -> Option<&DecodedSlot> {
        let addr = addr & PHYS_ADDR_MASK;
        if !addr.is_multiple_of(4) || addr < TEXT_BASE {
            return None;
        }
        self.slots.get(((addr - TEXT_BASE) >> 2) as usize)
    }

    /// The encoded text image this program was decoded from (what
    /// `Memory::reset_with_program` should load).
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Number of fetchable instruction slots (at least 1, even for an empty
    /// image).
    pub fn len_words(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when this image is exactly `program`'s current text —
    /// the precondition of the `run_decoded_into` entry points, asserted in
    /// debug builds.
    pub fn matches(&self, program: &Program) -> bool {
        self.text == program.text_bytes()
    }
}

/// Observable counters of a [`DecodeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups answered from a cached image (verified by byte comparison).
    pub hits: u64,
    /// Lookups that had to decode the image.
    pub misses: u64,
    /// Entries displaced, either by the LRU capacity bound or by a 64-bit
    /// hash collision replacing the resident image.
    pub evictions: u64,
}

impl DecodeCacheStats {
    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

struct CacheEntry {
    decoded: DecodedProgram,
    /// Static CFG/liveness facts for the image, computed lazily on the first
    /// [`DecodeCache::get_or_decode_with_facts`] lookup. Point-coverage
    /// campaigns never ask for facts, so they never pay for the analysis.
    facts: Option<ProgramFacts>,
    last_used: u64,
}

/// A bounded, LRU-evicting cache of [`DecodedProgram`]s keyed by text hash.
///
/// See the [module docs](self) for the soundness invariants. The cache is a
/// plain single-owner value: every worker owns its own instance, so lookups
/// are lock-free and the hit/miss sequence is a pure function of the program
/// sequence the worker simulates.
pub struct DecodeCache {
    // Probed by text hash only; the unique-timestamp LRU below keeps even
    // eviction free of iteration-order influence.
    entries: HashMap<u64, CacheEntry>, // detlint: allow(default-hasher)
    capacity: usize,
    /// Monotonic lookup counter used as the LRU timestamp. Each entry's
    /// `last_used` is unique (the counter advances every lookup), so the
    /// eviction victim is always uniquely determined — no dependence on hash-
    /// map iteration order.
    tick: u64,
    stats: DecodeCacheStats,
    text_scratch: Vec<u8>,
}

impl DecodeCache {
    /// Default capacity bound, in cached programs.
    ///
    /// Campaign working sets are a handful of seeds plus their recent
    /// mutants; 512 tiny programs (≲100 instructions each) keep re-decodes
    /// rare for a few megabytes at most.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// Creates a cache with the default capacity bound.
    pub fn new() -> DecodeCache {
        DecodeCache::with_capacity(DecodeCache::DEFAULT_CAPACITY)
    }

    /// Creates a cache bounded to `capacity` programs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> DecodeCache {
        assert!(capacity > 0, "a decode cache needs room for at least one program");
        DecodeCache {
            entries: HashMap::with_capacity(capacity.min(1024)), // detlint: allow(default-hasher)
            capacity,
            tick: 0,
            stats: DecodeCacheStats::default(),
            text_scratch: Vec::new(),
        }
    }

    /// Returns the pre-decoded image of `program`, decoding and caching it on
    /// a miss.
    ///
    /// Hits are verified by comparing the stored text bytes against the
    /// program's current image, so a stale or hash-colliding entry can never
    /// be returned.
    pub fn get_or_decode(&mut self, program: &Program) -> &DecodedProgram {
        program.text_bytes_into(&mut self.text_scratch);
        let key = fnv1a(&self.text_scratch);
        self.tick += 1;

        let hit = self
            .entries
            .get(&key)
            .is_some_and(|entry| entry.decoded.text == self.text_scratch);
        if hit {
            self.stats.hits += 1;
            let entry = self.entries.get_mut(&key).expect("hit entry is present");
            entry.last_used = self.tick;
            return &entry.decoded;
        }

        self.stats.misses += 1;
        if self.entries.contains_key(&key) {
            // 64-bit hash collision with a different image: replace the
            // resident entry (the insert below overwrites it).
            self.stats.evictions += 1;
        } else if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| *key)
                .expect("a full cache has entries");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }

        let decoded = DecodedProgram::from_text(self.text_scratch.clone());
        self.entries.insert(key, CacheEntry { decoded, facts: None, last_used: self.tick });
        &self.entries.get(&key).expect("entry was just inserted").decoded
    }

    /// Like [`get_or_decode`](DecodeCache::get_or_decode), additionally
    /// returning the static [`ProgramFacts`] of the image, computed lazily on
    /// the first facts lookup and attached to the cache entry afterwards.
    ///
    /// Because the analysis is a pure function of the text bytes (pinned by a
    /// property test below), a cached facts hit is indistinguishable from a
    /// fresh `ProgramFacts::analyze` of the same image. Hit/miss accounting is
    /// shared with `get_or_decode`: asking for facts never changes the stats
    /// stream.
    pub fn get_or_decode_with_facts(
        &mut self,
        program: &Program,
    ) -> (&DecodedProgram, &ProgramFacts) {
        self.get_or_decode(program);
        // `get_or_decode` left `text_scratch` holding this program's image;
        // re-derive the key to re-borrow the entry it just ensured.
        let key = fnv1a(&self.text_scratch);
        let entry = self.entries.get_mut(&key).expect("entry was just ensured");
        if entry.facts.is_none() {
            entry.facts = Some(ProgramFacts::analyze(entry.decoded.text()));
        }
        (&entry.decoded, entry.facts.as_ref().expect("facts were just filled"))
    }

    /// Returns the hit/miss/eviction counters.
    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }

    /// Number of programs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no program is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound this cache was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for DecodeCache {
    fn default() -> DecodeCache {
        DecodeCache::new()
    }
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("len", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats)
            .finish()
    }
}

/// 64-bit FNV-1a over the text image. Deterministic across runs and
/// platforms (unlike `std`'s seeded hasher), which keeps cache behaviour —
/// including collision handling — reproducible.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Memory;
    use proptest::prelude::*;
    use riscv::{Gpr, Op};

    fn sample_program(seed: i64) -> Program {
        Program::from_instrs(vec![
            Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, seed % 100),
            Instr::rtype(Op::Add, Gpr::A1, Gpr::A0, Gpr::A0),
            Instr::nullary(Op::Ecall),
        ])
    }

    #[test]
    fn fetch_matches_memory_fetch_plus_decode() {
        let mut program = sample_program(7);
        program.set_raw(1, 0xffff_ffff); // an undecodable word
        let decoded = DecodedProgram::from_program(&program);
        let mem = Memory::with_program(&program.text_bytes(), program.data());
        for addr in (TEXT_BASE - 8)..(TEXT_BASE + 24) {
            let via_mem = mem.fetch(addr).map(|word| (word, decode(word).ok()));
            let via_cache = decoded.fetch(addr).map(|slot| (slot.word, slot.instr));
            assert_eq!(via_cache, via_mem, "divergence at {addr:#x}");
        }
    }

    #[test]
    fn empty_program_exposes_one_zero_word() {
        let program = Program::new();
        let decoded = DecodedProgram::from_program(&program);
        assert_eq!(decoded.len_words(), 1);
        let slot = decoded.fetch(TEXT_BASE).expect("phantom word is fetchable");
        assert_eq!(slot.word, 0);
        assert_eq!(slot.instr, None, "the zero word does not decode");
        // Exactly what Memory::fetch reports for the same image.
        let mem = Memory::with_program(&[], &[]);
        assert_eq!(mem.fetch(TEXT_BASE), Some(0));
        assert_eq!(mem.fetch(TEXT_BASE + 4), None);
        assert_eq!(decoded.fetch(TEXT_BASE + 4).map(|s| s.word), None);
    }

    #[test]
    fn repeated_lookups_hit() {
        let mut cache = DecodeCache::new();
        let program = sample_program(1);
        let first = cache.get_or_decode(&program).clone();
        let second = cache.get_or_decode(&program).clone();
        assert_eq!(first, second);
        assert_eq!(cache.stats(), DecodeCacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().lookups(), 2);
    }

    #[test]
    fn mutated_program_misses_and_reuses_nothing_stale() {
        let mut cache = DecodeCache::new();
        let mut program = sample_program(1);
        cache.get_or_decode(&program);
        program.instrs_mut()[0] = Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 99);
        let decoded = cache.get_or_decode(&program);
        assert!(decoded.matches(&program));
        assert_eq!(decoded.fetch(TEXT_BASE).unwrap().instr.unwrap().imm, 99);
        assert_eq!(cache.stats(), DecodeCacheStats { hits: 0, misses: 2, evictions: 0 });
    }

    #[test]
    fn lru_eviction_respects_the_capacity_bound() {
        let mut cache = DecodeCache::with_capacity(2);
        let a = sample_program(1);
        let b = sample_program(2);
        let c = sample_program(3);
        cache.get_or_decode(&a);
        cache.get_or_decode(&b);
        cache.get_or_decode(&a); // `b` is now least recently used
        cache.get_or_decode(&c); // evicts `b`
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // `a` survived (hit), `b` was evicted (miss decodes again).
        cache.get_or_decode(&a);
        assert_eq!(cache.stats().hits, 2);
        cache.get_or_decode(&b);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn zero_capacity_is_rejected() {
        let _ = DecodeCache::with_capacity(0);
    }

    #[test]
    fn stats_are_a_pure_function_of_the_program_sequence() {
        let sequence: Vec<Program> =
            [1, 2, 1, 3, 2, 2, 4, 1].iter().map(|&s| sample_program(s)).collect();
        let mut first = DecodeCache::new();
        let mut second = DecodeCache::new();
        for program in &sequence {
            first.get_or_decode(program);
        }
        for program in &sequence {
            second.get_or_decode(program);
        }
        assert_eq!(first.stats(), second.stats());
        assert_eq!(first.stats().hits, 4);
        assert_eq!(first.stats().misses, 4);
    }

    #[test]
    fn facts_attach_to_the_cached_image_and_match_fresh_analysis() {
        let mut cache = DecodeCache::new();
        let program = sample_program(1);
        let fresh = ProgramFacts::analyze(&program.text_bytes());
        let (decoded, facts) = cache.get_or_decode_with_facts(&program);
        assert!(decoded.matches(&program));
        assert_eq!(facts, &fresh);
        // The second lookup hits and reuses the attached facts; asking for
        // facts never perturbs the stats stream.
        let (_, again) = cache.get_or_decode_with_facts(&program);
        assert_eq!(again, &fresh);
        assert_eq!(cache.stats(), DecodeCacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn plain_lookups_never_compute_facts() {
        let mut cache = DecodeCache::new();
        let program = sample_program(2);
        cache.get_or_decode(&program);
        let key_entry = cache.entries.values().next().expect("one entry");
        assert!(key_entry.facts.is_none(), "point-coverage lookups must not pay for analysis");
    }

    proptest! {
        /// Static analysis is a pure function of the text bytes: a facts hit
        /// from the cache is indistinguishable from a fresh analysis of the
        /// same image, for arbitrary (legal or not) word images.
        #[test]
        fn cached_facts_equal_fresh_analysis(words in proptest::collection::vec(any::<u32>(), 0..24)) {
            let text: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let (program, _) = Program::from_text_bytes(&text);
            let mut cache = DecodeCache::new();
            let first = cache.get_or_decode_with_facts(&program).1.clone();
            let second = cache.get_or_decode_with_facts(&program).1.clone(); // hit path
            prop_assert_eq!(&first, &second);
            prop_assert_eq!(&first, &ProgramFacts::analyze(&program.text_bytes()));
        }

        /// For arbitrary word images (legal or not), `DecodedProgram::fetch`
        /// is indistinguishable from `Memory::fetch` + `decode` at every
        /// aligned and misaligned probe address around the text region.
        #[test]
        fn fetch_equivalence_over_arbitrary_images(words in proptest::collection::vec(any::<u32>(), 0..24)) {
            let text: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let decoded = DecodedProgram::from_text(text.clone());
            let mem = Memory::with_program(&text, &[]);
            let end = TEXT_BASE + 4 * (words.len() as u64 + 2);
            for addr in (TEXT_BASE - 4)..end {
                let via_mem = mem.fetch(addr).map(|word| (word, decode(word).ok()));
                let via_cache = decoded.fetch(addr).map(|slot| (slot.word, slot.instr));
                prop_assert_eq!(via_cache, via_mem, "divergence at {:#x}", addr);
            }
        }
    }
}
