//! Snapshot/dirty-reset of execution state: restore only what a test dirtied.
//!
//! The campaign loop re-simulates tens of thousands of tiny programs, and the
//! per-test cost is dominated by state *setup*, not execution: a full
//! [`Memory::reset_with_program`](crate::Memory::reset_with_program) zeroes
//! every allocated page and a fresh [`ArchState`] rebuilds its CSR map, even
//! though a short program touches a handful of pages and a handful of CSRs.
//! This module provides the pieces that make per-test setup O(touched state):
//!
//! * [`Snapshot`] — a handle on the pristine architectural baseline every
//!   test starts from. Today that is always the reset state
//!   ([`Snapshot::pristine`]); the handle exists so stateful / test-reuse
//!   campaigns (ReFuzz-style) can later [`capture`](Snapshot::capture) a
//!   mid-campaign state and resume from it instead of cold-starting.
//! * [`DirtyTracker`] — a reusable touched-unit list with saturating
//!   first-touch marking. [`Memory`](crate::Memory) uses one with pages as
//!   units; the `proc-sim` pipeline components use the same idea with
//!   per-component dirty flags and per-set touched lists.
//! * [`ResetPolicy`] — the campaign-wide switch between the dirty-restore
//!   path and the full-reinit path, read from
//!   [`MABFUZZ_SNAPSHOT_RESET`](ResetPolicy::ENV_VAR).
//!
//! # The soundness invariant
//!
//! Dirty-reset is only correct if **clean implies pristine**: any unit the
//! tracker does not list must already be in its reset state. Each tracked
//! structure maintains this by induction —
//!
//! * it starts pristine (fresh allocation or a full reset),
//! * every mutation path marks the unit it touches *before or at* the
//!   mutation (for `Memory`, the single choke point is
//!   [`write_byte`](crate::Memory::write_byte); for a cache model it is
//!   `access`), and
//! * the restore path re-pristinizes exactly the listed units and clears the
//!   list.
//!
//! A restore is therefore byte-equivalent to a full reinit — which is pinned
//! by proptests here and in `proc-sim`, by the harness differential tests,
//! and end-to-end by `tests/snapshot_reset_equivalence.rs` comparing whole
//! campaign reports. The full-reinit path stays alive as the differential
//! oracle (`MABFUZZ_SNAPSHOT_RESET=off`), exactly like the interpreted fetch
//! path does for the decode cache.
//!
//! # Determinism
//!
//! Restoring instead of reinitialising is invisible to results by
//! construction: both paths hand the simulator the same memory image and the
//! same architectural state, so traces, coverage and every downstream
//! campaign artefact are byte-identical. The shard determinism contract in
//! `fuzzer::shard` extends to this path for the same reason the decode cache
//! satisfies it — the tracker is private to its worker's scratch and holds no
//! cross-test information that could leak into outcomes.

use serde::{Deserialize, Serialize};

use crate::state::ArchState;

/// How a simulator scratch returns to the test-start state between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ResetPolicy {
    /// Restore only the units the previous test dirtied (the production
    /// default): zero dirty memory pages, restore the architectural baseline
    /// in place, dirty-reset the pipeline components.
    #[default]
    SnapshotReset,
    /// Rebuild everything from scratch exactly as the pre-snapshot code did:
    /// zero every allocated page, construct a fresh [`ArchState`], full-reset
    /// every component. Kept as the differential oracle the snapshot path is
    /// byte-compared against.
    FullReinit,
}

impl ResetPolicy {
    /// The environment variable [`ResetPolicy::from_env`] reads.
    pub const ENV_VAR: &'static str = "MABFUZZ_SNAPSHOT_RESET";

    /// Reads the policy from [`MABFUZZ_SNAPSHOT_RESET`](ResetPolicy::ENV_VAR):
    /// `on`/`1`/`true` (also unset or empty) select
    /// [`SnapshotReset`](ResetPolicy::SnapshotReset), `off`/`0`/`false` select
    /// [`FullReinit`](ResetPolicy::FullReinit), anything else panics loudly
    /// (mirroring `MABFUZZ_DECODE_CACHE` and `MABFUZZ_SHARDS`).
    pub fn from_env() -> ResetPolicy {
        match std::env::var(ResetPolicy::ENV_VAR) {
            Err(std::env::VarError::NotPresent) => ResetPolicy::SnapshotReset,
            Err(error) => panic!("{}: {error}", ResetPolicy::ENV_VAR),
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "" | "on" | "1" | "true" => ResetPolicy::SnapshotReset,
                "off" | "0" | "false" => ResetPolicy::FullReinit,
                other => panic!(
                    "{}: expected on/off (or 1/0, true/false), got {other:?}",
                    ResetPolicy::ENV_VAR
                ),
            },
        }
    }

    /// Returns `true` for the dirty-restore path.
    pub fn is_snapshot(self) -> bool {
        self == ResetPolicy::SnapshotReset
    }
}

/// A handle on the architectural state a test starts from.
///
/// Every simulator scratch owns one. Today it is always the reset state, so
/// restoring from it is equivalent to building `ArchState::new()` — just
/// without reallocating the CSR map. The handle is deliberately a value the
/// scratch carries (rather than a hard-coded constant) because it is the seam
/// stateful/test-reuse campaigns resume from: swap in a
/// [`captured`](Snapshot::capture) mid-campaign state and every test the
/// scratch runs afterwards starts there instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    baseline: ArchState,
}

impl Snapshot {
    /// The reset-state snapshot: what `ArchState::new()` builds.
    pub fn pristine() -> Snapshot {
        Snapshot { baseline: ArchState::new() }
    }

    /// Captures an arbitrary architectural state as the new baseline (the
    /// ReFuzz-style test-reuse seam; nothing in the repo swaps this in yet).
    pub fn capture(state: &ArchState) -> Snapshot {
        Snapshot { baseline: state.clone() }
    }

    /// Returns the baseline state.
    pub fn baseline(&self) -> &ArchState {
        &self.baseline
    }

    /// Restores `state` to the baseline in place, reusing its allocations
    /// (see [`ArchState::restore_from`]).
    pub fn restore(&self, state: &mut ArchState) {
        state.restore_from(&self.baseline);
    }
}

impl Default for Snapshot {
    fn default() -> Snapshot {
        Snapshot::pristine()
    }
}

/// Counters describing the work the dirty-reset path performed, for tests and
/// benches (the campaign artefacts never see them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResetStats {
    /// First-touch marks recorded (one per unit per dirty window).
    pub marks: u64,
    /// Dirty restores performed.
    pub restores: u64,
    /// Total units re-pristinized across all restores.
    pub units_restored: u64,
}

/// A reusable list of dirtied units (pages, sets, …) with restore counters.
///
/// The owner is responsible for first-touch dedup (usually via a per-unit
/// flag stored next to the unit, so marking stays O(1) without a hash set)
/// and for actually re-pristinizing each unit in the
/// [`restore_units`](DirtyTracker::restore_units) callback — the tracker only
/// remembers *which* units need it. See the module docs for the
/// clean-implies-pristine invariant this protocol maintains.
#[derive(Debug, Clone, Default)]
pub struct DirtyTracker {
    touched: Vec<u64>,
    stats: ResetStats,
}

impl DirtyTracker {
    /// Creates an empty tracker.
    pub fn new() -> DirtyTracker {
        DirtyTracker::default()
    }

    /// Records the first touch of `unit` in the current dirty window. The
    /// caller must guarantee it is a *first* touch (checked by its own
    /// per-unit flag); double-marking would only cost a redundant restore,
    /// not correctness, but would skew the stats.
    pub fn mark(&mut self, unit: u64) {
        self.touched.push(unit);
        self.stats.marks += 1;
    }

    /// The units marked since the last restore or clear, in mark order.
    pub fn touched(&self) -> &[u64] {
        &self.touched
    }

    /// Number of currently dirty units.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Returns `true` when nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Runs `restore` on every dirty unit and empties the list, keeping its
    /// allocation. The callback must return the unit to its pristine state
    /// (and clear the caller's per-unit dirty flag).
    pub fn restore_units(&mut self, mut restore: impl FnMut(u64)) {
        self.stats.restores += 1;
        self.stats.units_restored += self.touched.len() as u64;
        for unit in self.touched.drain(..) {
            restore(unit);
        }
    }

    /// Drops all marks without restoring anything — the full-reinit path
    /// calls this after it has re-pristinized everything wholesale.
    pub fn clear(&mut self) {
        self.touched.clear();
    }

    /// Returns the work counters.
    pub fn stats(&self) -> ResetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_to_snapshot_reset() {
        assert_eq!(ResetPolicy::default(), ResetPolicy::SnapshotReset);
        assert!(ResetPolicy::SnapshotReset.is_snapshot());
        assert!(!ResetPolicy::FullReinit.is_snapshot());
    }

    #[test]
    fn pristine_snapshot_restores_to_the_reset_state() {
        let snapshot = Snapshot::pristine();
        let mut state = ArchState::new();
        state.pc = 0x8000_0040;
        state.set_reg(riscv::Gpr::A0, 77);
        state.set_csr(riscv::CsrAddr::MSCRATCH, 0xdead);
        state.retire();
        snapshot.restore(&mut state);
        assert_eq!(state, ArchState::new());
        assert_eq!(snapshot.baseline(), &ArchState::new());
    }

    #[test]
    fn captured_snapshot_restores_to_the_captured_state() {
        let mut mid = ArchState::new();
        mid.set_reg(riscv::Gpr::S1, 5);
        mid.set_csr(riscv::CsrAddr::MSCRATCH, 9);
        let snapshot = Snapshot::capture(&mid);
        let mut state = ArchState::new();
        state.set_reg(riscv::Gpr::T0, 123);
        snapshot.restore(&mut state);
        assert_eq!(state, mid);
    }

    #[test]
    fn tracker_restores_exactly_the_marked_units() {
        let mut tracker = DirtyTracker::new();
        tracker.mark(3);
        tracker.mark(11);
        assert_eq!(tracker.touched(), &[3, 11]);
        assert_eq!(tracker.len(), 2);
        let mut restored = Vec::new();
        tracker.restore_units(|unit| restored.push(unit));
        assert_eq!(restored, vec![3, 11]);
        assert!(tracker.is_empty());
        let stats = tracker.stats();
        assert_eq!(stats, ResetStats { marks: 2, restores: 1, units_restored: 2 });
    }

    #[test]
    fn clear_drops_marks_without_counting_a_restore() {
        let mut tracker = DirtyTracker::new();
        tracker.mark(7);
        tracker.clear();
        assert!(tracker.is_empty());
        assert_eq!(tracker.stats().restores, 0);
        assert_eq!(tracker.stats().marks, 1);
    }
}
