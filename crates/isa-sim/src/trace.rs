//! Commit traces: the per-instruction record stream compared by the
//! differential-testing engine.

use std::fmt;

use riscv::{Gpr, Instr};
use serde::{Deserialize, Serialize};

use crate::state::ArchState;
use crate::trap::Exception;

/// A data-memory access performed by a committed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Effective (physical) address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// Value loaded or stored (zero-extended).
    pub value: u64,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// One committed instruction, as observed at the architectural interface.
///
/// This mirrors the per-instruction comparison performed by TheHuzz between
/// the DUT trace log and the SPIKE trace: program counter, instruction,
/// destination-register writeback, memory access and exception information.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitRecord {
    /// Index of the committed instruction in commit order (0-based).
    pub seq: u64,
    /// Address of the instruction.
    pub pc: u64,
    /// The decoded instruction, if the word was decodable.
    pub instr: Option<Instr>,
    /// The raw instruction word.
    pub word: u32,
    /// Destination register and the value written, when the instruction wrote one.
    pub writeback: Option<(Gpr, u64)>,
    /// Data-memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Exception raised by this instruction, if any.
    pub exception: Option<Exception>,
    /// The program counter of the next instruction in program order.
    pub next_pc: u64,
    /// Value of `minstret` *after* this instruction.
    pub instret: u64,
}

impl fmt::Display for CommitRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>5}] {:#010x}: ", self.seq, self.pc)?;
        match &self.instr {
            Some(instr) => write!(f, "{instr:<30}")?,
            None => write!(f, "<illegal {:#010x}>          ", self.word)?,
        }
        if let Some((rd, value)) = self.writeback {
            write!(f, " {rd} <- {value:#x}")?;
        }
        if let Some(mem) = &self.mem {
            let dir = if mem.is_store { "store" } else { "load" };
            write!(f, " [{dir} {:#x} w{}]", mem.addr, mem.width)?;
        }
        if let Some(e) = &self.exception {
            write!(f, " !{e}")?;
        }
        Ok(())
    }
}

/// Why a simulation run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HaltReason {
    /// The program executed its terminating `ecall`.
    Ecall,
    /// The program counter left the text region (ran off the end or jumped
    /// out) and no trap vector was configured.
    PcOutOfText,
    /// The step budget was exhausted before the program terminated.
    StepLimit,
}

impl fmt::Display for HaltReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            HaltReason::Ecall => "ecall",
            HaltReason::PcOutOfText => "pc left text region",
            HaltReason::StepLimit => "step limit reached",
        };
        f.write_str(text)
    }
}

/// The result of simulating one test program: the commit records plus the
/// final architectural state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecTrace {
    commits: Vec<CommitRecord>,
    final_state: ArchState,
    halt: HaltReason,
}

impl Default for ExecTrace {
    /// An empty trace in the reset state — the starting point for
    /// [`clear`](ExecTrace::clear)-based buffer reuse.
    fn default() -> ExecTrace {
        ExecTrace { commits: Vec::new(), final_state: ArchState::new(), halt: HaltReason::StepLimit }
    }
}

impl ExecTrace {
    /// Creates a trace from its parts (used by the simulators).
    pub fn new(commits: Vec<CommitRecord>, final_state: ArchState, halt: HaltReason) -> ExecTrace {
        ExecTrace { commits, final_state, halt }
    }

    /// Resets the trace for reuse, keeping the commit buffer's allocation.
    ///
    /// The simulators call this at the start of every `run_into`-style
    /// simulation so that steady-state fuzzing performs no per-test trace
    /// allocation. The final state is deliberately left untouched (stale
    /// from the previous run): every simulator ends its run with
    /// [`finish`](ExecTrace::finish), which overwrites it, and resetting it
    /// here would rebuild the CSR map per test for nothing.
    pub fn clear(&mut self) {
        self.commits.clear();
        self.halt = HaltReason::StepLimit;
    }

    /// Appends one commit record (used by the simulators while running).
    pub fn push_commit(&mut self, commit: CommitRecord) {
        self.commits.push(commit);
    }

    /// Records the final architectural state and halt reason (used by the
    /// simulators when a run finishes).
    pub fn finish(&mut self, final_state: ArchState, halt: HaltReason) {
        self.final_state = final_state;
        self.halt = halt;
    }

    /// Moves the final state out of the trace, leaving an allocation-free
    /// placeholder behind.
    ///
    /// This is the snapshot-reset recycling step: a simulator takes the
    /// previous run's state (with its allocated CSR map), restores it to the
    /// baseline in place, and hands it back via
    /// [`finish`](ExecTrace::finish) at the end of the run — so the
    /// placeholder is never observed. Calling
    /// [`final_state`](ExecTrace::final_state) between a take and the next
    /// `finish` would see the hollow state; the simulators never do.
    pub fn take_final_state(&mut self) -> ArchState {
        std::mem::replace(&mut self.final_state, ArchState::hollow())
    }

    /// Returns the commit records in commit order.
    pub fn commits(&self) -> &[CommitRecord] {
        &self.commits
    }

    /// Returns the architectural state after the last committed instruction.
    pub fn final_state(&self) -> &ArchState {
        &self.final_state
    }

    /// Returns why the simulation stopped.
    pub fn halt_reason(&self) -> HaltReason {
        self.halt
    }

    /// Returns the number of committed instructions.
    pub fn len(&self) -> usize {
        self.commits.len()
    }

    /// Returns `true` when nothing committed.
    pub fn is_empty(&self) -> bool {
        self.commits.is_empty()
    }

    /// Returns an iterator over the commit records.
    pub fn iter(&self) -> std::slice::Iter<'_, CommitRecord> {
        self.commits.iter()
    }

    /// Returns the exceptions raised during the run, with their commit index.
    pub fn exceptions(&self) -> impl Iterator<Item = (usize, Exception)> + '_ {
        self.commits
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.exception.map(|e| (i, e)))
    }

    /// Returns the *faults* raised during the run: every exception except the
    /// terminating `ecall`, which is part of the test calling convention
    /// rather than an error.
    pub fn faults(&self) -> impl Iterator<Item = (usize, Exception)> + '_ {
        self.exceptions().filter(|(_, e)| *e != Exception::EcallM)
    }

    /// Formats the full trace as a multi-line log (one commit per line).
    pub fn to_log(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for commit in &self.commits {
            let _ = writeln!(out, "{commit}");
        }
        let _ = writeln!(out, "halt: {}", self.halt);
        out
    }
}

impl<'a> IntoIterator for &'a ExecTrace {
    type Item = &'a CommitRecord;
    type IntoIter = std::slice::Iter<'a, CommitRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.commits.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::Op;

    fn record(seq: u64, exception: Option<Exception>) -> CommitRecord {
        CommitRecord {
            seq,
            pc: 0x8000_0000 + seq * 4,
            instr: Some(Instr::nop()),
            word: Instr::nop().encode(),
            writeback: Some((Gpr::A0, seq)),
            mem: None,
            exception,
            next_pc: 0x8000_0000 + (seq + 1) * 4,
            instret: seq + 1,
        }
    }

    #[test]
    fn trace_accessors() {
        let commits = vec![record(0, None), record(1, Some(Exception::Breakpoint))];
        let trace = ExecTrace::new(commits, ArchState::new(), HaltReason::Ecall);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.halt_reason(), HaltReason::Ecall);
        let exceptions: Vec<_> = trace.exceptions().collect();
        assert_eq!(exceptions, vec![(1, Exception::Breakpoint)]);
        assert_eq!(trace.iter().count(), 2);
        assert_eq!((&trace).into_iter().count(), 2);
    }

    #[test]
    fn commit_display_contains_key_fields() {
        let mut commit = record(3, Some(Exception::Breakpoint));
        commit.instr = Some(Instr::nullary(Op::Ebreak));
        commit.mem = Some(MemAccess { addr: 0x8001_0000, width: 8, value: 7, is_store: true });
        let text = commit.to_string();
        assert!(text.contains("ebreak"));
        assert!(text.contains("breakpoint"));
        assert!(text.contains("store"));
    }

    #[test]
    fn log_lists_every_commit_and_the_halt_reason() {
        let trace = ExecTrace::new(vec![record(0, None)], ArchState::new(), HaltReason::StepLimit);
        let log = trace.to_log();
        assert_eq!(log.lines().count(), 2);
        assert!(log.contains("step limit"));
    }

    #[test]
    fn take_final_state_moves_the_state_out_until_the_next_finish() {
        let mut state = ArchState::new();
        state.set_reg(Gpr::A0, 7);
        let mut trace = ExecTrace::new(Vec::new(), state.clone(), HaltReason::Ecall);
        let taken = trace.take_final_state();
        assert_eq!(taken, state);
        trace.finish(taken, HaltReason::Ecall);
        assert_eq!(trace.final_state(), &state);
    }

    #[test]
    fn halt_reason_display() {
        assert_eq!(HaltReason::Ecall.to_string(), "ecall");
        assert_eq!(HaltReason::PcOutOfText.to_string(), "pc left text region");
    }
}
