//! Test pools: the queues fuzzers schedule tests from.

use std::collections::VecDeque;
use std::fmt;

use crate::testcase::TestCase;

/// A bounded FIFO pool of pending test cases.
///
/// TheHuzz schedules tests strictly first-in-first-out from a single global
/// pool — the static strategy the paper criticises. MABFuzz keeps one pool
/// per arm and lets the bandit choose which pool to pop from; the pool
/// structure itself is identical.
#[derive(Debug, Clone, Default)]
pub struct TestPool {
    queue: VecDeque<TestCase>,
    capacity: Option<usize>,
    total_pushed: u64,
    total_dropped: u64,
}

impl TestPool {
    /// Creates an unbounded pool.
    pub fn new() -> TestPool {
        TestPool::default()
    }

    /// Creates a pool that keeps at most `capacity` pending tests; pushing to
    /// a full pool drops the *oldest* pending test.
    pub fn with_capacity(capacity: usize) -> TestPool {
        TestPool { capacity: Some(capacity.max(1)), ..TestPool::default() }
    }

    /// Returns the number of pending tests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when no tests are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Appends a test to the back of the queue.
    pub fn push(&mut self, test: TestCase) {
        self.total_pushed += 1;
        if let Some(capacity) = self.capacity {
            if self.queue.len() >= capacity {
                self.queue.pop_front();
                self.total_dropped += 1;
            }
        }
        self.queue.push_back(test);
    }

    /// Appends many tests.
    pub fn push_all(&mut self, tests: impl IntoIterator<Item = TestCase>) {
        for test in tests {
            self.push(test);
        }
    }

    /// Pops the oldest pending test (FIFO order).
    pub fn pop(&mut self) -> Option<TestCase> {
        self.queue.pop_front()
    }

    /// Returns the oldest pending test without removing it.
    pub fn peek(&self) -> Option<&TestCase> {
        self.queue.front()
    }

    /// Removes every pending test.
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Returns the number of tests ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Returns the number of tests dropped due to the capacity bound.
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Returns an iterator over the pending tests in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &TestCase> {
        self.queue.iter()
    }
}

impl fmt::Display for TestPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pending tests ({} pushed, {} dropped)", self.len(), self.total_pushed, self.total_dropped)
    }
}

impl Extend<TestCase> for TestPool {
    fn extend<T: IntoIterator<Item = TestCase>>(&mut self, iter: T) {
        self.push_all(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::TestId;
    use riscv::{Instr, Program};

    fn test(id: u64) -> TestCase {
        TestCase::seed(TestId(id), Program::from_instrs(vec![Instr::nop()]))
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut pool = TestPool::new();
        pool.push_all([test(1), test(2), test(3)]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.peek().unwrap().id, TestId(1));
        assert_eq!(pool.pop().unwrap().id, TestId(1));
        assert_eq!(pool.pop().unwrap().id, TestId(2));
        assert_eq!(pool.pop().unwrap().id, TestId(3));
        assert!(pool.pop().is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn capacity_bound_drops_the_oldest() {
        let mut pool = TestPool::with_capacity(2);
        pool.push_all([test(1), test(2), test(3)]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.pop().unwrap().id, TestId(2));
        assert_eq!(pool.total_pushed(), 3);
        assert_eq!(pool.total_dropped(), 1);
    }

    #[test]
    fn clear_and_iterate() {
        let mut pool = TestPool::new();
        pool.extend([test(5), test(6)]);
        let ids: Vec<u64> = pool.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![5, 6]);
        pool.clear();
        assert!(pool.is_empty());
        assert!(pool.to_string().contains("0 pending"));
    }
}
