//! The TheHuzz-style baseline fuzzer: static, first-in-first-out scheduling.
//!
//! The loop mirrors the description of TheHuzz in the MABFuzz paper
//! (§II-A, §I-B): random seeds populate a single global test pool, tests are
//! simulated strictly in FIFO order, tests that cover new points are mutated
//! into a fixed number of children which join the back of the pool, and when
//! the pool runs dry a fresh random seed is generated. There is no dynamic
//! decision anywhere — that is precisely the limitation MABFuzz addresses.

use std::sync::Arc;

use proc_sim::Processor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::campaign::{CampaignConfig, CampaignStats};
use crate::harness::{ExecScratch, FuzzHarness};
use crate::mutate::MutationEngine;
use crate::pool::TestPool;
use crate::seed::SeedGenerator;

/// The baseline fuzzer.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use fuzzer::{CampaignConfig, TheHuzzFuzzer};
/// use proc_sim::{cores::RocketCore, BugSet};
///
/// let processor = Arc::new(RocketCore::new(BugSet::none()));
/// let config = CampaignConfig { max_tests: 20, ..CampaignConfig::default() };
/// let stats = TheHuzzFuzzer::new(processor, config, 7).run();
/// assert_eq!(stats.tests_executed(), 20);
/// ```
pub struct TheHuzzFuzzer {
    harness: FuzzHarness,
    config: CampaignConfig,
    rng: StdRng,
    seeds: SeedGenerator,
    mutator: MutationEngine,
}

impl TheHuzzFuzzer {
    /// Creates a baseline fuzzer for `processor` with reproducible randomness
    /// derived from `rng_seed`.
    pub fn new(processor: Arc<dyn Processor>, config: CampaignConfig, rng_seed: u64) -> TheHuzzFuzzer {
        let harness = FuzzHarness::new(processor, config.max_steps_per_test);
        let seeds = SeedGenerator::new(config.generator.clone());
        let mutator = MutationEngine::new(config.generator.clone());
        TheHuzzFuzzer { harness, config, rng: StdRng::seed_from_u64(rng_seed), seeds, mutator }
    }

    /// Returns the campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Returns the name of the processor under test.
    pub fn processor_name(&self) -> &str {
        self.harness.processor().name()
    }

    /// Runs the campaign to completion and returns its statistics.
    pub fn run(mut self) -> CampaignStats {
        let label = format!("TheHuzz on {}", self.harness.processor().name());
        let mut stats = CampaignStats::new(
            label,
            self.harness.coverage_space_len(),
            self.config.sample_interval,
        );
        let mut pool = TestPool::new();
        pool.push_all(self.seeds.generate_seeds(&mut self.rng, self.config.num_seeds));
        let mut scratch = ExecScratch::new();

        while stats.tests_executed() < self.config.max_tests {
            // Static decision #1: strictly FIFO test selection; when the pool
            // is empty a fresh random seed is generated.
            let test = match pool.pop() {
                Some(test) => test,
                None => self.seeds.generate_seed(&mut self.rng),
            };

            let outcome = self.harness.run_program_into(&test.program, &mut scratch);
            let detected = outcome.detected_mismatch();
            let new_points = stats.record_test_count(test.id, outcome.coverage, outcome.diff);

            if self.config.stop_on_first_detection && detected {
                break;
            }

            // Static decision #2: every interesting test produces the same
            // fixed number of mutants, appended to the back of the queue.
            if new_points > 0 {
                for _ in 0..self.config.mutations_per_interesting_test {
                    let (mutant, _op) = self.mutator.mutate(&test.program, &mut self.rng);
                    pool.push(self.seeds.adopt_child(&test, mutant));
                }
            }
        }

        stats.finish();
        stats
    }
}

impl std::fmt::Debug for TheHuzzFuzzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TheHuzzFuzzer")
            .field("processor", &self.harness.processor().name())
            .field("max_tests", &self.config.max_tests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proc_sim::{cores::Cva6Core, cores::RocketCore, BugSet, Vulnerability};

    fn small_config(max_tests: u64) -> CampaignConfig {
        CampaignConfig {
            max_tests,
            max_steps_per_test: 200,
            num_seeds: 4,
            mutations_per_interesting_test: 2,
            sample_interval: 5,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_runs_the_requested_number_of_tests() {
        let processor = Arc::new(RocketCore::new(BugSet::none()));
        let stats = TheHuzzFuzzer::new(processor, small_config(30), 1).run();
        assert_eq!(stats.tests_executed(), 30);
        assert!(stats.final_coverage() > 100, "30 tests should cover a fair number of points");
        assert_eq!(stats.mismatching_tests(), 0, "bug-free core never mismatches");
    }

    #[test]
    fn coverage_grows_monotonically_and_saturates() {
        let processor = Arc::new(RocketCore::new(BugSet::none()));
        let stats = TheHuzzFuzzer::new(processor, small_config(60), 2).run();
        let history = stats.cumulative().history();
        assert!(history.windows(2).all(|w| w[1] >= w[0]));
        // Early tests contribute far more new coverage than late ones
        // (diminishing returns — the property MABFuzz exploits).
        let first_10: usize = history[9];
        let last_10_gain: usize = history[history.len() - 1] - history[history.len() - 11];
        assert!(first_10 > last_10_gain, "coverage gains should diminish over time");
    }

    #[test]
    fn detection_mode_stops_at_the_first_mismatch() {
        let processor = Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let stats =
            TheHuzzFuzzer::new(processor, small_config(400).detection_mode(), 3).run();
        let detection = stats.first_detection().expect("V5 is easy to trigger");
        assert!(detection <= 400);
        assert_eq!(stats.tests_executed(), detection, "campaign stops at the detection");
    }

    #[test]
    fn identical_rng_seeds_reproduce_identical_campaigns() {
        let a = TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(15), 9).run();
        let b = TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(15), 9).run();
        assert_eq!(a.final_coverage(), b.final_coverage());
        assert_eq!(a.cumulative().history(), b.cumulative().history());
    }

    #[test]
    fn different_rng_seeds_explore_differently() {
        let a = TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(15), 10).run();
        let b = TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(15), 11).run();
        assert_ne!(a.cumulative().history(), b.cumulative().history());
    }
}
