//! The TheHuzz-style baseline fuzzer: static, first-in-first-out scheduling.
//!
//! The loop mirrors the description of TheHuzz in the MABFuzz paper
//! (§II-A, §I-B): random seeds populate a single global test pool, tests are
//! simulated strictly in FIFO order, tests that cover new points are mutated
//! into a fixed number of children which join the back of the pool, and when
//! the pool runs dry a fresh random seed is generated. There is no dynamic
//! decision anywhere — that is precisely the limitation MABFuzz addresses.
//!
//! The baseline speaks the same per-test fold protocol as the MABFuzz
//! campaign loop: [`TheHuzzFuzzer::run_with`] reports every executed test as
//! a [`BaselineTestRecord`] the moment it is folded into the statistics, so
//! the campaign layer (`mabfuzz::Campaign`) can stream the same
//! per-test events for baseline campaigns as for bandit campaigns.
//! [`TheHuzzFuzzer::run`] is the sink-less special case and remains
//! byte-identical to the pre-instrumentation loop.

use std::sync::Arc;

use coverage::CoverageMap;
use proc_sim::Processor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::campaign::{CampaignConfig, CampaignStats};
use crate::diff::DiffReport;
use crate::harness::{ExecScratch, FuzzHarness};
use crate::mutate::MutationEngine;
use crate::pool::TestPool;
use crate::seed::SeedGenerator;
use crate::testcase::TestId;

/// One executed baseline test, handed to the sink of
/// [`TheHuzzFuzzer::run_with`] right after the test was folded into the
/// campaign statistics — the baseline counterpart of the MABFuzz fold's
/// per-test step.
///
/// The record is emitted *before* the detection-mode stop check and before
/// any mutants are enqueued, in strict FIFO execution order, so a sink
/// observes exactly the sequence the statistics observe (the detecting test
/// of a stopping campaign included).
#[derive(Debug)]
pub struct BaselineTestRecord<'a> {
    /// 1-based number of the test within the campaign.
    pub test_number: u64,
    /// Id of the test case.
    pub test_id: TestId,
    /// Coverage points new to the whole campaign — the novelty count that
    /// gates mutation in the FIFO loop.
    pub new_points: usize,
    /// Cumulative campaign coverage after this test.
    pub covered: usize,
    /// Whether the test exposed an architectural mismatch.
    pub detected: bool,
    /// The test's coverage bitmap.
    pub coverage: &'a CoverageMap,
    /// The differential-testing report.
    pub diff: &'a DiffReport,
}

/// The baseline fuzzer.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use fuzzer::{CampaignConfig, TheHuzzFuzzer};
/// use proc_sim::{cores::RocketCore, BugSet};
///
/// let processor = Arc::new(RocketCore::new(BugSet::none()));
/// let config = CampaignConfig { max_tests: 20, ..CampaignConfig::default() };
/// let stats = TheHuzzFuzzer::new(processor, config, 7).run();
/// assert_eq!(stats.tests_executed(), 20);
/// ```
pub struct TheHuzzFuzzer {
    harness: FuzzHarness,
    config: CampaignConfig,
    rng: StdRng,
    seeds: SeedGenerator,
    mutator: MutationEngine,
}

impl TheHuzzFuzzer {
    /// Creates a baseline fuzzer for `processor` with reproducible randomness
    /// derived from `rng_seed`.
    pub fn new(processor: Arc<dyn Processor>, config: CampaignConfig, rng_seed: u64) -> TheHuzzFuzzer {
        let harness = FuzzHarness::new(processor, config.max_steps_per_test);
        let seeds = SeedGenerator::new(config.generator.clone());
        let mutator = MutationEngine::new(config.generator.clone());
        TheHuzzFuzzer { harness, config, rng: StdRng::seed_from_u64(rng_seed), seeds, mutator }
    }

    /// Selects the coverage signal the campaign's harness reports (point by
    /// default); must be called before the run starts, since the statistics
    /// size themselves from [`coverage_space_len`](TheHuzzFuzzer::coverage_space_len).
    pub fn set_coverage_signal(&mut self, signal: crate::harness::CoverageSignal) {
        self.harness.set_coverage_signal(signal);
    }

    /// Returns the campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Returns the name of the processor under test.
    pub fn processor_name(&self) -> &str {
        self.harness.processor().name()
    }

    /// Returns the size of the DUT's coverage space.
    pub fn coverage_space_len(&self) -> usize {
        self.harness.coverage_space_len()
    }

    /// Runs the campaign to completion and returns its statistics.
    ///
    /// Equivalent to [`run_with`](TheHuzzFuzzer::run_with) with a no-op sink
    /// (the closure inlines away, so the uninstrumented hot path pays
    /// nothing for the seam).
    pub fn run(self) -> CampaignStats {
        self.run_with(|_| {})
    }

    /// Runs the campaign to completion, reporting every executed test to
    /// `sink` as a [`BaselineTestRecord`] in FIFO execution order.
    ///
    /// The sink cannot influence the campaign — records are immutable
    /// borrows — so the returned statistics are byte-identical to
    /// [`run`](TheHuzzFuzzer::run) for any sink. Detection-mode ordering is
    /// preserved exactly: the detecting test is recorded (and reported) and
    /// the loop then breaks *before* enqueuing mutants.
    pub fn run_with(self, sink: impl FnMut(&BaselineTestRecord<'_>)) -> CampaignStats {
        self.run_with_stop(|| false, sink)
    }

    /// [`run_with`](TheHuzzFuzzer::run_with), plus a cooperative stop probe
    /// polled before each test: when `should_stop` returns `true` the loop
    /// ends at that test boundary and the statistics are finalised over
    /// exactly the tests already folded (the campaign layer's cancellation
    /// hook). A probe that fires before the first test yields an empty,
    /// finished campaign.
    pub fn run_with_stop(
        mut self,
        mut should_stop: impl FnMut() -> bool,
        mut sink: impl FnMut(&BaselineTestRecord<'_>),
    ) -> CampaignStats {
        let label = format!("TheHuzz on {}", self.harness.processor().name());
        let mut stats = CampaignStats::new(
            label,
            self.harness.coverage_space_len(),
            self.config.sample_interval,
        );
        let mut pool = TestPool::new();
        pool.push_all(self.seeds.generate_seeds(&mut self.rng, self.config.num_seeds));
        let mut scratch = ExecScratch::new();

        while stats.tests_executed() < self.config.max_tests && !should_stop() {
            // Static decision #1: strictly FIFO test selection; when the pool
            // is empty a fresh random seed is generated.
            let test = match pool.pop() {
                Some(test) => test,
                None => self.seeds.generate_seed(&mut self.rng),
            };

            let outcome = self.harness.run_program_into(&test.program, &mut scratch);
            let detected = outcome.detected_mismatch();
            let new_points = stats.record_test_count(test.id, outcome.coverage, outcome.diff);
            sink(&BaselineTestRecord {
                test_number: stats.tests_executed(),
                test_id: test.id,
                new_points,
                covered: stats.final_coverage(),
                detected,
                coverage: outcome.coverage,
                diff: outcome.diff,
            });

            if self.config.stop_on_first_detection && detected {
                break;
            }

            // Static decision #2: every interesting test produces the same
            // fixed number of mutants, appended to the back of the queue.
            if new_points > 0 {
                for _ in 0..self.config.mutations_per_interesting_test {
                    let (mutant, _op) = self.mutator.mutate(&test.program, &mut self.rng);
                    pool.push(self.seeds.adopt_child(&test, mutant));
                }
            }
        }

        stats.finish();
        stats
    }
}

impl std::fmt::Debug for TheHuzzFuzzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TheHuzzFuzzer")
            .field("processor", &self.harness.processor().name())
            .field("max_tests", &self.config.max_tests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proc_sim::{cores::Cva6Core, cores::RocketCore, BugSet, Vulnerability};

    fn small_config(max_tests: u64) -> CampaignConfig {
        CampaignConfig {
            max_tests,
            max_steps_per_test: 200,
            num_seeds: 4,
            mutations_per_interesting_test: 2,
            sample_interval: 5,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_runs_the_requested_number_of_tests() {
        let processor = Arc::new(RocketCore::new(BugSet::none()));
        let stats = TheHuzzFuzzer::new(processor, small_config(30), 1).run();
        assert_eq!(stats.tests_executed(), 30);
        assert!(stats.final_coverage() > 100, "30 tests should cover a fair number of points");
        assert_eq!(stats.mismatching_tests(), 0, "bug-free core never mismatches");
    }

    #[test]
    fn coverage_grows_monotonically_and_saturates() {
        let processor = Arc::new(RocketCore::new(BugSet::none()));
        let stats = TheHuzzFuzzer::new(processor, small_config(60), 2).run();
        let history = stats.cumulative().history();
        assert!(history.windows(2).all(|w| w[1] >= w[0]));
        // Early tests contribute far more new coverage than late ones
        // (diminishing returns — the property MABFuzz exploits).
        let first_10: usize = history[9];
        let last_10_gain: usize = history[history.len() - 1] - history[history.len() - 11];
        assert!(first_10 > last_10_gain, "coverage gains should diminish over time");
    }

    #[test]
    fn detection_mode_stops_at_the_first_mismatch() {
        let processor = Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let stats =
            TheHuzzFuzzer::new(processor, small_config(400).detection_mode(), 3).run();
        let detection = stats.first_detection().expect("V5 is easy to trigger");
        assert!(detection <= 400);
        assert_eq!(stats.tests_executed(), detection, "campaign stops at the detection");
    }

    #[test]
    fn identical_rng_seeds_reproduce_identical_campaigns() {
        let a = TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(15), 9).run();
        let b = TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(15), 9).run();
        assert_eq!(a.final_coverage(), b.final_coverage());
        assert_eq!(a.cumulative().history(), b.cumulative().history());
    }

    #[test]
    fn run_with_reports_every_test_without_changing_the_campaign() {
        let plain =
            TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(40), 5).run();
        let mut records: Vec<(u64, u64, usize, usize)> = Vec::new();
        let observed =
            TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(40), 5)
                .run_with(|record| {
                    assert!(record.covered >= record.new_points);
                    records.push((
                        record.test_number,
                        record.test_id.0,
                        record.new_points,
                        record.covered,
                    ));
                });
        assert_eq!(plain, observed, "the sink must not perturb the campaign");
        assert_eq!(records.len(), 40, "one record per executed test");
        let numbers: Vec<u64> = records.iter().map(|r| r.0).collect();
        assert_eq!(numbers, (1..=40).collect::<Vec<u64>>(), "records arrive in FIFO order");
        assert_eq!(records.last().unwrap().3, observed.final_coverage());
    }

    #[test]
    fn detection_mode_reports_the_stopping_test_before_breaking() {
        let processor = Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let mut last: Option<(u64, bool)> = None;
        let stats = TheHuzzFuzzer::new(processor, small_config(400).detection_mode(), 3)
            .run_with(|record| last = Some((record.test_number, record.detected)));
        let detection = stats.first_detection().expect("V5 is easy to trigger");
        assert_eq!(
            last,
            Some((detection, true)),
            "the detecting test is the last record a stopping campaign reports"
        );
        assert_eq!(stats.tests_executed(), detection);
    }

    #[test]
    fn stop_probes_cut_the_loop_at_a_test_boundary() {
        let fuzzer =
            TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(50), 7);
        let executed = std::cell::Cell::new(0u64);
        let stats = fuzzer.run_with_stop(
            || executed.get() >= 12,
            |record| {
                assert_eq!(record.test_number, executed.get() + 1, "records stay in FIFO order");
                executed.set(record.test_number);
            },
        );
        assert_eq!(stats.tests_executed(), 12, "the probe cut the campaign early");
        assert_eq!(stats.cumulative().history().len(), 12);

        // A probe that fires immediately yields an empty, finished campaign.
        let fuzzer =
            TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(50), 7);
        let stats = fuzzer.run_with_stop(|| true, |_| panic!("no test may run"));
        assert_eq!(stats.tests_executed(), 0);
    }

    #[test]
    fn different_rng_seeds_explore_differently() {
        let a = TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(15), 10).run();
        let b = TheHuzzFuzzer::new(Arc::new(RocketCore::new(BugSet::none())), small_config(15), 11).run();
        assert_ne!(a.cumulative().history(), b.cumulative().history());
    }
}
