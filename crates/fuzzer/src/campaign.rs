//! Campaign configuration and statistics.

use std::fmt;

use coverage::{CoverPointId, CoverageMap, CoverageSeries, CumulativeCoverage};
use riscv::gen::GeneratorConfig;
use serde::{Deserialize, Serialize};

use crate::diff::DiffReport;
use crate::testcase::TestId;

/// Configuration shared by every fuzzing campaign (baseline and MABFuzz).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Total number of tests to simulate (the paper runs 50 000 per campaign;
    /// the benches default to much smaller budgets).
    pub max_tests: u64,
    /// Per-test committed-instruction budget.
    pub max_steps_per_test: usize,
    /// Number of initial seeds (TheHuzz) or arms (MABFuzz).
    pub num_seeds: usize,
    /// How many mutants to create from a test that covered new points.
    pub mutations_per_interesting_test: usize,
    /// Program-generation parameters for seeds and inserted instructions.
    pub generator: GeneratorConfig,
    /// Stop the campaign at the first architectural mismatch (used by the
    /// vulnerability-detection experiments of Table I).
    pub stop_on_first_detection: bool,
    /// Record a coverage-series sample every `sample_interval` tests.
    pub sample_interval: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_tests: 1000,
            max_steps_per_test: 400,
            num_seeds: 10,
            mutations_per_interesting_test: 4,
            generator: GeneratorConfig::default(),
            stop_on_first_detection: false,
            sample_interval: 10,
        }
    }
}

impl CampaignConfig {
    /// Returns a copy configured for vulnerability-detection experiments:
    /// stop at the first mismatch.
    pub fn detection_mode(mut self) -> CampaignConfig {
        self.stop_on_first_detection = true;
        self
    }

    /// Returns a copy with a different test budget.
    pub fn with_max_tests(mut self, max_tests: u64) -> CampaignConfig {
        self.max_tests = max_tests;
        self
    }
}

/// A vulnerability detection event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// 1-based index of the test that exposed the mismatch.
    pub test_number: u64,
    /// Id of the test case.
    pub test_id: TestId,
    /// Summary of the first mismatch.
    pub summary: String,
}

/// Statistics collected while a campaign runs.
///
/// Both fuzzers feed every executed test into [`record_test`](CampaignStats::record_test);
/// the experiment harness then reads the coverage curve (Fig. 3), the
/// final coverage and tests-to-reach numbers (Fig. 4) and the detection test
/// counts (Table I) from here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStats {
    label: String,
    cumulative: CumulativeCoverage,
    series: CoverageSeries,
    tests_executed: u64,
    mismatching_tests: u64,
    detections: Vec<Detection>,
    sample_interval: u64,
}

impl CampaignStats {
    /// Creates empty statistics for a campaign labelled `label` over a
    /// coverage space with `space_len` points.
    ///
    /// A `sample_interval` of 0 is clamped to 1 — purely a defensive
    /// backstop for the legacy imperative constructors, which accept raw
    /// integers. The validated path rejects the value up front:
    /// `CampaignSpec::validate` fails a zero interval with a `SpecError`
    /// naming the field, so no spec-built campaign ever reaches this clamp.
    pub fn new(label: impl Into<String>, space_len: usize, sample_interval: u64) -> CampaignStats {
        let label = label.into();
        CampaignStats {
            series: CoverageSeries::new(label.clone()),
            label,
            cumulative: CumulativeCoverage::new(space_len),
            tests_executed: 0,
            mismatching_tests: 0,
            detections: Vec::new(),
            sample_interval: sample_interval.max(1),
        }
    }

    /// Records one executed test: its coverage map and differential report.
    ///
    /// Returns the coverage points this test was the first in the campaign to
    /// reach (the `cov_G` term of the MABFuzz reward).
    pub fn record_test(
        &mut self,
        test_id: TestId,
        coverage: &CoverageMap,
        diff: &DiffReport,
    ) -> Vec<CoverPointId> {
        self.tests_executed += 1;
        let new_points = self.cumulative.absorb(coverage);
        self.note_test(test_id, diff);
        new_points
    }

    /// Records one executed test like [`record_test`](CampaignStats::record_test)
    /// but returns only *how many* coverage points were globally new.
    ///
    /// This is the campaign hot path: the MABFuzz reward needs only the count
    /// (`|cov_G|`), so the id vector of
    /// [`record_test`](CampaignStats::record_test) is never materialised and
    /// the union + delta count run in one pass over the bitmap.
    pub fn record_test_count(
        &mut self,
        test_id: TestId,
        coverage: &CoverageMap,
        diff: &DiffReport,
    ) -> usize {
        self.tests_executed += 1;
        let new_points = self.cumulative.absorb_count(coverage);
        self.note_test(test_id, diff);
        new_points
    }

    /// The bookkeeping both record paths share once the coverage has been
    /// absorbed: curve sampling and detection recording.
    fn note_test(&mut self, test_id: TestId, diff: &DiffReport) {
        if self.tests_executed.is_multiple_of(self.sample_interval) || self.tests_executed == 1 {
            self.series.record(self.tests_executed, self.cumulative.count());
        }
        if !diff.is_clean() {
            self.mismatching_tests += 1;
            if let Some(first) = diff.first() {
                self.detections.push(Detection {
                    test_number: self.tests_executed,
                    test_id,
                    summary: first.to_string(),
                });
            }
        }
    }

    /// Finalises the series so the last sample reflects the very last test.
    pub fn finish(&mut self) {
        if self.tests_executed > 0 {
            self.series.record(self.tests_executed, self.cumulative.count());
        }
    }

    /// Returns the campaign label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Returns the number of executed tests.
    pub fn tests_executed(&self) -> u64 {
        self.tests_executed
    }

    /// Returns the number of tests that exposed at least one mismatch.
    pub fn mismatching_tests(&self) -> u64 {
        self.mismatching_tests
    }

    /// Returns the detection events in chronological order.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Returns the test number of the first detection, if any — the paper's
    /// `#Tests` metric in Table I.
    pub fn first_detection(&self) -> Option<u64> {
        self.detections.first().map(|d| d.test_number)
    }

    /// Returns the cumulative coverage accumulator.
    pub fn cumulative(&self) -> &CumulativeCoverage {
        &self.cumulative
    }

    /// Returns the final number of covered points.
    pub fn final_coverage(&self) -> usize {
        self.cumulative.count()
    }

    /// Returns the coverage-versus-tests curve.
    pub fn series(&self) -> &CoverageSeries {
        &self.series
    }

    /// Returns the smallest number of tests after which the campaign had
    /// covered at least `target` points.
    pub fn tests_to_reach(&self, target: usize) -> Option<u64> {
        self.cumulative.tests_to_reach(target)
    }
}

impl fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} tests, {} points covered ({:.2}%), {} mismatching tests",
            self.label,
            self.tests_executed,
            self.final_coverage(),
            self.cumulative.ratio() * 100.0,
            self.mismatching_tests
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::compare_traces;
    use isa_sim::GoldenSim;
    use riscv::asm::parse_program;
    use riscv::Program;

    fn coverage_with(len: usize, ids: &[u32]) -> CoverageMap {
        let mut map = CoverageMap::with_len(len);
        for &i in ids {
            map.cover(CoverPointId(i));
        }
        map
    }

    fn clean_diff() -> DiffReport {
        let program = Program::from_instrs(parse_program("addi a0, zero, 1\necall\n").unwrap());
        let trace = GoldenSim::new().run(&program, 50);
        compare_traces(&trace, &trace)
    }

    #[test]
    fn config_builders() {
        let config = CampaignConfig::default().detection_mode().with_max_tests(123);
        assert!(config.stop_on_first_detection);
        assert_eq!(config.max_tests, 123);
    }

    #[test]
    fn record_test_accumulates_coverage_and_series() {
        let mut stats = CampaignStats::new("test", 100, 2);
        let new_first = stats.record_test(TestId(0), &coverage_with(100, &[1, 2]), &clean_diff());
        assert_eq!(new_first.len(), 2);
        let new_second = stats.record_test(TestId(1), &coverage_with(100, &[2, 3]), &clean_diff());
        assert_eq!(new_second, vec![CoverPointId(3)]);
        stats.finish();
        assert_eq!(stats.tests_executed(), 2);
        assert_eq!(stats.final_coverage(), 3);
        assert_eq!(stats.series().final_coverage(), 3);
        assert_eq!(stats.tests_to_reach(3), Some(2));
        assert_eq!(stats.tests_to_reach(50), None);
        assert!(stats.to_string().contains("2 tests"));
    }

    #[test]
    fn detections_are_recorded_with_their_test_number() {
        let mut stats = CampaignStats::new("test", 10, 1);
        stats.record_test(TestId(0), &coverage_with(10, &[0]), &clean_diff());
        // Build a non-clean report by comparing traces of different programs.
        let a = GoldenSim::new().run(
            &Program::from_instrs(parse_program("addi a0, zero, 1\necall\n").unwrap()),
            50,
        );
        let b = GoldenSim::new().run(
            &Program::from_instrs(parse_program("addi a0, zero, 2\necall\n").unwrap()),
            50,
        );
        let dirty = compare_traces(&a, &b);
        assert!(!dirty.is_clean());
        stats.record_test(TestId(1), &coverage_with(10, &[1]), &dirty);
        assert_eq!(stats.mismatching_tests(), 1);
        assert_eq!(stats.first_detection(), Some(2));
        assert_eq!(stats.detections().len(), 1);
        assert_eq!(stats.detections()[0].test_id, TestId(1));
    }

    #[test]
    fn zero_sample_interval_clamps_on_the_legacy_constructor_path() {
        // The spec layer rejects 0 during validation; the raw constructor
        // keeps a clamp so a hand-assembled legacy config cannot divide by
        // zero in the sampling check.
        let mut clamped = CampaignStats::new("legacy", 10, 0);
        let mut reference = CampaignStats::new("legacy", 10, 1);
        for stats in [&mut clamped, &mut reference] {
            stats.record_test(TestId(0), &coverage_with(10, &[0]), &clean_diff());
            stats.record_test(TestId(1), &coverage_with(10, &[1]), &clean_diff());
            stats.finish();
        }
        assert_eq!(clamped, reference, "interval 0 behaves as interval 1");
    }

    #[test]
    fn labels_flow_through() {
        let stats = CampaignStats::new("MABFuzz: UCB on cva6", 10, 5);
        assert_eq!(stats.label(), "MABFuzz: UCB on cva6");
        assert_eq!(stats.series().label(), "MABFuzz: UCB on cva6");
        assert_eq!(stats.first_detection(), None);
    }
}
