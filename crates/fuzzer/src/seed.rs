//! Seed generation: the initial population of the fuzzer's test pool.

use rand::Rng;
use riscv::gen::{GeneratorConfig, ProgramGenerator};
use riscv::Program;

use crate::testcase::{TestCase, TestId};

/// Generates seed test cases using the weighted random program generator.
///
/// The generator also hands out campaign-unique [`TestId`]s, so both fuzzers
/// route all test creation (seeds *and* mutants) through it.
#[derive(Debug, Clone)]
pub struct SeedGenerator {
    generator: ProgramGenerator,
    next_id: u64,
}

impl SeedGenerator {
    /// Creates a seed generator with the given program-generation config.
    pub fn new(config: GeneratorConfig) -> SeedGenerator {
        SeedGenerator { generator: ProgramGenerator::new(config), next_id: 0 }
    }

    /// Returns the underlying program generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        self.generator.config()
    }

    /// Allocates the next campaign-unique test id.
    pub fn next_id(&mut self) -> TestId {
        let id = TestId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Returns how many ids have been allocated so far.
    pub fn ids_allocated(&self) -> u64 {
        self.next_id
    }

    /// Generates one fresh seed test case.
    pub fn generate_seed<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TestCase {
        let id = self.next_id();
        TestCase::seed(id, self.generator.generate_seed(rng))
    }

    /// Generates `count` fresh seed test cases.
    pub fn generate_seeds<R: Rng + ?Sized>(&mut self, rng: &mut R, count: usize) -> Vec<TestCase> {
        (0..count).map(|_| self.generate_seed(rng)).collect()
    }

    /// Wraps an externally supplied program (e.g. a directed, hand-written
    /// seed) into a seed test case.
    pub fn adopt_program(&mut self, program: Program) -> TestCase {
        let id = self.next_id();
        TestCase::seed(id, program)
    }

    /// Registers a mutated program as a child of `parent`.
    pub fn adopt_child(&mut self, parent: &TestCase, program: Program) -> TestCase {
        let id = self.next_id();
        TestCase::child_of(parent, id, program)
    }
}

impl Default for SeedGenerator {
    fn default() -> Self {
        SeedGenerator::new(GeneratorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut generator = SeedGenerator::default();
        let mut rng = StdRng::seed_from_u64(1);
        let seeds = generator.generate_seeds(&mut rng, 5);
        let ids: Vec<u64> = seeds.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(generator.ids_allocated(), 5);
    }

    #[test]
    fn seeds_are_runnable_programs() {
        let mut generator = SeedGenerator::default();
        let mut rng = StdRng::seed_from_u64(2);
        let seed = generator.generate_seed(&mut rng);
        assert!(seed.is_seed());
        assert!(seed.program.len() > 5);
    }

    #[test]
    fn adopting_programs_assigns_lineage() {
        let mut generator = SeedGenerator::default();
        let mut rng = StdRng::seed_from_u64(3);
        let seed = generator.generate_seed(&mut rng);
        let child = generator.adopt_child(&seed, seed.program.clone());
        assert_eq!(child.parent, Some(seed.id));
        assert_eq!(child.generation, 1);
        let adopted = generator.adopt_program(seed.program.clone());
        assert!(adopted.is_seed());
        assert_ne!(adopted.id, seed.id);
    }

    #[test]
    fn deterministic_for_a_fixed_rng_seed() {
        let mut g1 = SeedGenerator::default();
        let mut g2 = SeedGenerator::default();
        let a = g1.generate_seeds(&mut StdRng::seed_from_u64(9), 3);
        let b = g2.generate_seeds(&mut StdRng::seed_from_u64(9), 3);
        assert_eq!(a, b);
    }
}
