//! The mutation engine: TheHuzz-style test-program mutations.
//!
//! TheHuzz mutates *interesting* tests (tests that covered new points) with a
//! fixed set of operators working at both the bit level and the instruction
//! level. The same engine is reused unchanged by MABFuzz — the paper's
//! contribution is *which seed to pick*, not *how to mutate* — so keeping the
//! operator set identical between the baseline and MABFuzz is what makes the
//! comparison meaningful.

use rand::Rng;
use riscv::gen::{GeneratorConfig, ProgramGenerator};
use riscv::{decode, Gpr, Instr, Op, Program};
use serde::{Deserialize, Serialize};

/// One mutation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MutationOp {
    /// Flip a single bit of one instruction word (may produce an illegal word).
    BitFlip,
    /// Flip a whole byte of one instruction word.
    ByteFlip,
    /// Replace the operation with another of the same functional class.
    OpcodeSwap,
    /// Replace one of the operand registers with a random register.
    RegisterSwap,
    /// Add a small signed delta to the immediate.
    ImmediateNudge,
    /// Replace the immediate with a boundary value (0, ±1, min, max).
    ImmediateBoundary,
    /// Overwrite one instruction with a freshly generated random instruction.
    InstructionReplace,
    /// Insert a freshly generated random instruction.
    InstructionInsert,
    /// Delete one instruction.
    InstructionDelete,
    /// Duplicate one instruction in place (back-to-back dependency pattern).
    InstructionDuplicate,
    /// Swap two instructions.
    InstructionSwap,
}

impl MutationOp {
    /// All operators, in a stable order.
    pub const ALL: [MutationOp; 11] = [
        MutationOp::BitFlip,
        MutationOp::ByteFlip,
        MutationOp::OpcodeSwap,
        MutationOp::RegisterSwap,
        MutationOp::ImmediateNudge,
        MutationOp::ImmediateBoundary,
        MutationOp::InstructionReplace,
        MutationOp::InstructionInsert,
        MutationOp::InstructionDelete,
        MutationOp::InstructionDuplicate,
        MutationOp::InstructionSwap,
    ];

    /// Returns a short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MutationOp::BitFlip => "bit_flip",
            MutationOp::ByteFlip => "byte_flip",
            MutationOp::OpcodeSwap => "opcode_swap",
            MutationOp::RegisterSwap => "register_swap",
            MutationOp::ImmediateNudge => "immediate_nudge",
            MutationOp::ImmediateBoundary => "immediate_boundary",
            MutationOp::InstructionReplace => "instruction_replace",
            MutationOp::InstructionInsert => "instruction_insert",
            MutationOp::InstructionDelete => "instruction_delete",
            MutationOp::InstructionDuplicate => "instruction_duplicate",
            MutationOp::InstructionSwap => "instruction_swap",
        }
    }
}

impl std::fmt::Display for MutationOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The mutation engine.
///
/// # Example
///
/// ```
/// use fuzzer::MutationEngine;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use riscv::gen::{GeneratorConfig, ProgramGenerator};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let seed = ProgramGenerator::new(GeneratorConfig::default()).generate_seed(&mut rng);
/// let engine = MutationEngine::new(GeneratorConfig::default());
/// let (mutant, op) = engine.mutate(&seed, &mut rng);
/// assert!(!mutant.is_empty());
/// let _ = op;
/// ```
#[derive(Debug, Clone)]
pub struct MutationEngine {
    generator: ProgramGenerator,
    max_program_len: usize,
}

impl MutationEngine {
    /// Creates an engine; freshly generated instructions (for
    /// insert/replace operators) use `config`.
    pub fn new(config: GeneratorConfig) -> MutationEngine {
        MutationEngine { generator: ProgramGenerator::new(config), max_program_len: 256 }
    }

    /// Sets the maximum program length the insert operator may grow a test to.
    pub fn with_max_program_len(mut self, max_program_len: usize) -> MutationEngine {
        self.max_program_len = max_program_len.max(1);
        self
    }

    /// Applies one randomly chosen operator to `program`, returning the mutant
    /// and the operator applied.
    pub fn mutate<R: Rng + ?Sized>(&self, program: &Program, rng: &mut R) -> (Program, MutationOp) {
        let op = MutationOp::ALL[rng.gen_range(0..MutationOp::ALL.len())];
        (self.apply(program, op, rng), op)
    }

    /// Produces `count` mutants of `program`.
    pub fn mutate_many<R: Rng + ?Sized>(
        &self,
        program: &Program,
        count: usize,
        rng: &mut R,
    ) -> Vec<(Program, MutationOp)> {
        (0..count).map(|_| self.mutate(program, rng)).collect()
    }

    /// Applies a specific operator to `program`.
    ///
    /// Empty programs are returned unchanged (there is nothing to mutate).
    pub fn apply<R: Rng + ?Sized>(&self, program: &Program, op: MutationOp, rng: &mut R) -> Program {
        if program.is_empty() {
            return program.clone();
        }
        let mut mutant = program.clone();
        let index = rng.gen_range(0..mutant.len());
        match op {
            MutationOp::BitFlip | MutationOp::ByteFlip => {
                let original_word = mutant
                    .raw(index)
                    .unwrap_or_else(|| mutant.instrs()[index].encode());
                let mutated_word = if op == MutationOp::BitFlip {
                    original_word ^ (1u32 << rng.gen_range(0..32))
                } else {
                    original_word ^ (0xffu32 << (8 * rng.gen_range(0..4)))
                };
                match decode(mutated_word) {
                    Ok(instr) => {
                        mutant.clear_raw(index);
                        mutant.instrs_mut()[index] = instr;
                    }
                    Err(_) => {
                        // Keep the undecodable word: illegal instructions are
                        // legitimate stimuli for the decoder's error paths.
                        mutant.instrs_mut()[index] = Instr::nop();
                        mutant.set_raw(index, mutated_word);
                    }
                }
            }
            MutationOp::OpcodeSwap => {
                let instr = mutant.instrs()[index];
                let candidates: Vec<Op> = Op::of_class(instr.op.class()).collect();
                let new_op = candidates[rng.gen_range(0..candidates.len())];
                mutant.clear_raw(index);
                mutant.instrs_mut()[index] = Instr { op: new_op, ..instr }.normalize();
            }
            MutationOp::RegisterSwap => {
                let mut instr = mutant.instrs()[index];
                match rng.gen_range(0..3) {
                    0 => instr.rd = Gpr::from_index(rng.gen_range(0..32)),
                    1 => instr.rs1 = Gpr::from_index(rng.gen_range(0..32)),
                    _ => instr.rs2 = Gpr::from_index(rng.gen_range(0..32)),
                }
                mutant.clear_raw(index);
                mutant.instrs_mut()[index] = instr.normalize();
            }
            MutationOp::ImmediateNudge => {
                let mut instr = mutant.instrs()[index];
                instr.imm = instr.imm.wrapping_add(i64::from(rng.gen_range(-16i32..=16)));
                mutant.clear_raw(index);
                mutant.instrs_mut()[index] = instr.normalize();
            }
            MutationOp::ImmediateBoundary => {
                let mut instr = mutant.instrs()[index];
                instr.imm = match rng.gen_range(0..5) {
                    0 => 0,
                    1 => 1,
                    2 => -1,
                    3 => i64::MAX,
                    _ => i64::MIN,
                };
                mutant.clear_raw(index);
                mutant.instrs_mut()[index] = instr.normalize();
            }
            MutationOp::InstructionReplace => {
                let fresh = self.generator.generate_instr(rng, index, mutant.len());
                mutant.clear_raw(index);
                mutant.instrs_mut()[index] = fresh;
            }
            MutationOp::InstructionInsert => {
                if mutant.len() < self.max_program_len {
                    let fresh = self.generator.generate_instr(rng, index, mutant.len());
                    // Raw overrides are keyed by index; shifting them is not
                    // worth the complexity, so inserts go through a rebuild.
                    let mut instrs = mutant.instrs().to_vec();
                    instrs.insert(index, fresh);
                    let data = mutant.data().to_vec();
                    let mut rebuilt = Program::from_instrs(instrs);
                    rebuilt.set_data(data);
                    mutant = rebuilt;
                }
            }
            MutationOp::InstructionDelete => {
                if mutant.len() > 1 {
                    let mut instrs = mutant.instrs().to_vec();
                    instrs.remove(index);
                    let data = mutant.data().to_vec();
                    let mut rebuilt = Program::from_instrs(instrs);
                    rebuilt.set_data(data);
                    mutant = rebuilt;
                }
            }
            MutationOp::InstructionDuplicate => {
                if mutant.len() < self.max_program_len {
                    let instr = mutant.instrs()[index];
                    let mut instrs = mutant.instrs().to_vec();
                    instrs.insert(index, instr);
                    let data = mutant.data().to_vec();
                    let mut rebuilt = Program::from_instrs(instrs);
                    rebuilt.set_data(data);
                    mutant = rebuilt;
                }
            }
            MutationOp::InstructionSwap => {
                if mutant.len() > 1 {
                    let other = rng.gen_range(0..mutant.len());
                    mutant.clear_raw(index);
                    mutant.clear_raw(other);
                    mutant.instrs_mut().swap(index, other);
                }
            }
        }
        mutant
    }
}

impl Default for MutationEngine {
    fn default() -> Self {
        MutationEngine::new(GeneratorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use riscv::gen::ProgramGenerator;

    fn seed_program(rng_seed: u64) -> Program {
        ProgramGenerator::default().generate_seed(&mut StdRng::seed_from_u64(rng_seed))
    }

    #[test]
    fn every_operator_produces_a_runnable_program() {
        let engine = MutationEngine::default();
        let program = seed_program(1);
        let mut rng = StdRng::seed_from_u64(2);
        for op in MutationOp::ALL {
            let mutant = engine.apply(&program, op, &mut rng);
            assert!(!mutant.is_empty(), "{op} emptied the program");
            // The byte image must still be well formed (4 bytes per slot).
            assert_eq!(mutant.text_bytes().len(), mutant.len() * 4, "{op}");
        }
    }

    #[test]
    fn mutation_changes_the_program_most_of_the_time() {
        let engine = MutationEngine::default();
        let program = seed_program(3);
        let mut rng = StdRng::seed_from_u64(4);
        let changed = (0..50)
            .filter(|_| engine.mutate(&program, &mut rng).0.text_bytes() != program.text_bytes())
            .count();
        assert!(changed >= 40, "only {changed}/50 mutations changed the program");
    }

    #[test]
    fn bit_flips_can_create_and_preserve_illegal_words() {
        let engine = MutationEngine::default();
        let program = seed_program(5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut produced_illegal = false;
        let mut current = program;
        for _ in 0..200 {
            current = engine.apply(&current, MutationOp::BitFlip, &mut rng);
            if current.raw_count() > 0 {
                produced_illegal = true;
                break;
            }
        }
        assert!(produced_illegal, "200 bit flips should hit at least one illegal encoding");
    }

    #[test]
    fn opcode_swap_stays_within_the_class() {
        let engine = MutationEngine::default();
        let program = Program::from_instrs(vec![Instr::rtype(Op::Add, Gpr::A0, Gpr::A1, Gpr::A2)]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mutant = engine.apply(&program, MutationOp::OpcodeSwap, &mut rng);
            assert_eq!(mutant.instrs()[0].op.class(), Op::Add.class());
        }
    }

    #[test]
    fn insert_and_delete_change_length_within_bounds() {
        let engine = MutationEngine::default().with_max_program_len(8);
        let program = seed_program(8);
        let mut rng = StdRng::seed_from_u64(9);
        let inserted = engine.apply(&program, MutationOp::InstructionInsert, &mut rng);
        // Seed programs are longer than the 8-instruction cap, so the insert
        // is a no-op under this engine configuration.
        assert_eq!(inserted.len(), program.len());
        let deleted = engine.apply(&program, MutationOp::InstructionDelete, &mut rng);
        assert_eq!(deleted.len(), program.len() - 1);

        let tiny = Program::from_instrs(vec![Instr::nop()]);
        let not_deleted = engine.apply(&tiny, MutationOp::InstructionDelete, &mut rng);
        assert_eq!(not_deleted.len(), 1, "single-instruction programs are not emptied");
        let grown = engine.apply(&tiny, MutationOp::InstructionInsert, &mut rng);
        assert_eq!(grown.len(), 2);
    }

    #[test]
    fn mutations_are_deterministic_per_rng_seed() {
        let engine = MutationEngine::default();
        let program = seed_program(10);
        let a = engine.mutate_many(&program, 5, &mut StdRng::seed_from_u64(11));
        let b = engine.mutate_many(&program, 5, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_programs_are_returned_unchanged() {
        let engine = MutationEngine::default();
        let empty = Program::new();
        let mut rng = StdRng::seed_from_u64(12);
        let (mutant, _) = engine.mutate(&empty, &mut rng);
        assert!(mutant.is_empty());
    }

    #[test]
    fn operator_names_are_unique() {
        let names: std::collections::HashSet<_> = MutationOp::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), MutationOp::ALL.len());
    }
}
