//! The simulate-and-compare harness shared by every fuzzer.

use std::sync::Arc;

use coverage::CoverageMap;
use isa_sim::GoldenSim;
use proc_sim::Processor;
use riscv::Program;

use crate::diff::{compare_traces, DiffReport};

/// The result of running one test program through the harness.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// The branch-coverage bitmap the DUT reported for this test.
    pub coverage: CoverageMap,
    /// The differential-testing report (empty when the DUT matched the golden
    /// model).
    pub diff: DiffReport,
    /// Number of instructions the DUT committed.
    pub dut_commits: usize,
    /// Number of instructions the golden model committed.
    pub golden_commits: usize,
}

impl TestOutcome {
    /// Returns `true` when the test exposed at least one architectural
    /// mismatch (a potential vulnerability).
    pub fn detected_mismatch(&self) -> bool {
        !self.diff.is_clean()
    }
}

/// Runs test programs on a processor model and the golden reference model,
/// returning coverage and differential-testing results.
///
/// The harness is the single place both TheHuzz and MABFuzz call into, so the
/// simulation and comparison semantics are identical across fuzzers — the only
/// thing that differs between them is *which* test gets simulated next.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use fuzzer::FuzzHarness;
/// use proc_sim::{cores::RocketCore, BugSet};
/// use riscv::{Program, Instr, Gpr, Op};
///
/// let harness = FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 1000);
/// let program = Program::from_instrs(vec![
///     Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 1),
///     Instr::nullary(Op::Ecall),
/// ]);
/// let outcome = harness.run_program(&program);
/// assert!(!outcome.detected_mismatch());
/// ```
#[derive(Clone)]
pub struct FuzzHarness {
    processor: Arc<dyn Processor>,
    golden: GoldenSim,
    max_steps: usize,
}

impl FuzzHarness {
    /// Creates a harness for `processor`; each simulation commits at most
    /// `max_steps` instructions.
    pub fn new(processor: Arc<dyn Processor>, max_steps: usize) -> FuzzHarness {
        FuzzHarness { processor, golden: GoldenSim::new(), max_steps }
    }

    /// Returns the processor under test.
    pub fn processor(&self) -> &Arc<dyn Processor> {
        &self.processor
    }

    /// Returns the per-test instruction budget.
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// Returns the size of the DUT's coverage space.
    pub fn coverage_space_len(&self) -> usize {
        self.processor.coverage_space().len()
    }

    /// Simulates `program` on the DUT and the golden model and compares the
    /// traces.
    pub fn run_program(&self, program: &Program) -> TestOutcome {
        let dut = self.processor.run(program, self.max_steps);
        let golden = self.golden.run(program, self.max_steps);
        let diff = compare_traces(&dut.trace, &golden);
        TestOutcome {
            coverage: dut.coverage,
            diff,
            dut_commits: dut.trace.len(),
            golden_commits: golden.len(),
        }
    }
}

impl std::fmt::Debug for FuzzHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuzzHarness")
            .field("processor", &self.processor.name())
            .field("max_steps", &self.max_steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proc_sim::{cores::Cva6Core, cores::RocketCore, BugSet, Vulnerability};
    use riscv::asm::parse_program;

    fn program(asm: &str) -> Program {
        Program::from_instrs(parse_program(asm).expect("valid asm"))
    }

    #[test]
    fn clean_core_reports_coverage_without_mismatches() {
        let harness = FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 500);
        let outcome = harness.run_program(&program("addi a0, zero, 5\nmul a1, a0, a0\necall\n"));
        assert!(!outcome.detected_mismatch());
        assert!(outcome.coverage.count() > 0);
        assert_eq!(outcome.dut_commits, outcome.golden_commits);
        assert_eq!(harness.coverage_space_len(), outcome.coverage.len());
        assert_eq!(harness.max_steps(), 500);
        assert_eq!(harness.processor().name(), "rocket");
    }

    #[test]
    fn buggy_core_reports_a_mismatch_when_triggered() {
        let harness = FuzzHarness::new(
            Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V6UnimplCsrJunk))),
            500,
        );
        let clean = harness.run_program(&program("addi a0, zero, 1\necall\n"));
        assert!(!clean.detected_mismatch(), "no trigger, no mismatch");
        let triggered = harness.run_program(&program("csrrw a0, 0x5c0, zero\necall\n"));
        assert!(triggered.detected_mismatch());
    }

    #[test]
    fn debug_format_names_the_processor() {
        let harness = FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 100);
        let text = format!("{harness:?}");
        assert!(text.contains("rocket"));
    }
}
