//! The simulate-and-compare harness shared by every fuzzer.

use std::sync::Arc;

use analysis::{ProgramFacts, Transition};
use coverage::{CoverageMap, EdgeSpace};
use isa_sim::{DecodeCache, DecodeCacheStats, ExecTrace, GoldenScratch, GoldenSim, ResetPolicy};
use proc_sim::{DutResult, Processor, SimScratch};
use riscv::Program;
use serde::{Deserialize, Serialize};

use crate::diff::{compare_traces_into, DiffReport};

/// Which coverage signal a harness reports per test.
///
/// The signal only changes *what* [`TestOutcome::coverage`] contains — the
/// simulate-and-compare semantics, the differential oracle and every other
/// outcome field are identical in both modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageSignal {
    /// The DUT's branch-coverage bitmap (the paper's signal; the default).
    #[default]
    Point,
    /// Static CFG edges traversed by the DUT's commit stream, hashed into a
    /// fixed-size [`EdgeSpace`] (see the `analysis` crate for the CFG and the
    /// edge-id stability guarantee).
    Edge,
}

impl CoverageSignal {
    /// Stable lower-case name, as spelled in campaign specs and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            CoverageSignal::Point => "point",
            CoverageSignal::Edge => "edge",
        }
    }

    /// Parses the spec/CLI spelling (`"point"` / `"edge"`).
    pub fn parse(text: &str) -> Option<CoverageSignal> {
        match text {
            "point" => Some(CoverageSignal::Point),
            "edge" => Some(CoverageSignal::Edge),
            _ => None,
        }
    }
}

/// The result of running one test program through the harness.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// The branch-coverage bitmap the DUT reported for this test.
    pub coverage: CoverageMap,
    /// The differential-testing report (empty when the DUT matched the golden
    /// model).
    pub diff: DiffReport,
    /// Number of instructions the DUT committed.
    pub dut_commits: usize,
    /// Number of instructions the golden model committed.
    pub golden_commits: usize,
}

impl TestOutcome {
    /// Returns `true` when the test exposed at least one architectural
    /// mismatch (a potential vulnerability).
    pub fn detected_mismatch(&self) -> bool {
        !self.diff.is_clean()
    }
}

/// Runs test programs on a processor model and the golden reference model,
/// returning coverage and differential-testing results.
///
/// The harness is the single place both TheHuzz and MABFuzz call into, so the
/// simulation and comparison semantics are identical across fuzzers — the only
/// thing that differs between them is *which* test gets simulated next.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use fuzzer::FuzzHarness;
/// use proc_sim::{cores::RocketCore, BugSet};
/// use riscv::{Program, Instr, Gpr, Op};
///
/// let harness = FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 1000);
/// let program = Program::from_instrs(vec![
///     Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 1),
///     Instr::nullary(Op::Ecall),
/// ]);
/// let outcome = harness.run_program(&program);
/// assert!(!outcome.detected_mismatch());
/// ```
#[derive(Clone)]
pub struct FuzzHarness {
    processor: Arc<dyn Processor>,
    golden: GoldenSim,
    max_steps: usize,
    signal: CoverageSignal,
    edge_space: EdgeSpace,
}

impl FuzzHarness {
    /// Creates a harness for `processor`; each simulation commits at most
    /// `max_steps` instructions. The coverage signal defaults to
    /// [`CoverageSignal::Point`].
    pub fn new(processor: Arc<dyn Processor>, max_steps: usize) -> FuzzHarness {
        FuzzHarness {
            processor,
            golden: GoldenSim::new(),
            max_steps,
            signal: CoverageSignal::Point,
            edge_space: EdgeSpace::new(),
        }
    }

    /// Selects the coverage signal this harness reports.
    ///
    /// Shard workers clone the harness, so setting the signal before a
    /// campaign starts propagates it to every worker automatically.
    pub fn set_coverage_signal(&mut self, signal: CoverageSignal) {
        self.signal = signal;
    }

    /// The coverage signal this harness reports.
    pub fn coverage_signal(&self) -> CoverageSignal {
        self.signal
    }

    /// Returns the processor under test.
    pub fn processor(&self) -> &Arc<dyn Processor> {
        &self.processor
    }

    /// Returns the per-test instruction budget.
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// Returns the length of every coverage map this harness reports: the
    /// DUT's coverage-space size under the point signal, the fixed
    /// [`EdgeSpace`] length under the edge signal.
    pub fn coverage_space_len(&self) -> usize {
        match self.signal {
            CoverageSignal::Point => self.processor.coverage_space().len(),
            CoverageSignal::Edge => self.edge_space.len(),
        }
    }

    /// Simulates `program` on the DUT and the golden model and compares the
    /// traces.
    ///
    /// Convenience wrapper that allocates fresh buffers per call; campaign
    /// loops use [`run_program_into`](FuzzHarness::run_program_into) with a
    /// long-lived [`ExecScratch`] instead.
    pub fn run_program(&self, program: &Program) -> TestOutcome {
        let mut scratch = ExecScratch::new();
        self.run_program_into(program, &mut scratch);
        let coverage = match self.signal {
            CoverageSignal::Point => scratch.dut.coverage,
            CoverageSignal::Edge => scratch.edge_coverage,
        };
        TestOutcome {
            coverage,
            diff: scratch.diff,
            dut_commits: scratch.dut.trace.len(),
            golden_commits: scratch.golden_trace.len(),
        }
    }

    /// Simulates `program` like [`run_program`](FuzzHarness::run_program) but
    /// into the caller's reusable scratch buffers, returning a borrowed view
    /// of the outcome.
    ///
    /// One `ExecScratch` per campaign makes the steady-state
    /// simulate–compare loop allocation-free in its buffers: the DUT trace
    /// and coverage bitmap, the golden trace, both memory images and the
    /// diff report are all cleared and refilled in place. Under the default
    /// snapshot-reset policy even the per-test architectural state is
    /// recycled: both simulators restore only the state the previous test
    /// dirtied (see `isa_sim::snapshot`), reusing the prior run's CSR-map
    /// allocation instead of rebuilding it. Results are identical to
    /// [`run_program`](FuzzHarness::run_program).
    pub fn run_program_into<'s>(
        &self,
        program: &Program,
        scratch: &'s mut ExecScratch,
    ) -> TestOutcomeView<'s> {
        let edge_signal = self.signal == CoverageSignal::Edge;
        match scratch.decode_cache.as_mut() {
            Some(cache) if edge_signal => {
                // The facts lookup shares the cache entry (and the stats
                // stream) with the plain decode lookup: analysis runs once
                // per distinct text image.
                let (decoded, facts) = cache.get_or_decode_with_facts(program);
                self.processor.run_decoded_into(
                    program,
                    decoded,
                    self.max_steps,
                    &mut scratch.sim,
                    &mut scratch.dut,
                );
                self.golden.run_decoded_into(
                    program,
                    decoded,
                    self.max_steps,
                    &mut scratch.golden_trace,
                    &mut scratch.golden_scratch,
                );
                map_edge_coverage(
                    facts,
                    &self.edge_space,
                    &scratch.dut.trace,
                    &mut scratch.edge_coverage,
                );
            }
            Some(cache) => {
                // One cache lookup serves both simulators: the image is
                // decoded (and the text encoded) at most once per distinct
                // program, instead of once per word per step per simulator.
                let decoded = cache.get_or_decode(program);
                self.processor.run_decoded_into(
                    program,
                    decoded,
                    self.max_steps,
                    &mut scratch.sim,
                    &mut scratch.dut,
                );
                self.golden.run_decoded_into(
                    program,
                    decoded,
                    self.max_steps,
                    &mut scratch.golden_trace,
                    &mut scratch.golden_scratch,
                );
            }
            // Oracle mode (`MABFUZZ_DECODE_CACHE=off`): the interpreted
            // fetch/decode path, kept alive as the differential reference
            // the cached path is byte-compared against in tests and CI.
            // Under the edge signal it also re-analyzes the image per test —
            // analysis is a pure function of the text bytes, so the cached
            // and fresh facts are interchangeable.
            None => {
                self.processor.run_into(
                    program,
                    self.max_steps,
                    &mut scratch.sim,
                    &mut scratch.dut,
                );
                self.golden.run_into(
                    program,
                    self.max_steps,
                    &mut scratch.golden_trace,
                    &mut scratch.golden_scratch,
                );
                if edge_signal {
                    let facts = ProgramFacts::analyze(&program.text_bytes());
                    map_edge_coverage(
                        &facts,
                        &self.edge_space,
                        &scratch.dut.trace,
                        &mut scratch.edge_coverage,
                    );
                }
            }
        }
        compare_traces_into(&scratch.dut.trace, &scratch.golden_trace, &mut scratch.diff);
        TestOutcomeView {
            coverage: if edge_signal { &scratch.edge_coverage } else { &scratch.dut.coverage },
            diff: &scratch.diff,
            dut_commits: scratch.dut.trace.len(),
            golden_commits: scratch.golden_trace.len(),
        }
    }
}

/// Marks the edge-coverage slot of every static CFG edge the DUT's commit
/// stream traversed.
///
/// Each commit maps through [`ProgramFacts::map_transition`]; internal
/// (sequential, non-terminator) steps contribute nothing, and a commit that
/// fits no static edge — possible only for a commit stream deviating from the
/// golden semantics, i.e. a buggy DUT — is silently dropped rather than
/// hashed to an arbitrary slot. The static-vs-dynamic consistency suite pins
/// that golden traces (and every modelled bug's DUT traces) never hit that
/// case.
fn map_edge_coverage(
    facts: &ProgramFacts,
    space: &EdgeSpace,
    trace: &ExecTrace,
    map: &mut CoverageMap,
) {
    map.reset_for_len(space.len());
    for commit in trace.iter() {
        match facts.map_transition(commit.pc, commit.next_pc, commit.exception.is_some()) {
            Transition::Edge(index) => {
                let edge = &facts.edges()[index];
                map.cover(space.slot(edge.from_pc, edge.to, edge.kind.code()));
            }
            Transition::Internal | Transition::Unmatched => {}
        }
    }
}

/// Reusable per-campaign simulation buffers for
/// [`FuzzHarness::run_program_into`].
///
/// Owns everything a simulate–compare iteration writes: the DUT result
/// (trace + coverage bitmap), the DUT's microarchitectural scratch, the
/// golden model's trace and memory image, the differential report — and the
/// worker's private [`DecodeCache`]. Because the cache lives *inside* the
/// scratch, every campaign and every shard worker owns its own: the hot path
/// shares no mutable state, and a worker's hit/miss sequence is a pure
/// function of the programs it simulates (never of shard count or thread
/// interleaving). The same per-worker reasoning covers the snapshot/dirty
/// reset state inside both simulators' scratches: what a restore cleans is
/// a pure function of what the same worker's previous test dirtied, and the
/// restored state is byte-identical to a fresh one either way.
#[derive(Debug)]
pub struct ExecScratch {
    sim: SimScratch,
    dut: DutResult,
    golden_trace: ExecTrace,
    golden_scratch: GoldenScratch,
    diff: DiffReport,
    decode_cache: Option<DecodeCache>,
    /// Edge-signal coverage bitmap, reshaped to the harness's [`EdgeSpace`]
    /// per test (allocation-free in the steady state). Stays empty under the
    /// point signal.
    edge_coverage: CoverageMap,
}

impl ExecScratch {
    /// Environment variable controlling whether new scratches carry a decode
    /// cache: `on`/`1`/`true` (also unset) enable it, `off`/`0`/`false`
    /// select the interpreted oracle path, anything else panics loudly
    /// (mirroring `MABFUZZ_SHARDS`).
    pub const DECODE_CACHE_ENV: &'static str = "MABFUZZ_DECODE_CACHE";

    /// Environment variable controlling how new scratches reset the
    /// simulators between tests: `on`/`1`/`true` (also unset) select the
    /// snapshot/dirty-restore path, `off`/`0`/`false` the full-reinit
    /// differential oracle, anything else panics loudly. Same variable
    /// `isa_sim::ResetPolicy::from_env` reads.
    pub const SNAPSHOT_RESET_ENV: &'static str = ResetPolicy::ENV_VAR;

    /// Creates empty scratch buffers, honouring
    /// [`DECODE_CACHE_ENV`](ExecScratch::DECODE_CACHE_ENV) for the decode
    /// cache and [`SNAPSHOT_RESET_ENV`](ExecScratch::SNAPSHOT_RESET_ENV) for
    /// the reset policy (both enabled by default).
    pub fn new() -> ExecScratch {
        ExecScratch::build(decode_cache_enabled_from_env(), ResetPolicy::from_env())
    }

    /// Creates empty scratch buffers with the decode cache explicitly on or
    /// off, ignoring the environment — tests and benches use this to compare
    /// the cached and interpreted paths side by side. The reset policy stays
    /// at its default (snapshot reset).
    pub fn with_decode_cache(enabled: bool) -> ExecScratch {
        ExecScratch::build(enabled, ResetPolicy::SnapshotReset)
    }

    /// Creates empty scratch buffers with the reset policy explicitly set
    /// (`false` selects the full-reinit differential oracle), ignoring the
    /// environment. The decode cache stays at its default (enabled).
    pub fn with_snapshot_reset(enabled: bool) -> ExecScratch {
        let policy = if enabled { ResetPolicy::SnapshotReset } else { ResetPolicy::FullReinit };
        ExecScratch::build(true, policy)
    }

    fn build(decode_cache: bool, policy: ResetPolicy) -> ExecScratch {
        ExecScratch {
            sim: SimScratch::with_policy(policy),
            dut: DutResult::default(),
            golden_trace: ExecTrace::default(),
            golden_scratch: GoldenScratch::with_policy(policy),
            diff: DiffReport::default(),
            decode_cache: decode_cache.then(DecodeCache::new),
            edge_coverage: CoverageMap::with_len(0),
        }
    }

    /// Returns `true` when this scratch runs the pre-decoded path.
    pub fn decode_cache_enabled(&self) -> bool {
        self.decode_cache.is_some()
    }

    /// Returns `true` when this scratch resets both simulators via the
    /// snapshot/dirty-restore path instead of full reinitialisation.
    pub fn snapshot_reset_enabled(&self) -> bool {
        self.sim.reset_policy().is_snapshot()
    }

    /// Returns the decode cache's hit/miss/eviction counters (all zero in
    /// oracle mode).
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.decode_cache.as_ref().map(DecodeCache::stats).unwrap_or_default()
    }
}

impl Default for ExecScratch {
    fn default() -> ExecScratch {
        ExecScratch::new()
    }
}

fn decode_cache_enabled_from_env() -> bool {
    match std::env::var(ExecScratch::DECODE_CACHE_ENV) {
        Err(std::env::VarError::NotPresent) => true,
        Err(error) => panic!("{}: {error}", ExecScratch::DECODE_CACHE_ENV),
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "" | "on" | "1" | "true" => true,
            "off" | "0" | "false" => false,
            other => panic!(
                "{}: expected on/off (or 1/0, true/false), got {other:?}",
                ExecScratch::DECODE_CACHE_ENV
            ),
        },
    }
}

/// A borrowed view of one test's outcome inside an [`ExecScratch`] — the
/// allocation-free counterpart of [`TestOutcome`].
#[derive(Debug)]
pub struct TestOutcomeView<'s> {
    /// The branch-coverage bitmap the DUT reported for this test.
    pub coverage: &'s CoverageMap,
    /// The differential-testing report (empty when the DUT matched the golden
    /// model).
    pub diff: &'s DiffReport,
    /// Number of instructions the DUT committed.
    pub dut_commits: usize,
    /// Number of instructions the golden model committed.
    pub golden_commits: usize,
}

impl TestOutcomeView<'_> {
    /// Returns `true` when the test exposed at least one architectural
    /// mismatch (a potential vulnerability).
    pub fn detected_mismatch(&self) -> bool {
        !self.diff.is_clean()
    }

    /// Clones the borrowed view into an owned [`TestOutcome`].
    ///
    /// The sharded campaign path uses this to materialise batch outcomes
    /// that outlive the worker's scratch buffers; the serial hot path keeps
    /// borrowing instead.
    pub fn to_outcome(&self) -> TestOutcome {
        TestOutcome {
            coverage: self.coverage.clone(),
            diff: self.diff.clone(),
            dut_commits: self.dut_commits,
            golden_commits: self.golden_commits,
        }
    }

    /// Writes the view into an existing [`TestOutcome`], reusing its
    /// coverage-bitmap and mismatch-vector allocations.
    ///
    /// Equivalent to `*out = self.to_outcome()` but allocation-free in the
    /// steady state — this is how the shard pool refills recycled outcome
    /// buffers (see `ShardPool::recycle`).
    pub fn clone_into_outcome(&self, out: &mut TestOutcome) {
        out.coverage.copy_from(self.coverage);
        out.diff.copy_from(self.diff);
        out.dut_commits = self.dut_commits;
        out.golden_commits = self.golden_commits;
    }
}

impl std::fmt::Debug for FuzzHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuzzHarness")
            .field("processor", &self.processor.name())
            .field("max_steps", &self.max_steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proc_sim::{cores::Cva6Core, cores::RocketCore, BugSet, Vulnerability};
    use riscv::asm::parse_program;

    fn program(asm: &str) -> Program {
        Program::from_instrs(parse_program(asm).expect("valid asm"))
    }

    #[test]
    fn clean_core_reports_coverage_without_mismatches() {
        let harness = FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 500);
        let outcome = harness.run_program(&program("addi a0, zero, 5\nmul a1, a0, a0\necall\n"));
        assert!(!outcome.detected_mismatch());
        assert!(outcome.coverage.count() > 0);
        assert_eq!(outcome.dut_commits, outcome.golden_commits);
        assert_eq!(harness.coverage_space_len(), outcome.coverage.len());
        assert_eq!(harness.max_steps(), 500);
        assert_eq!(harness.processor().name(), "rocket");
    }

    #[test]
    fn buggy_core_reports_a_mismatch_when_triggered() {
        let harness = FuzzHarness::new(
            Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V6UnimplCsrJunk))),
            500,
        );
        let clean = harness.run_program(&program("addi a0, zero, 1\necall\n"));
        assert!(!clean.detected_mismatch(), "no trigger, no mismatch");
        let triggered = harness.run_program(&program("csrrw a0, 0x5c0, zero\necall\n"));
        assert!(triggered.detected_mismatch());
    }

    #[test]
    fn scratch_reuse_matches_fresh_buffers_exactly() {
        // The same harness, one scratch reused across many different
        // programs (clean and buggy cores, mismatching and clean tests):
        // every outcome must equal the allocating path's.
        let programs = [
            program("addi a0, zero, 5\nmul a1, a0, a0\necall\n"),
            program("lui gp, 0x80010\nsd a0, 0(gp)\nld a1, 0(gp)\necall\n"),
            program("csrrw a0, 0x5c0, zero\necall\n"),
            program("addi a0, zero, 1\necall\n"),
        ];
        for processor in [
            FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 500),
            FuzzHarness::new(
                Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V6UnimplCsrJunk))),
                500,
            ),
        ] {
            let mut scratch = ExecScratch::new();
            for prog in &programs {
                let fresh = processor.run_program(prog);
                let reused = processor.run_program_into(prog, &mut scratch);
                assert_eq!(fresh.coverage, *reused.coverage);
                assert_eq!(fresh.diff, *reused.diff);
                assert_eq!(fresh.dut_commits, reused.dut_commits);
                assert_eq!(fresh.golden_commits, reused.golden_commits);
                assert_eq!(fresh.detected_mismatch(), reused.detected_mismatch());
            }
        }
    }

    #[test]
    fn clone_into_outcome_matches_to_outcome() {
        let harness = FuzzHarness::new(
            Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V6UnimplCsrJunk))),
            500,
        );
        let programs = [
            program("addi a0, zero, 5\nmul a1, a0, a0\necall\n"),
            program("csrrw a0, 0x5c0, zero\necall\n"), // mismatching
            program("addi a0, zero, 1\necall\n"),
        ];
        let mut scratch = ExecScratch::new();
        // Seed the recycled buffer with unrelated content so stale state
        // would be caught.
        let mut recycled = harness.run_program(&programs[1]);
        for prog in &programs {
            let view = harness.run_program_into(prog, &mut scratch);
            let fresh = view.to_outcome();
            view.clone_into_outcome(&mut recycled);
            assert_eq!(recycled.coverage, fresh.coverage);
            assert_eq!(recycled.diff, fresh.diff);
            assert_eq!(recycled.dut_commits, fresh.dut_commits);
            assert_eq!(recycled.golden_commits, fresh.golden_commits);
        }
    }

    #[test]
    fn debug_format_names_the_processor() {
        let harness = FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 100);
        let text = format!("{harness:?}");
        assert!(text.contains("rocket"));
    }

    fn mixed_program_set() -> Vec<Program> {
        let mut garbage = program("addi a0, zero, 1\nnop\necall\n");
        garbage.set_raw(1, 0xffff_ffff);
        vec![
            program("addi a0, zero, 5\nmul a1, a0, a0\necall\n"),
            program("lui gp, 0x80010\nsd a0, 0(gp)\nld a1, 0(gp)\necall\n"),
            program("csrrw a0, 0x5c0, zero\necall\n"),
            garbage,
            Program::new(),
        ]
    }

    #[test]
    fn cached_and_interpreted_scratches_agree_on_every_outcome() {
        for harness in [
            FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 500),
            FuzzHarness::new(Arc::new(Cva6Core::new(BugSet::all())), 500),
        ] {
            let mut cached = ExecScratch::with_decode_cache(true);
            let mut oracle = ExecScratch::with_decode_cache(false);
            assert!(cached.decode_cache_enabled());
            assert!(!oracle.decode_cache_enabled());
            // Interleave repeats so the cached scratch actually hits.
            let programs = mixed_program_set();
            for prog in programs.iter().chain(programs.iter()) {
                let a = harness.run_program_into(prog, &mut cached).to_outcome();
                let b = harness.run_program_into(prog, &mut oracle).to_outcome();
                assert_eq!(a.coverage, b.coverage);
                assert_eq!(a.diff, b.diff);
                assert_eq!(a.dut_commits, b.dut_commits);
                assert_eq!(a.golden_commits, b.golden_commits);
            }
            let stats = cached.decode_cache_stats();
            assert_eq!(stats.misses, 5, "each distinct program decodes once");
            assert_eq!(stats.hits, 5, "the second pass is all hits");
            assert_eq!(oracle.decode_cache_stats().lookups(), 0, "oracle mode never looks up");
        }
    }

    #[test]
    fn snapshot_and_reinit_scratches_agree_on_every_outcome() {
        for harness in [
            FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 500),
            FuzzHarness::new(Arc::new(Cva6Core::new(BugSet::all())), 500),
        ] {
            let mut restored = ExecScratch::with_snapshot_reset(true);
            let mut oracle = ExecScratch::with_snapshot_reset(false);
            assert!(restored.snapshot_reset_enabled());
            assert!(!oracle.snapshot_reset_enabled());
            // Two passes, so the restored scratch re-runs every program on
            // top of each possible predecessor's dirt.
            let programs = mixed_program_set();
            for prog in programs.iter().chain(programs.iter()) {
                let a = harness.run_program_into(prog, &mut restored).to_outcome();
                let b = harness.run_program_into(prog, &mut oracle).to_outcome();
                assert_eq!(a.coverage, b.coverage);
                assert_eq!(a.diff, b.diff);
                assert_eq!(a.dut_commits, b.dut_commits);
                assert_eq!(a.golden_commits, b.golden_commits);
            }
        }
    }

    #[test]
    fn edge_signal_reports_the_fixed_edge_space() {
        let mut harness = FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 500);
        assert_eq!(harness.coverage_signal(), CoverageSignal::Point);
        harness.set_coverage_signal(CoverageSignal::Edge);
        assert_eq!(harness.coverage_signal(), CoverageSignal::Edge);
        assert_eq!(harness.coverage_space_len(), EdgeSpace::DEFAULT_LEN);
        let outcome =
            harness.run_program(&program("addi a0, zero, 5\nbeq a0, a0, 8\nnop\necall\n"));
        assert_eq!(outcome.coverage.len(), EdgeSpace::DEFAULT_LEN);
        // At least the taken branch edge and the halting ecall's trap exit.
        assert!(outcome.coverage.count() >= 2, "count = {}", outcome.coverage.count());
        assert!(!outcome.detected_mismatch());
    }

    #[test]
    fn edge_signal_does_not_perturb_the_differential_verdict() {
        for signal in [CoverageSignal::Point, CoverageSignal::Edge] {
            let mut harness = FuzzHarness::new(
                Arc::new(Cva6Core::new(BugSet::only(Vulnerability::V6UnimplCsrJunk))),
                500,
            );
            harness.set_coverage_signal(signal);
            let triggered = harness.run_program(&program("csrrw a0, 0x5c0, zero\necall\n"));
            assert!(triggered.detected_mismatch(), "signal {} lost the mismatch", signal.name());
        }
    }

    #[test]
    fn edge_cached_and_oracle_scratches_agree_on_every_outcome() {
        // The oracle path re-analyzes the image per test; purity of the
        // analysis makes it byte-identical to the cached facts path.
        for mut harness in [
            FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 500),
            FuzzHarness::new(Arc::new(Cva6Core::new(BugSet::all())), 500),
        ] {
            harness.set_coverage_signal(CoverageSignal::Edge);
            let mut cached = ExecScratch::with_decode_cache(true);
            let mut oracle = ExecScratch::with_decode_cache(false);
            let programs = mixed_program_set();
            for prog in programs.iter().chain(programs.iter()) {
                let a = harness.run_program_into(prog, &mut cached).to_outcome();
                let b = harness.run_program_into(prog, &mut oracle).to_outcome();
                assert_eq!(a.coverage, b.coverage);
                assert_eq!(a.diff, b.diff);
                assert_eq!(a.coverage.len(), EdgeSpace::DEFAULT_LEN);
            }
            assert_eq!(cached.decode_cache_stats().misses, 5);
            assert_eq!(cached.decode_cache_stats().hits, 5);
        }
    }

    #[test]
    fn coverage_signal_round_trips_its_name() {
        for signal in [CoverageSignal::Point, CoverageSignal::Edge] {
            assert_eq!(CoverageSignal::parse(signal.name()), Some(signal));
        }
        assert_eq!(CoverageSignal::parse("edges"), None);
        assert_eq!(CoverageSignal::default(), CoverageSignal::Point);
    }

    #[test]
    fn cache_stats_depend_only_on_the_program_sequence() {
        // Two workers fed the same program sequence report identical
        // counters, regardless of what any other scratch did in between —
        // the property that makes hit behaviour shard-count invariant
        // (shard workers each own their scratch and see a deterministic
        // subsequence).
        let harness = FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 500);
        let programs = mixed_program_set();
        let order = [0usize, 1, 0, 2, 2, 3, 0, 4, 1];
        let run = |scratch: &mut ExecScratch| {
            for &i in &order {
                harness.run_program_into(&programs[i], scratch);
            }
            scratch.decode_cache_stats()
        };
        let mut first = ExecScratch::with_decode_cache(true);
        let stats_first = run(&mut first);
        // Perturb an unrelated scratch between the two measurements.
        let mut noise = ExecScratch::with_decode_cache(true);
        harness.run_program_into(&programs[3], &mut noise);
        let mut second = ExecScratch::with_decode_cache(true);
        let stats_second = run(&mut second);
        assert_eq!(stats_first, stats_second);
        assert_eq!(stats_first.misses, 5);
        assert_eq!(stats_first.hits, 4);
    }
}
