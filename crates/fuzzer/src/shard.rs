//! Intra-campaign sharded simulation with deterministic reduction.
//!
//! A bandit round (MABFuzz §III: select arm → generate batch → simulate →
//! reward) is an embarrassingly parallel *map* over the batch's test
//! programs followed by an order-sensitive *reduce* into the campaign and
//! arm state. This module provides the map side: a [`ShardPlan`] describing
//! how a campaign splits its rounds, a persistent fork/join [`ShardPool`]
//! whose workers each own their own [`ExecScratch`], and the
//! [`derive_stream_seed`] per-test RNG derivation. The ordered reduce lives
//! in the orchestrator (`mabfuzz::MabFuzzer::run_sharded`).
//!
//! # Determinism contract
//!
//! A sharded campaign report is **byte-identical for every shard count**
//! (at a fixed batch size). The contract has three rules; everything else
//! follows from them:
//!
//! 1. **Seed derivation.** Randomness consumed on behalf of an individual
//!    test of a batched round — refilling an empty pool, mutating an
//!    interesting test — comes from a per-test stream seeded with
//!    [`derive_stream_seed`]`(campaign_seed, round, test_index)` (a
//!    SplitMix64 chain). The stream depends only on those three values,
//!    never on which shard simulated the test or on pool/fold history.
//!    Round-level randomness (arm selection, replacement seeds for reset
//!    arms) stays on the campaign's main RNG, which is only ever drawn from
//!    in the serial sections (batch assembly and the ordered fold), so its
//!    draw sequence is also shard-independent.
//! 2. **Pure map.** Simulating one program is a pure function of the
//!    program: `FuzzHarness::run_program_into` writes the same trace,
//!    coverage bitmap and diff regardless of which scratch buffers it reuses
//!    (the harness tests pin this). The scratch's decode cache preserves the
//!    rule: it is private to the worker (no shared mutable state on the hot
//!    path) and only memoises the program→decoded-image function, so a hit
//!    and a miss produce identical outcomes — and therefore shard count can
//!    change neither results nor, for a given worker subsequence, hit
//!    behaviour. The snapshot/dirty reset (`isa_sim::snapshot`) preserves
//!    the rule the same way: the dirty state a restore cleans is private to
//!    the worker's scratch and a function only of the worker's own previous
//!    test, and a restored simulator is byte-identical to a freshly
//!    reinitialised one (pinned by the restore-equivalence tests and the
//!    `MABFUZZ_SNAPSHOT_RESET=off` oracle in CI) — so *which* test ran
//!    before on the same worker is as unobservable as whether the decode
//!    cache hit. Shards therefore only decide *where* a
//!    test runs, never *what* it produces. Workers claim the fixed strided
//!    slice `test_index % shards == shard` — assignment is static, not
//!    load-stealing — but because the map is pure even a dynamic assignment
//!    would produce the same outcomes.
//! 3. **Ordered reduce.** Batch outcomes are folded in ascending
//!    `test_index` order, whatever order the shards finished in: global
//!    coverage absorption ([`CoverageMap::merge_counting`] — associative,
//!    so the union is order-free, while the novelty *deltas* the rewards
//!    are made of are recovered by the ordered fold), arm-local absorption,
//!    detection recording, mutation of interesting tests, bandit reward
//!    updates (`mab::Bandit::update_batch`) and saturation/reset checks.
//!    The bandit and the statistics therefore observe the exact sequence a
//!    serial (1-shard) run of the same plan observes.
//!
//! A batch size of **1** additionally reproduces the pre-sharding serial
//! campaign draw-for-draw (all randomness stays on the main RNG in that
//! degenerate case), which is why `MabFuzzer::run` — the path every
//! published paper artefact goes through — is the `ShardPlan::serial()`
//! special case of the sharded loop and stayed byte-identical.
//!
//! ## Edge-coverage folds
//!
//! The contract is stated over coverage *maps*, not over the point signal
//! specifically, and the edge signal ([`crate::CoverageSignal::Edge`]) satisfies it
//! with no new rules. Rule 2 holds because the static CFG an edge bitmap is
//! keyed by is itself a pure function of the program's text bytes
//! (`analysis::ProgramFacts::analyze`, pinned by the purity proptest in
//! `isa_sim::decoded`), and the per-worker decode cache memoises the facts
//! alongside the decoded image — a hit and a miss hand the harness the same
//! edge ids. Rule 3 holds because an edge map is a fixed-length
//! [`coverage::EdgeSpace`] bitmap folded with the same associative
//! `merge_counting` union as the point bitmap; the ordered fold recovers the
//! novelty deltas identically. Shard-count independence of edge campaigns is
//! pinned end to end by `mabfuzz::campaign`'s
//! `edge_signal_campaigns_are_shard_count_independent` and the
//! `edge-coverage-equivalence` CI job.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use coverage::CoverageMap;
use riscv::Program;

use crate::harness::{ExecScratch, FuzzHarness, TestOutcome};

/// How a campaign splits each bandit round across simulation shards.
///
/// Two independent knobs:
///
/// * `batch_size` — how many tests one arm pull simulates before the
///   ordered fold runs. This **changes the campaign's RNG contract** (see
///   the module docs): batch size 1 is the legacy serial stream, batch
///   sizes above 1 use the derived per-test streams.
/// * `shards` — how many worker threads the batch's simulations spread
///   over. This **never changes results**: reports are byte-identical for
///   every shard count at a fixed batch size.
///
/// To keep that split honest, [`ShardPlan::sharded`] always pairs the
/// requested shard count with the fixed [`ShardPlan::DEFAULT_BATCH`], so
/// `sharded(1)` and `sharded(8)` are comparable runs of the same campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    batch_size: usize,
}

impl ShardPlan {
    /// The batch size every [`ShardPlan::sharded`] plan uses, independent of
    /// the shard count, so results stay comparable across shard counts.
    pub const DEFAULT_BATCH: usize = 32;

    /// The environment variable [`ShardPlan::from_env`] reads.
    pub const ENV_VAR: &'static str = "MABFUZZ_SHARDS";

    /// The legacy plan: one test per round on the calling thread. This is
    /// the reference behaviour of `MabFuzzer::run` and of every published
    /// experiment artefact.
    pub fn serial() -> ShardPlan {
        ShardPlan { shards: 1, batch_size: 1 }
    }

    /// A batched plan simulating [`DEFAULT_BATCH`](ShardPlan::DEFAULT_BATCH)
    /// tests per round across `shards` worker shards (clamped to at least
    /// one).
    pub fn sharded(shards: usize) -> ShardPlan {
        ShardPlan { shards: shards.max(1), batch_size: ShardPlan::DEFAULT_BATCH }
    }

    /// Returns a copy with a different per-round batch size (clamped to at
    /// least one test).
    pub fn with_batch_size(mut self, batch_size: usize) -> ShardPlan {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Returns a copy with a different shard count (clamped to at least
    /// one).
    pub fn with_shards(mut self, shards: usize) -> ShardPlan {
        self.shards = shards.max(1);
        self
    }

    /// Number of simulation shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Tests simulated per bandit round.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Returns `true` for the legacy one-test-per-round plan.
    pub fn is_serial(&self) -> bool {
        self.shards == 1 && self.batch_size == 1
    }

    /// Builds a sharded plan from the `MABFUZZ_SHARDS` environment variable.
    ///
    /// Returns `Ok(None)` when the variable is unset and `Err` when it is
    /// set but unparsable — a malformed value must fail loudly rather than
    /// silently fall back to the serial plan, which is a *different
    /// deterministic campaign* (see [`ShardPlan`]). A forced value of `0`
    /// or `1` still selects the batched single-shard mode (same results as
    /// any other shard count), which is what the CI determinism matrix
    /// relies on.
    pub fn from_env() -> Result<Option<ShardPlan>, String> {
        match std::env::var(ShardPlan::ENV_VAR) {
            Err(_) => Ok(None),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(shards) => Ok(Some(ShardPlan::sharded(shards))),
                Err(error) => Err(format!(
                    "{}: expected a shard count, got `{raw}` ({error})",
                    ShardPlan::ENV_VAR
                )),
            },
        }
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan::serial()
    }
}

impl std::fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} shard(s) x {} test(s)/round", self.shards, self.batch_size)
    }
}

/// SplitMix64 finalizer: the statistically strong 64-bit mix underneath
/// [`derive_stream_seed`].
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG stream seed of one test of one batched round:
/// `splitmix(splitmix(splitmix(campaign_seed) ^ round) ^ test_index)`.
///
/// The derivation is the first rule of the determinism contract (module
/// docs): a test's generation randomness is a function of the campaign
/// seed, the round number and the test's index within the round — nothing
/// else — so results cannot depend on which shard ran the test. The chained
/// SplitMix64 finalizer decorrelates neighbouring `(round, test_index)`
/// pairs, which plain XOR-ing into the seed would not.
pub fn derive_stream_seed(campaign_seed: u64, round: u64, test_index: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(campaign_seed) ^ round) ^ test_index)
}

/// Simulates `programs` on the calling thread, materialising one owned
/// [`TestOutcome`] per program (in input order).
///
/// This is the *reference implementation* the unit suite compares the
/// [`ShardPool`] against byte-for-byte. Campaign loops inline a borrowing
/// variant of the same per-program walk instead (the 1-shard path never
/// needs owned outcomes), so changing the orchestrator does not require
/// keeping this helper in sync — the pool-equivalence tests do.
pub fn simulate_serial<'p>(
    harness: &FuzzHarness,
    programs: impl IntoIterator<Item = &'p Program>,
    scratch: &mut ExecScratch,
) -> Vec<TestOutcome> {
    programs
        .into_iter()
        .map(|program| harness.run_program_into(program, scratch).to_outcome())
        .collect()
}

/// The message a worker sends back per simulated test: `None` signals that
/// the simulation panicked (the worker re-raises right after, and the
/// collector turns the marker into a panic on the campaign thread instead
/// of deadlocking on a missing slot).
type ShardResult = (usize, Option<TestOutcome>);

/// A persistent fork/join pool of simulation shards for one campaign.
///
/// Each worker owns a clone of the campaign's [`FuzzHarness`] and its own
/// [`ExecScratch`], so the per-shard steady state keeps the allocation-free
/// simulate–compare hot path. Work assignment is the static stride
/// `test_index % shards == shard`: deterministic, balanced for the
/// homogeneous per-test costs of the simulators, and free of claim-order
/// races. Workers live as long as the pool, so the per-round cost is two
/// channel hops per test rather than a thread spawn per round.
pub struct ShardPool {
    job_txs: Vec<Sender<Arc<Vec<Program>>>>,
    results_rx: Receiver<ShardResult>,
    recycle_txs: Vec<Sender<TestOutcome>>,
    handles: Vec<JoinHandle<()>>,
    shards: usize,
}

impl ShardPool {
    /// Spawns `shards` worker threads simulating on clones of `harness`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(harness: &FuzzHarness, shards: usize) -> ShardPool {
        assert!(shards > 0, "a shard pool needs at least one shard");
        let (results_tx, results_rx) = channel::<ShardResult>();
        let mut job_txs = Vec::with_capacity(shards);
        let mut recycle_txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (job_tx, job_rx) = channel::<Arc<Vec<Program>>>();
            let (recycle_tx, recycle_rx) = channel::<TestOutcome>();
            let results = results_tx.clone();
            let harness = harness.clone();
            handles.push(std::thread::spawn(move || {
                shard_worker(shard, shards, harness, job_rx, results, recycle_rx)
            }));
            job_txs.push(job_tx);
            recycle_txs.push(recycle_tx);
        }
        ShardPool { job_txs, results_rx, recycle_txs, handles, shards }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Hands consumed outcome buffers back to the workers that produced
    /// them, so subsequent batches refill the buffers in place
    /// ([`crate::TestOutcomeView::clone_into_outcome`]) instead of cloning a fresh
    /// coverage bitmap and mismatch vector per test.
    ///
    /// Outcome `i` of a [`simulate`](ShardPool::simulate) batch was produced
    /// by worker `i % shards`, and that is where it returns — each worker
    /// only ever reuses buffers it sized itself. Purely an allocation
    /// optimisation: recycling (or not recycling, or dropping some of the
    /// outcomes first) never changes simulation results.
    pub fn recycle(&self, outcomes: Vec<TestOutcome>) {
        for (index, outcome) in outcomes.into_iter().enumerate() {
            // A worker that already exited (campaign teardown) just drops
            // the returned buffer.
            let _ = self.recycle_txs[index % self.shards].send(outcome);
        }
    }

    /// Simulates one batch across the shards and returns the outcomes in
    /// input order (outcome `i` belongs to `programs[i]`), independent of
    /// shard completion order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any shard's simulation.
    pub fn simulate(&self, programs: &Arc<Vec<Program>>) -> Vec<TestOutcome> {
        for job_tx in &self.job_txs {
            job_tx.send(Arc::clone(programs)).expect("shard worker alive");
        }
        let mut slots: Vec<Option<TestOutcome>> = (0..programs.len()).map(|_| None).collect();
        for _ in 0..programs.len() {
            let (index, outcome) = self.results_rx.recv().expect("shard worker alive");
            let outcome =
                outcome.unwrap_or_else(|| panic!("shard worker panicked on test index {index}"));
            assert!(slots[index].replace(outcome).is_none(), "test index {index} simulated twice");
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every test index simulated exactly once"))
            .collect()
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops; join so no worker
        // outlives the campaign that owns the pool.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool").field("shards", &self.shards).finish()
    }
}

fn shard_worker(
    shard: usize,
    shards: usize,
    harness: FuzzHarness,
    jobs: Receiver<Arc<Vec<Program>>>,
    results: Sender<ShardResult>,
    recycle: Receiver<TestOutcome>,
) {
    let mut scratch = ExecScratch::new();
    // Outcome buffers returned through `ShardPool::recycle`, refilled in
    // place for the next test instead of cloning fresh allocations.
    let mut free: Vec<TestOutcome> = Vec::new();
    while let Ok(batch) = jobs.recv() {
        for index in (shard..batch.len()).step_by(shards) {
            while let Ok(returned) = recycle.try_recv() {
                free.push(returned);
            }
            let recycled = free.pop();
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let view = harness.run_program_into(&batch[index], &mut scratch);
                match recycled {
                    Some(mut outcome) => {
                        view.clone_into_outcome(&mut outcome);
                        outcome
                    }
                    None => view.to_outcome(),
                }
            }));
            match outcome {
                Ok(outcome) => {
                    if results.send((index, Some(outcome))).is_err() {
                        return; // the campaign is gone; stop quietly
                    }
                }
                Err(panic) => {
                    let _ = results.send((index, None));
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// Folds the coverage maps of a batch of outcomes into one union via
/// [`CoverageMap::merge_counting`].
///
/// A convenience for tests and tooling that want the round's merged
/// coverage view without replaying the campaign's per-test reduction (the
/// campaign itself folds per test, in order, to recover novelty deltas).
pub fn merged_coverage(outcomes: &[TestOutcome], space_len: usize) -> CoverageMap {
    let mut union = CoverageMap::with_len(space_len);
    for outcome in outcomes {
        union.merge_counting(&outcome.coverage);
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;
    use proc_sim::{cores::RocketCore, BugSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use riscv::gen::{GeneratorConfig, ProgramGenerator};

    fn harness() -> FuzzHarness {
        FuzzHarness::new(Arc::new(RocketCore::new(BugSet::none())), 300)
    }

    fn programs(count: usize) -> Vec<Program> {
        let generator = ProgramGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(42);
        (0..count).map(|_| generator.generate_seed(&mut rng)).collect()
    }

    #[test]
    fn plan_builders_clamp_and_report() {
        let plan = ShardPlan::serial();
        assert!(plan.is_serial());
        assert_eq!(plan, ShardPlan::default());
        let sharded = ShardPlan::sharded(0);
        assert_eq!(sharded.shards(), 1);
        assert_eq!(sharded.batch_size(), ShardPlan::DEFAULT_BATCH);
        assert!(!sharded.is_serial(), "batched single-shard mode is not the legacy plan");
        let tuned = ShardPlan::sharded(4).with_batch_size(0).with_shards(6);
        assert_eq!(tuned.shards(), 6);
        assert_eq!(tuned.batch_size(), 1);
        assert!(ShardPlan::sharded(3).to_string().contains("3 shard"));
    }

    #[test]
    fn sharded_plans_share_one_batch_size_across_shard_counts() {
        // The cross-shard-count equivalence guarantee only holds at a fixed
        // batch size, so `sharded(n)` must not derive the batch from `n`.
        for shards in [1usize, 2, 7, 64] {
            assert_eq!(ShardPlan::sharded(shards).batch_size(), ShardPlan::DEFAULT_BATCH);
        }
    }

    #[test]
    fn derived_streams_depend_on_every_input() {
        let base = derive_stream_seed(1, 2, 3);
        assert_eq!(base, derive_stream_seed(1, 2, 3), "derivation is a pure function");
        assert_ne!(base, derive_stream_seed(2, 2, 3));
        assert_ne!(base, derive_stream_seed(1, 3, 3));
        assert_ne!(base, derive_stream_seed(1, 2, 4));
        // Neighbouring rounds/indices must not collide the way raw XOR
        // chains do (seed ^ round ^ index is symmetric in round and index).
        assert_ne!(derive_stream_seed(1, 2, 3), derive_stream_seed(1, 3, 2));
    }

    #[test]
    fn pool_matches_serial_simulation_for_every_shard_count() {
        let harness = harness();
        let batch = programs(11);
        let mut scratch = ExecScratch::new();
        let reference = simulate_serial(&harness, &batch, &mut scratch);
        assert_eq!(reference.len(), 11);
        let arc = Arc::new(batch);
        for shards in [1usize, 2, 3, 7] {
            let pool = ShardPool::new(&harness, shards);
            assert_eq!(pool.shards(), shards);
            let outcomes = pool.simulate(&arc);
            assert_eq!(outcomes.len(), reference.len(), "{shards} shards");
            for (index, (sharded, serial)) in outcomes.iter().zip(&reference).enumerate() {
                assert_eq!(sharded.coverage, serial.coverage, "{shards} shards, test {index}");
                assert_eq!(sharded.diff, serial.diff, "{shards} shards, test {index}");
                assert_eq!(sharded.dut_commits, serial.dut_commits);
                assert_eq!(sharded.golden_commits, serial.golden_commits);
            }
        }
    }

    #[test]
    fn recycled_buffers_produce_identical_outcomes() {
        // Same batch simulated three times through one pool, recycling the
        // outcome buffers in between: every run must equal the serial
        // reference byte for byte (recycling is purely an allocation
        // optimisation).
        let harness = harness();
        let batch = programs(9);
        let mut scratch = ExecScratch::new();
        let reference = simulate_serial(&harness, &batch, &mut scratch);
        let arc = Arc::new(batch);
        let pool = ShardPool::new(&harness, 3);
        for round in 0..3 {
            let outcomes = pool.simulate(&arc);
            for (index, (pooled, serial)) in outcomes.iter().zip(&reference).enumerate() {
                assert_eq!(pooled.coverage, serial.coverage, "round {round}, test {index}");
                assert_eq!(pooled.diff, serial.diff, "round {round}, test {index}");
                assert_eq!(pooled.dut_commits, serial.dut_commits);
                assert_eq!(pooled.golden_commits, serial.golden_commits);
            }
            pool.recycle(outcomes);
        }
    }

    #[test]
    fn recycling_tolerates_partial_and_foreign_batches() {
        let harness = harness();
        let pool = ShardPool::new(&harness, 2);
        let first = Arc::new(programs(6));
        let mut outcomes = pool.simulate(&first);
        // Drop a few outcomes before recycling (detection-mode campaigns
        // stop folding mid-batch and may consume buffers).
        outcomes.truncate(3);
        pool.recycle(outcomes);
        pool.recycle(Vec::new());
        let second = Arc::new(programs(4));
        let mut scratch = ExecScratch::new();
        let reference = simulate_serial(&harness, second.iter(), &mut scratch);
        let pooled = pool.simulate(&second);
        for (index, (pooled, serial)) in pooled.iter().zip(&reference).enumerate() {
            assert_eq!(pooled.coverage, serial.coverage, "test {index}");
            assert_eq!(pooled.diff, serial.diff, "test {index}");
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let harness = harness();
        let pool = ShardPool::new(&harness, 2);
        let first = Arc::new(programs(5));
        let second = Arc::new(programs(3));
        assert_eq!(pool.simulate(&first).len(), 5);
        assert_eq!(pool.simulate(&second).len(), 3);
        assert_eq!(pool.simulate(&Arc::new(Vec::new())).len(), 0, "empty batches are fine");
    }

    #[test]
    fn merged_coverage_equals_per_test_union() {
        let harness = harness();
        let batch = programs(6);
        let mut scratch = ExecScratch::new();
        let outcomes = simulate_serial(&harness, &batch, &mut scratch);
        let merged = merged_coverage(&outcomes, harness.coverage_space_len());
        let mut reference = CoverageMap::with_len(harness.coverage_space_len());
        for outcome in &outcomes {
            reference.union_with(&outcome.coverage);
        }
        assert_eq!(merged, reference);
        assert!(merged.count() > 0);
    }

    #[test]
    fn per_worker_decode_caches_never_perturb_sharded_results() {
        // Shard workers default to cached scratches (`ExecScratch::new`);
        // every shard count must still reproduce the *interpreted* serial
        // reference byte for byte, even when the batch repeats programs so
        // the workers' private caches genuinely hit. Together with the
        // harness tests (hit stats are a pure function of the per-worker
        // program subsequence, which rule (2) of the determinism contract
        // fixes for every shard count), this pins that shard count never
        // changes cache behaviour and the cache never changes results.
        let harness = harness();
        let mut batch = programs(7);
        let repeats = batch.clone();
        batch.extend(repeats); // 14 tests, each program seen twice
        let mut oracle = ExecScratch::with_decode_cache(false);
        let reference = simulate_serial(&harness, &batch, &mut oracle);
        let arc = Arc::new(batch);
        for shards in [1usize, 2, 3, 7] {
            let pool = ShardPool::new(&harness, shards);
            let outcomes = pool.simulate(&arc);
            assert_eq!(outcomes.len(), reference.len());
            for (index, (pooled, serial)) in outcomes.iter().zip(&reference).enumerate() {
                assert_eq!(pooled.coverage, serial.coverage, "{shards} shards, test {index}");
                assert_eq!(pooled.diff, serial.diff, "{shards} shards, test {index}");
                assert_eq!(pooled.dut_commits, serial.dut_commits);
                assert_eq!(pooled.golden_commits, serial.golden_commits);
            }
        }
    }

    #[test]
    fn campaign_state_is_send() {
        // Compile-time Send checks for everything a shard worker or a
        // pooled campaign moves across threads.
        fn assert_send<T: Send>() {}
        assert_send::<FuzzHarness>();
        assert_send::<ExecScratch>();
        assert_send::<TestOutcome>();
        assert_send::<ShardPool>();
        assert_send::<ShardPlan>();
    }
}
