//! Test cases: fuzzing inputs with lineage metadata.

use std::fmt;

use riscv::Program;
use serde::{Deserialize, Serialize};

/// Unique identifier of a test case within one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TestId(pub u64);

impl fmt::Display for TestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A fuzzing input: the program to simulate plus where it came from.
///
/// Lineage metadata (parent, generation, originating seed) is what lets the
/// MABFuzz layer attribute coverage rewards to the *arm* (seed family) a test
/// belongs to, and what the campaign statistics use to report how deep the
/// mutation chains that found each vulnerability were.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestCase {
    /// Unique id within the campaign.
    pub id: TestId,
    /// The executable program.
    pub program: Program,
    /// The test this one was mutated from, if any.
    pub parent: Option<TestId>,
    /// The seed (generation-0 ancestor) this test descends from.
    pub seed_id: TestId,
    /// Mutation depth: 0 for seeds, parent.generation + 1 otherwise.
    pub generation: u32,
}

impl TestCase {
    /// Creates a generation-0 seed test.
    pub fn seed(id: TestId, program: Program) -> TestCase {
        TestCase { id, program, parent: None, seed_id: id, generation: 0 }
    }

    /// Creates a child of `parent` with the mutated `program`.
    pub fn child_of(parent: &TestCase, id: TestId, program: Program) -> TestCase {
        TestCase {
            id,
            program,
            parent: Some(parent.id),
            seed_id: parent.seed_id,
            generation: parent.generation + 1,
        }
    }

    /// Returns `true` when this test is an unmutated seed.
    pub fn is_seed(&self) -> bool {
        self.generation == 0
    }

    /// Returns the number of instructions in the program.
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// Returns `true` when the program is empty.
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }
}

impl fmt::Display for TestCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (seed {}, generation {}, {} instructions)",
            self.id,
            self.seed_id,
            self.generation,
            self.program.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::{Gpr, Instr, Op};

    fn program() -> Program {
        Program::from_instrs(vec![Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 1), Instr::nullary(Op::Ecall)])
    }

    #[test]
    fn seed_and_child_lineage() {
        let seed = TestCase::seed(TestId(1), program());
        assert!(seed.is_seed());
        assert_eq!(seed.seed_id, TestId(1));
        let child = TestCase::child_of(&seed, TestId(2), program());
        assert!(!child.is_seed());
        assert_eq!(child.parent, Some(TestId(1)));
        assert_eq!(child.seed_id, TestId(1));
        assert_eq!(child.generation, 1);
        let grandchild = TestCase::child_of(&child, TestId(3), program());
        assert_eq!(grandchild.generation, 2);
        assert_eq!(grandchild.seed_id, TestId(1));
    }

    #[test]
    fn display_mentions_lineage() {
        let seed = TestCase::seed(TestId(7), program());
        let text = seed.to_string();
        assert!(text.contains("t7"));
        assert!(text.contains("generation 0"));
        assert_eq!(seed.len(), 2);
        assert!(!seed.is_empty());
    }
}
