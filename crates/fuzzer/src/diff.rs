//! Differential testing: comparing the DUT's architectural trace against the
//! golden reference model.
//!
//! Like TheHuzz, the comparison happens at the granularity of committed
//! instructions (program counter, destination-register writeback, exception
//! behaviour, next PC and memory accesses) plus the final architectural state
//! (registers and the trap CSRs). Any difference is a *mismatch* and flags a
//! potential vulnerability.

use std::fmt;

use isa_sim::{ExecTrace, HaltReason};
use riscv::{CsrAddr, Gpr};
use serde::{Deserialize, Serialize};

/// The aspect of architectural state a mismatch was observed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MismatchKind {
    /// Destination register or written value differs.
    Writeback,
    /// One side raised an exception the other did not, or the causes differ.
    Exception,
    /// Control flow diverged (different next program counter).
    ControlFlow,
    /// The retired-instruction counters diverged (only observable through an
    /// explicit counter read in the test program).
    InstructionCount,
    /// A data-memory access differs (address, width or value).
    MemoryAccess,
    /// The runs halted for different reasons or after different lengths.
    Termination,
    /// A general-purpose register differs in the final state.
    FinalRegister,
    /// A CSR differs in the final state.
    FinalCsr,
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            MismatchKind::Writeback => "register writeback",
            MismatchKind::Exception => "exception behaviour",
            MismatchKind::ControlFlow => "control flow",
            MismatchKind::InstructionCount => "retired-instruction count",
            MismatchKind::MemoryAccess => "memory access",
            MismatchKind::Termination => "termination",
            MismatchKind::FinalRegister => "final register state",
            MismatchKind::FinalCsr => "final CSR state",
        };
        f.write_str(text)
    }
}

/// One observed difference between the DUT and the golden model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mismatch {
    /// What kind of state diverged.
    pub kind: MismatchKind,
    /// Commit sequence number at which the divergence was observed
    /// (`None` for final-state mismatches).
    pub seq: Option<u64>,
    /// Program counter of the diverging instruction, when applicable.
    pub pc: Option<u64>,
    /// Human-readable description with both sides' values.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.seq, self.pc) {
            (Some(seq), Some(pc)) => write!(f, "[{seq} @ {pc:#x}] {}: {}", self.kind, self.detail),
            _ => write!(f, "[final] {}: {}", self.kind, self.detail),
        }
    }
}

/// The full comparison result for one test.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffReport {
    mismatches: Vec<Mismatch>,
}

impl DiffReport {
    /// Returns `true` when the DUT matched the golden model exactly.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Returns the observed mismatches.
    pub fn mismatches(&self) -> &[Mismatch] {
        &self.mismatches
    }

    /// Returns the number of mismatches.
    pub fn len(&self) -> usize {
        self.mismatches.len()
    }

    /// Returns `true` when there are no mismatches.
    pub fn is_empty(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Returns the first mismatch, if any — what a triage engineer looks at
    /// first.
    pub fn first(&self) -> Option<&Mismatch> {
        self.mismatches.first()
    }

    /// Returns `true` when any mismatch is of the given kind.
    pub fn has_kind(&self, kind: MismatchKind) -> bool {
        self.mismatches.iter().any(|m| m.kind == kind)
    }

    /// Removes every recorded mismatch, keeping the allocation (for report
    /// reuse across tests).
    pub fn clear(&mut self) {
        self.mismatches.clear();
    }

    /// Makes `self` an exact copy of `other`, reusing `self`'s mismatch
    /// vector (the buffer-recycling counterpart of `clone()`, used by the
    /// pooled shard workers; almost always a cheap truncate — most reports
    /// are clean).
    pub fn copy_from(&mut self, other: &DiffReport) {
        self.mismatches.clone_from(&other.mismatches);
    }

    fn push(&mut self, kind: MismatchKind, seq: Option<u64>, pc: Option<u64>, detail: String) {
        self.mismatches.push(Mismatch { kind, seq, pc, detail });
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("no mismatches");
        }
        writeln!(f, "{} mismatches:", self.len())?;
        for mismatch in &self.mismatches {
            writeln!(f, "  {mismatch}")?;
        }
        Ok(())
    }
}

/// The CSRs included in the final-state comparison.
///
/// The performance counters (`minstret`, `mcycle`) are deliberately *not*
/// compared here: like the trace-log comparison of TheHuzz, counter state is
/// only observable when the test program explicitly reads it through a CSR
/// instruction (the read value is then compared as a register writeback).
/// This is what makes the V7 vulnerability — `ebreak` not bumping the
/// instruction count — a deep bug that needs an `ebreak` *and* a later
/// counter read in the same test, as in the paper.
const COMPARED_CSRS: [CsrAddr; 4] =
    [CsrAddr::MCAUSE, CsrAddr::MEPC, CsrAddr::MTVAL, CsrAddr::MSCRATCH];

/// Compares a DUT trace against the golden trace for the same program.
pub fn compare_traces(dut: &ExecTrace, golden: &ExecTrace) -> DiffReport {
    let mut report = DiffReport::default();
    compare_traces_into(dut, golden, &mut report);
    report
}

/// Compares a DUT trace against the golden trace into a caller-owned report,
/// reusing its allocation.
///
/// A clean comparison — the overwhelmingly common case while fuzzing —
/// touches no heap at all; mismatch details are only formatted when a
/// divergence is found.
pub fn compare_traces_into(dut: &ExecTrace, golden: &ExecTrace, report: &mut DiffReport) {
    report.clear();

    for (d, g) in dut.commits().iter().zip(golden.commits()) {
        let seq = Some(g.seq);
        let pc = Some(g.pc);
        if d.writeback != g.writeback {
            report.push(
                MismatchKind::Writeback,
                seq,
                pc,
                format!("dut wrote {:?}, golden wrote {:?}", d.writeback, g.writeback),
            );
        }
        if d.exception != g.exception {
            report.push(
                MismatchKind::Exception,
                seq,
                pc,
                format!("dut raised {:?}, golden raised {:?}", d.exception, g.exception),
            );
        }
        if d.next_pc != g.next_pc {
            report.push(
                MismatchKind::ControlFlow,
                seq,
                pc,
                format!("dut continues at {:#x}, golden at {:#x}", d.next_pc, g.next_pc),
            );
        }
        if d.mem != g.mem {
            report.push(
                MismatchKind::MemoryAccess,
                seq,
                pc,
                format!("dut access {:?}, golden access {:?}", d.mem, g.mem),
            );
        }
    }

    if dut.len() != golden.len() || dut.halt_reason() != golden.halt_reason() {
        report.push(
            MismatchKind::Termination,
            None,
            None,
            format!(
                "dut committed {} instructions and halted on {}, golden committed {} and halted on {}",
                dut.len(),
                dut.halt_reason(),
                golden.len(),
                golden.halt_reason()
            ),
        );
    }

    let dut_state = dut.final_state();
    let golden_state = golden.final_state();
    for index in 0..32u8 {
        let gpr = Gpr::from_index(index);
        if dut_state.reg(gpr) != golden_state.reg(gpr) {
            report.push(
                MismatchKind::FinalRegister,
                None,
                None,
                format!(
                    "{} is {:#x} on the dut but {:#x} on the golden model",
                    gpr,
                    dut_state.reg(gpr),
                    golden_state.reg(gpr)
                ),
            );
        }
    }
    for csr in COMPARED_CSRS {
        if dut_state.csr(csr) != golden_state.csr(csr) {
            report.push(
                MismatchKind::FinalCsr,
                None,
                None,
                format!(
                    "{} is {:#x} on the dut but {:#x} on the golden model",
                    csr,
                    dut_state.csr(csr),
                    golden_state.csr(csr)
                ),
            );
        }
    }
}

/// Returns `true` when the two halting reasons are equal (convenience for
/// callers that only need a cheap sanity check).
pub fn same_halt(dut: HaltReason, golden: HaltReason) -> bool {
    dut == golden
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_sim::GoldenSim;
    use proc_sim::{cores::Cva6Core, cores::RocketCore, BugSet, Processor, Vulnerability};
    use riscv::asm::parse_program;
    use riscv::Program;

    fn program(asm: &str) -> Program {
        Program::from_instrs(parse_program(asm).expect("valid asm"))
    }

    fn run_both(core: &dyn Processor, prog: &Program) -> DiffReport {
        let golden = GoldenSim::new().run(prog, 500);
        let dut = core.run(prog, 500);
        compare_traces(&dut.trace, &golden)
    }

    #[test]
    fn bug_free_core_produces_a_clean_report() {
        let core = Cva6Core::new(BugSet::none());
        let prog = program(
            "lui gp, 0x80010\naddi a0, zero, 9\nsd a0, 0(gp)\nld a1, 0(gp)\nmul a2, a1, a1\nebreak\necall\n",
        );
        let report = run_both(&core, &prog);
        assert!(report.is_clean(), "unexpected mismatches: {report}");
        assert_eq!(report.to_string(), "no mismatches");
    }

    #[test]
    fn identical_traces_compare_equal() {
        let prog = program("addi a0, zero, 1\necall\n");
        let golden = GoldenSim::new().run(&prog, 100);
        let report = compare_traces(&golden, &golden);
        assert!(report.is_clean());
    }

    #[test]
    fn v1_is_detected_as_an_exception_mismatch() {
        let core = Cva6Core::new(BugSet::only(Vulnerability::V1FenceiDecode));
        let report = run_both(&core, &program("fence.i\necall\n"));
        assert!(!report.is_clean());
        assert!(report.has_kind(MismatchKind::Exception));
    }

    #[test]
    fn v5_is_detected_when_a_wild_load_executes() {
        let core = Cva6Core::new(BugSet::only(Vulnerability::V5MissingAccessFault));
        let report = run_both(&core, &program("addi t0, zero, 64\nld a0, 0(t0)\necall\n"));
        assert!(report.has_kind(MismatchKind::Exception));
        assert!(report.has_kind(MismatchKind::Writeback));
    }

    #[test]
    fn v6_is_detected_as_a_writeback_mismatch() {
        let core = Cva6Core::new(BugSet::only(Vulnerability::V6UnimplCsrJunk));
        let report = run_both(&core, &program("csrrs a0, 0x5c0, zero\necall\n"));
        assert!(report.has_kind(MismatchKind::Writeback));
        assert!(report.has_kind(MismatchKind::FinalRegister));
    }

    #[test]
    fn v7_is_detected_when_the_counter_is_read_after_an_ebreak() {
        let core = RocketCore::new(BugSet::only(Vulnerability::V7EbreakInstret));
        let report = run_both(&core, &program("ebreak\ncsrrs a0, minstret, zero\necall\n"));
        assert!(report.has_kind(MismatchKind::Writeback), "the counter read exposes the bug");
        assert!(report.has_kind(MismatchKind::FinalRegister));
    }

    #[test]
    fn v7_is_not_detected_without_a_counter_read() {
        let core = RocketCore::new(BugSet::only(Vulnerability::V7EbreakInstret));
        // An ebreak alone is not enough: the architectural trace (writebacks,
        // exceptions, control flow) is identical; only the counter differs and
        // nothing reads it.
        let report = run_both(&core, &program("ebreak\naddi a0, zero, 1\necall\n"));
        assert!(report.is_clean(), "the bug needs a counter read to manifest: {report}");
        let no_ebreak = run_both(&core, &program("addi a0, zero, 1\nadd a1, a0, a0\necall\n"));
        assert!(no_ebreak.is_clean());
    }

    #[test]
    fn report_display_lists_every_mismatch() {
        let core = Cva6Core::new(BugSet::only(Vulnerability::V6UnimplCsrJunk));
        let report = run_both(&core, &program("csrrs a0, 0x5c0, zero\necall\n"));
        let text = report.to_string();
        assert!(text.contains("mismatches:"));
        assert!(text.lines().count() >= 2);
        assert!(same_halt(HaltReason::Ecall, HaltReason::Ecall));
    }
}
