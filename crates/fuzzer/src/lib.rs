//! Hardware-fuzzing substrate: test cases, mutation, differential testing and
//! the TheHuzz-style baseline fuzzer.
//!
//! The MABFuzz paper builds on TheHuzz, a coverage-feedback processor fuzzer
//! with *static* decision strategies. This crate provides everything both
//! fuzzers share, plus the baseline itself:
//!
//! * [`TestCase`] — a fuzzing input (a [`Program`](riscv::Program) plus
//!   lineage metadata),
//! * [`SeedGenerator`] — random seed creation,
//! * [`MutationEngine`] — TheHuzz's bit/structure-level mutation operators,
//! * [`FuzzHarness`] — runs one test on the DUT and the golden model,
//!   collects coverage and differential-testing mismatches,
//! * [`diff`] — the per-instruction architectural comparison,
//! * [`TheHuzzFuzzer`] — the baseline: FIFO test scheduling, coverage-gated
//!   mutation, no dynamic seed selection,
//! * [`CampaignStats`] — per-campaign statistics (coverage curves, detection
//!   test counts) consumed by the experiment harness,
//! * [`shard`] — intra-campaign sharded simulation: the [`ShardPlan`] /
//!   [`ShardPool`] fork/join executor and the per-test RNG stream
//!   derivation behind the **determinism contract** (see the [`shard`]
//!   module docs) that keeps campaign reports byte-identical across shard
//!   counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod diff;
pub mod harness;
pub mod mutate;
pub mod pool;
pub mod seed;
pub mod shard;
pub mod testcase;
pub mod thehuzz;

pub use campaign::{CampaignConfig, CampaignStats};
pub use diff::{DiffReport, Mismatch, MismatchKind};
pub use harness::{CoverageSignal, ExecScratch, FuzzHarness, TestOutcome, TestOutcomeView};
pub use mutate::{MutationEngine, MutationOp};
pub use pool::TestPool;
pub use seed::SeedGenerator;
pub use shard::{derive_stream_seed, ShardPlan, ShardPool};
pub use testcase::{TestCase, TestId};
pub use thehuzz::{BaselineTestRecord, TheHuzzFuzzer};
