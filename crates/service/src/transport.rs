//! Pluggable byte transports for the campaign client.
//!
//! The client used to call `TcpStream::connect` directly; routing every
//! connection through a [`Transport`] buys two things the dispatch
//! coordinator needs:
//!
//! * **deadlines** — [`TcpTransport`] applies connect/read/write timeouts to
//!   every socket it hands out, so a dead worker turns into a bounded
//!   `TimedOut` error instead of an indefinite hang;
//! * **fault injection** — [`FaultyTransport`] wraps any inner transport and
//!   injects a scheduled [`Fault`] (connection refusal, mid-stream drop,
//!   stall, short write, garbage bytes) into chosen connections, which is
//!   how the chaos suites prove the coordinator's retry/reassignment logic
//!   produces byte-identical artefacts under failure.
//!
//! Faults are scheduled by *connection index* (0-based, in connect order),
//! so a chaos schedule is deterministic for a deterministic coordinator.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A bidirectional byte stream (what [`Transport::connect`] hands out).
pub trait Connection: Read + Write + Send {}

impl<T: Read + Write + Send> Connection for T {}

/// A connection factory: the seam between the protocol client and the
/// network.
pub trait Transport: Send + Sync {
    /// Opens one connection to `addr`.
    ///
    /// # Errors
    ///
    /// Any I/O error of the underlying connect (or an injected fault).
    fn connect(&self, addr: SocketAddr) -> io::Result<Box<dyn Connection>>;
}

/// The real TCP transport, with optional per-socket deadlines.
///
/// `Default` applies no deadlines (the legacy client behaviour); dispatch
/// builds one with [`with_deadlines`](TcpTransport::with_deadlines) so every
/// request the coordinator makes is bounded.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpTransport {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl TcpTransport {
    /// A transport whose connects, reads and writes all time out after
    /// `timeout` (`None` disables the deadlines).
    pub fn with_deadlines(timeout: Option<Duration>) -> TcpTransport {
        TcpTransport { connect_timeout: timeout, read_timeout: timeout, write_timeout: timeout }
    }
}

impl Transport for TcpTransport {
    fn connect(&self, addr: SocketAddr) -> io::Result<Box<dyn Connection>> {
        let stream = match self.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        Ok(Box::new(stream))
    }
}

/// One injected failure mode, applied to a single connection.
///
/// Byte positions count the connection's own traffic: read faults trigger at
/// the `K`-th *response* byte delivered, write faults at the `K`-th
/// *request* byte accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The connect itself fails (`ConnectionRefused`) — a worker that is
    /// down before the request starts.
    RefuseConnect,
    /// Reads fail with `ConnectionReset` once `K` response bytes have been
    /// delivered — a worker that dies mid-stream.
    DropAfter(usize),
    /// Reads fail with `TimedOut` once `K` response bytes have been
    /// delivered — a worker that goes silent, surfaced exactly as the read
    /// deadline would surface it (no wall-clock wait, so chaos suites stay
    /// fast while exercising the same error path).
    StallAfter(usize),
    /// Response bytes from position `K` onward are corrupted (overwritten
    /// with `0x01`, a byte that is valid in neither HTTP framing nor raw
    /// JSON, so corruption is always *detectable* — see the crate docs'
    /// failure model for why undetectable corruption is out of scope).
    GarbageAt(usize),
    /// Writes accept only the first `K` request bytes, then fail with
    /// `BrokenPipe` — a worker that vanishes while the request is being
    /// sent.
    ShortWriteAt(usize),
}

/// The byte every [`Fault::GarbageAt`] corruption writes.
const GARBAGE_BYTE: u8 = 0x01;

#[derive(Default)]
struct FaultState {
    /// Faults keyed by connection index (in connect order).
    schedule: BTreeMap<usize, Fault>,
    /// Connections handed out so far.
    connections: usize,
}

/// A [`Transport`] wrapper that injects scheduled faults.
///
/// Connections not named in the schedule pass through untouched, so a chaos
/// run interleaves healthy and faulty traffic exactly like a flaky network
/// would.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    state: Mutex<FaultState>,
}

impl FaultyTransport {
    /// Wraps `inner` with an empty fault schedule.
    pub fn new(inner: Arc<dyn Transport>) -> FaultyTransport {
        FaultyTransport { inner, state: Mutex::default() }
    }

    /// Schedules `fault` for the `connection`-th connect (0-based). Later
    /// entries for the same index replace earlier ones.
    pub fn schedule(self, connection: usize, fault: Fault) -> FaultyTransport {
        self.state.lock().expect("fault schedule lock").schedule.insert(connection, fault);
        self
    }

    /// How many connections have been handed out (or refused) so far.
    pub fn connections_made(&self) -> usize {
        self.state.lock().expect("fault schedule lock").connections
    }
}

impl Transport for FaultyTransport {
    fn connect(&self, addr: SocketAddr) -> io::Result<Box<dyn Connection>> {
        let fault = {
            let mut state = self.state.lock().expect("fault schedule lock");
            let index = state.connections;
            state.connections += 1;
            state.schedule.get(&index).copied()
        };
        if fault == Some(Fault::RefuseConnect) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "injected fault: connection refused",
            ));
        }
        let inner = self.inner.connect(addr)?;
        Ok(Box::new(FaultyConnection { inner, fault, read_pos: 0, write_pos: 0 }))
    }
}

/// A connection with one scheduled fault armed.
struct FaultyConnection {
    inner: Box<dyn Connection>,
    fault: Option<Fault>,
    read_pos: usize,
    write_pos: usize,
}

impl Read for FaultyConnection {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let limit = match self.fault {
            Some(Fault::DropAfter(k) | Fault::StallAfter(k)) => {
                if self.read_pos >= k {
                    return Err(match self.fault {
                        Some(Fault::DropAfter(_)) => io::Error::new(
                            io::ErrorKind::ConnectionReset,
                            "injected fault: connection dropped mid-stream",
                        ),
                        _ => io::Error::new(
                            io::ErrorKind::TimedOut,
                            "injected fault: read deadline fired",
                        ),
                    });
                }
                (k - self.read_pos).min(buf.len())
            }
            _ => buf.len(),
        };
        let n = self.inner.read(&mut buf[..limit])?;
        if let Some(Fault::GarbageAt(k)) = self.fault {
            for (offset, byte) in buf[..n].iter_mut().enumerate() {
                if self.read_pos + offset >= k {
                    *byte = GARBAGE_BYTE;
                }
            }
        }
        self.read_pos += n;
        Ok(n)
    }
}

impl Write for FaultyConnection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let limit = match self.fault {
            Some(Fault::ShortWriteAt(k)) => {
                if self.write_pos >= k {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "injected fault: peer gone mid-request",
                    ));
                }
                (k - self.write_pos).min(buf.len())
            }
            _ => buf.len(),
        };
        let n = self.inner.write(&buf[..limit])?;
        self.write_pos += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;
    use std::thread;

    /// A one-shot echo peer: accepts one connection, reads one line, writes
    /// `reply` back, closes.
    fn one_shot_server(reply: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                let mut stream = stream;
                let _ = stream.write_all(reply);
            }
        });
        addr
    }

    fn roundtrip(transport: &dyn Transport, addr: SocketAddr) -> io::Result<Vec<u8>> {
        let mut conn = transport.connect(addr)?;
        conn.write_all(b"hello\n")?;
        conn.flush()?;
        let mut response = Vec::new();
        conn.read_to_end(&mut response)?;
        Ok(response)
    }

    #[test]
    fn clean_transport_passes_bytes_through() {
        let addr = one_shot_server(b"world\n");
        let transport = FaultyTransport::new(Arc::new(TcpTransport::default()));
        assert_eq!(roundtrip(&transport, addr).unwrap(), b"world\n");
        assert_eq!(transport.connections_made(), 1);
    }

    #[test]
    fn refuse_connect_fails_before_any_io() {
        let addr = one_shot_server(b"unreached\n");
        let transport =
            FaultyTransport::new(Arc::new(TcpTransport::default())).schedule(0, Fault::RefuseConnect);
        let error = roundtrip(&transport, addr).expect_err("refused");
        assert_eq!(error.kind(), io::ErrorKind::ConnectionRefused);
        // The next connection is healthy: faults are per-index.
        assert_eq!(roundtrip(&transport, addr).unwrap(), b"unreached\n");
    }

    #[test]
    fn drop_after_delivers_exactly_k_bytes_then_resets() {
        let addr = one_shot_server(b"0123456789");
        let transport =
            FaultyTransport::new(Arc::new(TcpTransport::default())).schedule(0, Fault::DropAfter(4));
        let mut conn = transport.connect(addr).unwrap();
        conn.write_all(b"hello\n").unwrap();
        let mut prefix = [0u8; 4];
        conn.read_exact(&mut prefix).unwrap();
        assert_eq!(&prefix, b"0123");
        let error = conn.read(&mut [0u8; 1]).expect_err("dropped");
        assert_eq!(error.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn stall_after_surfaces_as_a_timeout() {
        let addr = one_shot_server(b"0123456789");
        let transport =
            FaultyTransport::new(Arc::new(TcpTransport::default())).schedule(0, Fault::StallAfter(0));
        let mut conn = transport.connect(addr).unwrap();
        conn.write_all(b"hello\n").unwrap();
        let error = conn.read(&mut [0u8; 8]).expect_err("stalled");
        assert_eq!(error.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn garbage_corrupts_from_byte_k_onward() {
        let addr = one_shot_server(b"0123456789");
        let transport =
            FaultyTransport::new(Arc::new(TcpTransport::default())).schedule(0, Fault::GarbageAt(6));
        let response = roundtrip(&transport, addr).unwrap();
        assert_eq!(&response[..6], b"012345", "the prefix is intact");
        assert!(response[6..].iter().all(|&b| b == GARBAGE_BYTE), "the tail is garbage");
    }

    #[test]
    fn short_write_truncates_the_request_then_breaks() {
        let addr = one_shot_server(b"reply\n");
        let transport = FaultyTransport::new(Arc::new(TcpTransport::default()))
            .schedule(0, Fault::ShortWriteAt(3));
        let mut conn = transport.connect(addr).unwrap();
        assert_eq!(conn.write(b"hello\n").unwrap(), 3, "only K bytes are accepted");
        let error = conn.write(b"lo\n").expect_err("broken pipe");
        assert_eq!(error.kind(), io::ErrorKind::BrokenPipe);
    }
}
