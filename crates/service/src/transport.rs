//! Pluggable byte transports for the campaign client.
//!
//! The client used to call `TcpStream::connect` directly; routing every
//! connection through a [`Transport`] buys two things the dispatch
//! coordinator needs:
//!
//! * **deadlines** — [`TcpTransport`] applies connect/read/write timeouts to
//!   every socket it hands out, so a dead worker turns into a bounded
//!   `TimedOut` error instead of an indefinite hang;
//! * **fault injection** — [`FaultyTransport`] wraps any inner transport and
//!   injects a scheduled [`Fault`] (connection refusal, mid-stream drop,
//!   stall, short write, garbage bytes) into chosen connections or requests,
//!   which is how the chaos suites prove the coordinator's
//!   retry/reassignment logic produces byte-identical artefacts under
//!   failure.
//!
//! Faults are scheduled by *connection index* (0-based, in connect order)
//! or — now that connections carry many requests — by *request index*
//! (0-based, in [`Connection::begin_request`] order across all
//! connections), so a chaos schedule is deterministic for a deterministic
//! coordinator and can target any request boundary regardless of which
//! pooled connection happens to carry it.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A bidirectional byte stream (what [`Transport::connect`] hands out).
pub trait Connection: Read + Write + Send {
    /// Marks the start of a new request/response exchange on this
    /// connection. The client calls this once per request (including each
    /// reuse of a pooled connection); transports that schedule per-request
    /// faults arm them here. The default is a no-op.
    fn begin_request(&mut self) {}
}

impl Connection for TcpStream {}

/// A connection factory: the seam between the protocol client and the
/// network.
pub trait Transport: Send + Sync {
    /// Opens one connection to `addr`.
    ///
    /// # Errors
    ///
    /// Any I/O error of the underlying connect (or an injected fault).
    fn connect(&self, addr: SocketAddr) -> io::Result<Box<dyn Connection>>;
}

/// The real TCP transport, with optional per-socket deadlines.
///
/// `Default` applies no deadlines (the legacy client behaviour); dispatch
/// builds one with [`with_deadlines`](TcpTransport::with_deadlines) so every
/// request the coordinator makes is bounded.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpTransport {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl TcpTransport {
    /// A transport whose connects, reads and writes all time out after
    /// `timeout` (`None` disables the deadlines).
    pub fn with_deadlines(timeout: Option<Duration>) -> TcpTransport {
        TcpTransport { connect_timeout: timeout, read_timeout: timeout, write_timeout: timeout }
    }
}

impl Transport for TcpTransport {
    fn connect(&self, addr: SocketAddr) -> io::Result<Box<dyn Connection>> {
        let stream = match self.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        Ok(Box::new(stream))
    }
}

/// One injected failure mode, applied to a single connection or request.
///
/// When scheduled per *connection* ([`FaultyTransport::schedule`]), byte
/// positions count the connection's whole traffic; when scheduled per
/// *request* ([`FaultyTransport::schedule_request`]), they count from the
/// request boundary, so `DropAfter(0)` kills the first response byte of that
/// request even if the connection already carried megabytes.
/// [`Fault::RefuseConnect`] scheduled per request cannot refuse an
/// already-open socket; it fails the request's first write with
/// `BrokenPipe` instead (the closest observable behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The connect itself fails (`ConnectionRefused`) — a worker that is
    /// down before the request starts.
    RefuseConnect,
    /// Reads fail with `ConnectionReset` once `K` response bytes have been
    /// delivered — a worker that dies mid-stream.
    DropAfter(usize),
    /// Reads fail with `TimedOut` once `K` response bytes have been
    /// delivered — a worker that goes silent, surfaced exactly as the read
    /// deadline would surface it (no wall-clock wait, so chaos suites stay
    /// fast while exercising the same error path).
    StallAfter(usize),
    /// Response bytes from position `K` onward are corrupted (overwritten
    /// with `0x01`, a byte that is valid in neither HTTP framing nor raw
    /// JSON, so corruption is always *detectable* — see the crate docs'
    /// failure model for why undetectable corruption is out of scope).
    GarbageAt(usize),
    /// Writes accept only the first `K` request bytes, then fail with
    /// `BrokenPipe` — a worker that vanishes while the request is being
    /// sent.
    ShortWriteAt(usize),
}

/// The byte every [`Fault::GarbageAt`] corruption writes.
const GARBAGE_BYTE: u8 = 0x01;

#[derive(Default)]
struct FaultState {
    /// Faults keyed by connection index (in connect order).
    schedule: BTreeMap<usize, Fault>,
    /// Faults keyed by request index (in `begin_request` order, global
    /// across all of this transport's connections).
    request_schedule: BTreeMap<usize, Fault>,
    /// Connections handed out so far.
    connections: usize,
    /// Requests begun so far (across all connections).
    requests: usize,
}

/// A [`Transport`] wrapper that injects scheduled faults.
///
/// Connections and requests not named in the schedules pass through
/// untouched, so a chaos run interleaves healthy and faulty traffic exactly
/// like a flaky network would. The transport also counts connections opened
/// and requests begun, which is how the keep-alive suites assert that
/// connection reuse actually happened (connections < requests).
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultyTransport {
    /// Wraps `inner` with an empty fault schedule.
    pub fn new(inner: Arc<dyn Transport>) -> FaultyTransport {
        FaultyTransport { inner, state: Arc::default() }
    }

    /// Schedules `fault` for the `connection`-th connect (0-based). Later
    /// entries for the same index replace earlier ones. The fault's byte
    /// positions count the connection's lifetime traffic.
    pub fn schedule(self, connection: usize, fault: Fault) -> FaultyTransport {
        self.state.lock().expect("fault schedule lock").schedule.insert(connection, fault);
        self
    }

    /// Schedules `fault` for the `request`-th request begun (0-based,
    /// counted across all connections). The fault's byte positions count
    /// from the request boundary, and the fault disarms at the next request
    /// on the same connection.
    pub fn schedule_request(self, request: usize, fault: Fault) -> FaultyTransport {
        self.state.lock().expect("fault schedule lock").request_schedule.insert(request, fault);
        self
    }

    /// How many connections have been handed out (or refused) so far.
    pub fn connections_made(&self) -> usize {
        self.state.lock().expect("fault schedule lock").connections
    }

    /// How many requests have begun so far (across all connections).
    pub fn requests_made(&self) -> usize {
        self.state.lock().expect("fault schedule lock").requests
    }
}

impl Transport for FaultyTransport {
    fn connect(&self, addr: SocketAddr) -> io::Result<Box<dyn Connection>> {
        let fault = {
            let mut state = self.state.lock().expect("fault schedule lock");
            let index = state.connections;
            state.connections += 1;
            state.schedule.get(&index).copied()
        };
        if fault == Some(Fault::RefuseConnect) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "injected fault: connection refused",
            ));
        }
        let inner = self.inner.connect(addr)?;
        Ok(Box::new(FaultyConnection {
            inner,
            state: Arc::clone(&self.state),
            fault,
            request_fault: None,
            read_pos: 0,
            write_pos: 0,
            request_read_pos: 0,
            request_write_pos: 0,
        }))
    }
}

/// A connection with scheduled faults armed.
///
/// The connection-lifetime fault (if any) was fixed at connect time and
/// counts bytes from the start of the connection; a per-request fault is
/// armed at each [`Connection::begin_request`] and counts bytes from that
/// boundary. A per-request fault takes precedence while armed.
struct FaultyConnection {
    inner: Box<dyn Connection>,
    state: Arc<Mutex<FaultState>>,
    fault: Option<Fault>,
    request_fault: Option<Fault>,
    read_pos: usize,
    write_pos: usize,
    request_read_pos: usize,
    request_write_pos: usize,
}

impl FaultyConnection {
    /// The armed fault and the byte position it measures against, for reads.
    fn effective_read(&self) -> (Option<Fault>, usize) {
        match self.request_fault {
            Some(fault) => (Some(fault), self.request_read_pos),
            None => (self.fault, self.read_pos),
        }
    }

    /// The armed fault and the byte position it measures against, for
    /// writes.
    fn effective_write(&self) -> (Option<Fault>, usize) {
        match self.request_fault {
            Some(fault) => (Some(fault), self.request_write_pos),
            None => (self.fault, self.write_pos),
        }
    }
}

impl Connection for FaultyConnection {
    fn begin_request(&mut self) {
        let mut state = self.state.lock().expect("fault schedule lock");
        let index = state.requests;
        state.requests += 1;
        self.request_fault = state.request_schedule.get(&index).copied();
        drop(state);
        self.request_read_pos = 0;
        self.request_write_pos = 0;
    }
}

impl Read for FaultyConnection {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let (fault, pos) = self.effective_read();
        let limit = match fault {
            Some(Fault::DropAfter(k) | Fault::StallAfter(k)) => {
                if pos >= k {
                    return Err(match fault {
                        Some(Fault::DropAfter(_)) => io::Error::new(
                            io::ErrorKind::ConnectionReset,
                            "injected fault: connection dropped mid-stream",
                        ),
                        _ => io::Error::new(
                            io::ErrorKind::TimedOut,
                            "injected fault: read deadline fired",
                        ),
                    });
                }
                (k - pos).min(buf.len())
            }
            _ => buf.len(),
        };
        let n = self.inner.read(&mut buf[..limit])?;
        if let Some(Fault::GarbageAt(k)) = fault {
            for (offset, byte) in buf[..n].iter_mut().enumerate() {
                if pos + offset >= k {
                    *byte = GARBAGE_BYTE;
                }
            }
        }
        self.read_pos += n;
        self.request_read_pos += n;
        Ok(n)
    }
}

impl Write for FaultyConnection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let (fault, pos) = self.effective_write();
        let limit = match fault {
            // A request-scheduled RefuseConnect cannot refuse an open
            // socket; failing the request's first write is the nearest
            // equivalent a client can observe.
            Some(Fault::RefuseConnect) if self.request_fault.is_some() => {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected fault: peer gone before the request",
                ));
            }
            Some(Fault::ShortWriteAt(k)) => {
                if pos >= k {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "injected fault: peer gone mid-request",
                    ));
                }
                (k - pos).min(buf.len())
            }
            _ => buf.len(),
        };
        let n = self.inner.write(&buf[..limit])?;
        self.write_pos += n;
        self.request_write_pos += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;
    use std::thread;

    /// A one-shot echo peer: accepts one connection, reads one line, writes
    /// `reply` back, closes.
    fn one_shot_server(reply: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                let mut stream = stream;
                let _ = stream.write_all(reply);
            }
        });
        addr
    }

    fn roundtrip(transport: &dyn Transport, addr: SocketAddr) -> io::Result<Vec<u8>> {
        let mut conn = transport.connect(addr)?;
        conn.write_all(b"hello\n")?;
        conn.flush()?;
        let mut response = Vec::new();
        conn.read_to_end(&mut response)?;
        Ok(response)
    }

    #[test]
    fn clean_transport_passes_bytes_through() {
        let addr = one_shot_server(b"world\n");
        let transport = FaultyTransport::new(Arc::new(TcpTransport::default()));
        assert_eq!(roundtrip(&transport, addr).unwrap(), b"world\n");
        assert_eq!(transport.connections_made(), 1);
    }

    #[test]
    fn refuse_connect_fails_before_any_io() {
        let addr = one_shot_server(b"unreached\n");
        let transport =
            FaultyTransport::new(Arc::new(TcpTransport::default())).schedule(0, Fault::RefuseConnect);
        let error = roundtrip(&transport, addr).expect_err("refused");
        assert_eq!(error.kind(), io::ErrorKind::ConnectionRefused);
        // The next connection is healthy: faults are per-index.
        assert_eq!(roundtrip(&transport, addr).unwrap(), b"unreached\n");
    }

    #[test]
    fn drop_after_delivers_exactly_k_bytes_then_resets() {
        let addr = one_shot_server(b"0123456789");
        let transport =
            FaultyTransport::new(Arc::new(TcpTransport::default())).schedule(0, Fault::DropAfter(4));
        let mut conn = transport.connect(addr).unwrap();
        conn.write_all(b"hello\n").unwrap();
        let mut prefix = [0u8; 4];
        conn.read_exact(&mut prefix).unwrap();
        assert_eq!(&prefix, b"0123");
        let error = conn.read(&mut [0u8; 1]).expect_err("dropped");
        assert_eq!(error.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn stall_after_surfaces_as_a_timeout() {
        let addr = one_shot_server(b"0123456789");
        let transport =
            FaultyTransport::new(Arc::new(TcpTransport::default())).schedule(0, Fault::StallAfter(0));
        let mut conn = transport.connect(addr).unwrap();
        conn.write_all(b"hello\n").unwrap();
        let error = conn.read(&mut [0u8; 8]).expect_err("stalled");
        assert_eq!(error.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn garbage_corrupts_from_byte_k_onward() {
        let addr = one_shot_server(b"0123456789");
        let transport =
            FaultyTransport::new(Arc::new(TcpTransport::default())).schedule(0, Fault::GarbageAt(6));
        let response = roundtrip(&transport, addr).unwrap();
        assert_eq!(&response[..6], b"012345", "the prefix is intact");
        assert!(response[6..].iter().all(|&b| b == GARBAGE_BYTE), "the tail is garbage");
    }

    #[test]
    fn short_write_truncates_the_request_then_breaks() {
        let addr = one_shot_server(b"reply\n");
        let transport = FaultyTransport::new(Arc::new(TcpTransport::default()))
            .schedule(0, Fault::ShortWriteAt(3));
        let mut conn = transport.connect(addr).unwrap();
        assert_eq!(conn.write(b"hello\n").unwrap(), 3, "only K bytes are accepted");
        let error = conn.write(b"lo\n").expect_err("broken pipe");
        assert_eq!(error.kind(), io::ErrorKind::BrokenPipe);
    }

    /// An echo peer that serves many line → reply exchanges on one
    /// connection (the keep-alive shape).
    fn multi_shot_server(reply: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut stream = stream;
                loop {
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            if stream.write_all(reply).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn request_faults_count_bytes_from_the_request_boundary() {
        let addr = multi_shot_server(b"0123456789");
        // Request 1 (the second exchange) drops after 4 of *its own* bytes,
        // even though the connection has already carried a full reply.
        let transport = FaultyTransport::new(Arc::new(TcpTransport::default()))
            .schedule_request(1, Fault::DropAfter(4));
        let mut conn = transport.connect(addr).unwrap();

        conn.begin_request();
        conn.write_all(b"first\n").unwrap();
        let mut reply = [0u8; 10];
        conn.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"0123456789", "request 0 is untouched");

        conn.begin_request();
        conn.write_all(b"second\n").unwrap();
        let mut prefix = [0u8; 4];
        conn.read_exact(&mut prefix).unwrap();
        assert_eq!(&prefix, b"0123", "exactly K bytes of request 1 survive");
        let error = conn.read(&mut [0u8; 1]).expect_err("dropped");
        assert_eq!(error.kind(), io::ErrorKind::ConnectionReset);

        assert_eq!(transport.connections_made(), 1);
        assert_eq!(transport.requests_made(), 2);
    }

    #[test]
    fn request_faults_disarm_at_the_next_request() {
        let addr = multi_shot_server(b"ok\n");
        let transport = FaultyTransport::new(Arc::new(TcpTransport::default()))
            .schedule_request(0, Fault::GarbageAt(0));
        let mut conn = transport.connect(addr).unwrap();

        conn.begin_request();
        conn.write_all(b"first\n").unwrap();
        let mut garbled = [0u8; 3];
        conn.read_exact(&mut garbled).unwrap();
        assert!(garbled.iter().all(|&b| b == GARBAGE_BYTE), "request 0 is garbage");

        conn.begin_request();
        conn.write_all(b"second\n").unwrap();
        let mut clean = [0u8; 3];
        conn.read_exact(&mut clean).unwrap();
        assert_eq!(&clean, b"ok\n", "the fault does not leak into request 1");
    }

    #[test]
    fn request_scheduled_refuse_connect_breaks_the_first_write() {
        let addr = multi_shot_server(b"ok\n");
        let transport = FaultyTransport::new(Arc::new(TcpTransport::default()))
            .schedule_request(0, Fault::RefuseConnect);
        let mut conn = transport.connect(addr).unwrap();
        conn.begin_request();
        let error = conn.write(b"hello\n").expect_err("request refused");
        assert_eq!(error.kind(), io::ErrorKind::BrokenPipe);
    }
}
